"""Baseline: event-space partitioning (related work, Section 2 / [16])
compared against the paper's three mappings on the Section 5.1 workload.

Expected shape: like Key-Space-Split, ESP sends each event to exactly
one rendezvous; its subscription fan-out sits between Key-Space-Split
and Selective-Attribute at the default grid, illustrating Section 2's
point that ESP minimizes event traffic rather than subscription cost.
"""

import random

from conftest import scaled

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.experiments.report import render_table
from repro.overlay.api import MessageKind
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)
MAPPINGS = (
    "attribute-split",
    "keyspace-split",
    "selective-attribute",
    "event-space-partition",
)


def run_mapping(name, seed=17):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 300))
    spec = WorkloadSpec(subscription_ttl=None)
    space = spec.make_space()
    mapping = make_mapping(name, space, KS)
    system = PubSubSystem(
        sim, overlay, mapping, PubSubConfig(routing=RoutingMode.MCAST)
    )
    driver = WorkloadDriver(
        system, spec, random.Random(seed + 1),
        max_subscriptions=scaled(150), max_publications=scaled(150),
    )
    driver.run_to_completion()
    messages = system.recorder.messages
    keys_per_sub = sum(
        len(mapping.subscription_keys(s)) for s in driver.injected_subscriptions
    ) / max(1, driver.subscriptions_sent)
    keys_per_pub = sum(
        len(mapping.event_keys(e)) for e in driver.injected_events
    ) / max(1, driver.publications_sent)
    storage = system.subscriptions_per_node()
    return {
        "mapping": name,
        "keys_per_sub": keys_per_sub,
        "keys_per_pub": keys_per_pub,
        "sub_hops": messages.mean_hops_per_request(MessageKind.SUBSCRIPTION),
        "pub_hops": messages.mean_hops_per_request(MessageKind.PUBLICATION),
        "max_storage": max(storage.values(), default=0),
    }


def test_event_space_partition_baseline(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mapping(name) for name in MAPPINGS], rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["mapping", "keys/sub", "keys/pub", "sub hops", "pub hops",
             "max subs/node"],
            [
                [r["mapping"], r["keys_per_sub"], r["keys_per_pub"],
                 r["sub_hops"], r["pub_hops"], r["max_storage"]]
                for r in rows
            ],
            title="Related-work baseline — event-space partitioning vs the "
                  "paper's mappings",
        )
    )
    by_name = {r["mapping"]: r for r in rows}
    esp = by_name["event-space-partition"]
    # ESP forwards each event to exactly one rendezvous (Section 2).
    assert esp["keys_per_pub"] == 1.0
    # Its subscription fan-out exceeds Key-Space-Split's near-1.
    assert esp["keys_per_sub"] > by_name["keyspace-split"]["keys_per_sub"]
    # And stays far below Attribute-Split's union-of-attributes blowup.
    assert esp["keys_per_sub"] < by_name["attribute-split"]["keys_per_sub"]