"""Figure 6: max subscriptions per node vs expiration time.

Paper setup: 25 000 subscriptions, no publications, {0, 1} selective
attributes (scaled down by default; REPRO_BENCH_SCALE=8 approaches
paper scale).  Expected shapes: storage grows with the expiration time;
Mapping 2 stores least when nothing is selective; Mapping 3 gains the
most from one selective attribute.
"""

from conftest import scaled

from repro.experiments.figures import figure6
from repro.experiments.report import render_table


def run_figure6():
    return figure6(
        subscriptions=scaled(3000),
        nodes=500,
        expiration_fractions=(0.1, 0.2, 0.4, None),
        selective_counts=(0, 1),
    )


def test_figure6(benchmark):
    rows = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["selective", "expiration [s]", "mapping", "max subs/node",
             "mean subs/node"],
            [
                [r["selective_attributes"],
                 "never" if r["expiration"] is None else round(r["expiration"]),
                 r["mapping"], r["max_subs_per_node"], r["mean_subs_per_node"]]
                for r in rows
            ],
            title="Figure 6 — memory consumption vs expiration time",
        )
    )

    def series(selective, mapping):
        return [
            r for r in rows
            if r["selective_attributes"] == selective and r["mapping"] == mapping
        ]

    # Storage grows (weakly) with expiration time for every series.
    for selective in (0, 1):
        for mapping in ("attribute-split", "keyspace-split", "selective-attribute"):
            values = [r["max_subs_per_node"] for r in series(selective, mapping)]
            assert values[0] <= values[-1]

    # No selective attributes: Mapping 2 has the best storage behavior.
    def never_row(selective, mapping):
        return next(
            r for r in series(selective, mapping) if r["expiration"] is None
        )

    assert (
        never_row(0, "keyspace-split")["max_subs_per_node"]
        < never_row(0, "attribute-split")["max_subs_per_node"]
    )
    # One selective attribute shrinks Mapping 3's footprint (paper:
    # "mapping 3 can benefit from the presence of one selective
    # attribute") — enough to beat Mapping 2 at n=500.
    assert (
        never_row(1, "selective-attribute")["max_subs_per_node"]
        < 0.8 * never_row(0, "selective-attribute")["max_subs_per_node"]
    )
    assert (
        never_row(1, "selective-attribute")["max_subs_per_node"]
        <= 1.1 * never_row(1, "keyspace-split")["max_subs_per_node"]
    )
