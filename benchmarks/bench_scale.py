#!/usr/bin/env python
"""Scale bench for the sharded simulation kernel (large Chord rings).

Where ``bench_throughput.py`` measures the hot paths at workbench sizes,
this harness measures the *sharded* kernel at ring sizes the serial
kernel was never meant for — 4 000, 20 000 and 100 000 nodes — using
the paper's own at-scale configuration: Section 4.3.3 interval
discretization (width 256, so subscription installs touch interval
keys instead of thousands of raw values) and large location caches.
Scenarios are Chord-only: CAN's zone tessellation is quadratic in the
key space and is scale-benched separately at n=2000 in the throughput
harness.

Each scenario pre-generates one seeded trace, then replays it through
``run_sharded`` once per configured shard count (``shards1`` is the
serial kernel: a lone worker, zero barriers).  Per leg it records wall
clock, kernel events/s, barrier round/remote-message/stall counts, the
behavior digest, and peak memory — each forked worker's RSS
high-water mark plus ``bytes_per_node`` (summed worker peaks over ring
size), the scale points' memory-footprint headline.  Each leg also
records per-shard load totals (one-hop sends per shard, read from the
per-shard recorders before the merge) and the max/median
``load_imbalance`` ratio; the harness prints a warning when a sharded
leg's ratio exceeds 2x.

Digests are machine-independent; wall clocks are not.  ``--check``
against a committed baseline therefore gates:

- every (scenario, leg) digest shared with the baseline must match bit
  for bit — the K=1 legs pin serial parity, the K>1 legs pin the
  deterministic barrier merge;
- on the smoke scenario, sharded throughput must stay above an
  availability-aware floor of the same run's serial leg: 0.4x on a
  single-CPU runner (the fork + barrier overhead bound — no parallel
  win is possible there), 0.8x with two or more CPUs;
- with ``--require-speedup X`` (multi-core hardware), at least one
  scenario that ran both legs must reach an X-fold events/s speedup
  over serial.

Usage:
    PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_PR7.json
    PYTHONPATH=src python benchmarks/bench_scale.py \
        --scenario smoke --repeat 2 \
        --baseline benchmarks/baselines/bench_scale_baseline.json --check
    PYTHONPATH=src python benchmarks/bench_scale.py --require-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.matching import HAVE_NUMPY  # noqa: E402
from repro.metrics.fingerprint import behavior_digest  # noqa: E402
from repro.metrics.memory import peak_rss_bytes, reset_peak_rss  # noqa: E402
from repro.sim.rng import RandomStreams  # noqa: E402
from repro.sim.shard import ring_node_ids, run_sharded  # noqa: E402
from repro.telemetry.profile import ShardProfiler  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402
from repro.workload.trace import Trace  # noqa: E402

SEED = 20260808

#: Few storage snapshots: each one walks every node's store, which at
#: 100k nodes would otherwise dominate the measured run.
STORAGE_SAMPLES = 4

DISCRETIZATION_WIDTH = 256
CACHE_CAPACITY = 1024
SUBSCRIPTION_TTL = 20.0

SCENARIOS: dict[str, dict] = {
    # CI smoke leg (make verify): small enough for every push, dense
    # enough that cross-shard traffic is exercised on every window.
    "scale-smoke-n4000": {
        "nodes": 4_000,
        "key_bits": 13,
        "subscriptions": 400,
        "publications": 4_000,
        "subscription_period": 0.05,
        "publication_mean_period": 0.01,
        "shard_counts": (1, 2),
    },
    # The serial-vs-sharded comparison point: the >=2x events/s
    # speedup target for 4 shards applies here on >=4-CPU hardware.
    "scale-n20k": {
        "nodes": 20_000,
        "key_bits": 17,
        "subscriptions": 2_000,
        "publications": 50_000,
        "subscription_period": 0.02,
        "publication_mean_period": 0.004,
        "shard_counts": (1, 4),
    },
    # The headline scale point: 10^6 publications over a 100k-node
    # ring, sharded only — a serial leg at this size is pure wall-clock
    # tax (the n20k scenario already pins the serial comparison).
    "scale-n100k": {
        "nodes": 100_000,
        "key_bits": 20,
        "subscriptions": 2_000,
        "publications": 1_000_000,
        "subscription_period": 0.02,
        "publication_mean_period": 0.002,
        "shard_counts": (4,),
    },
}


def build_config(spec: dict) -> ExperimentConfig:
    return ExperimentConfig(
        nodes=spec["nodes"],
        key_bits=spec["key_bits"],
        subscriptions=spec["subscriptions"],
        publications=spec["publications"],
        seed=SEED,
        matcher="vector",
        discretization_width=DISCRETIZATION_WIDTH,
        cache_capacity=CACHE_CAPACITY,
        workload=WorkloadSpec(
            subscription_period=spec["subscription_period"],
            publication_mean_period=spec["publication_mean_period"],
            subscription_ttl=SUBSCRIPTION_TTL,
        ),
    )


def run_leg(
    config: ExperimentConfig, trace: Trace, shards: int, repeat: int
) -> dict:
    """One (scenario, shard count) measurement; best wall of ``repeat``.

    Every repeat must produce the same behavior digest — the sharded
    determinism contract — and brackets the run with an RSS
    high-water-mark reset so the coordinator peak is the leg's own.
    """
    best: dict | None = None
    for _ in range(max(1, repeat)):
        reset_peak_rss()
        # Sharded legs run with the execution profiler attached: pure
        # wall-clock observation, so the digest check against baselines
        # recorded unprofiled doubles as a profiling-neutrality gate.
        profiler = ShardProfiler(shards) if shards > 1 else None
        start = time.perf_counter()
        outcome = run_sharded(
            config, trace, shards, mode="fork",
            storage_samples=STORAGE_SAMPLES,
            profile=profiler,
        )
        wall = time.perf_counter() - start
        events = sum(outcome.events_per_shard)
        result = {
            "shards": shards,
            "wall_s": round(wall, 3),
            "sim_events": events,
            "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
            "horizon": outcome.horizon,
            "barrier_rounds": outcome.barrier_rounds,
            "remote_messages": outcome.remote_messages,
            "barrier_stalls": outcome.barrier_stalls,
            "events_per_shard": outcome.events_per_shard,
            "load_by_shard": outcome.load_by_shard,
            "load_imbalance": round(outcome.load_imbalance, 3),
            "digest": behavior_digest(outcome.recorder),
            "worker_peak_rss_bytes": outcome.peak_rss_by_shard,
            "coordinator_peak_rss_bytes": peak_rss_bytes(),
            "bytes_per_node": round(
                sum(outcome.peak_rss_by_shard) / config.nodes
            ),
        }
        if profiler is not None:
            path = profiler.critical_path()
            result["critical_path"] = path.as_dict()
            result["suggested_cuts"] = profiler.suggest_partition()
        if best is not None and result["digest"] != best["digest"]:
            raise AssertionError(
                "non-deterministic sharded run: digest changed across repeats"
            )
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    assert best is not None
    return best


def run_scenario(key: str, spec: dict, repeat: int) -> dict:
    config = build_config(spec)
    start = time.perf_counter()
    trace = Trace.generate(
        config.workload,
        RandomStreams(config.seed).stream("workload"),
        ring_node_ids(config),
        config.subscriptions,
        config.publications,
    )
    trace_gen_s = round(time.perf_counter() - start, 3)
    legs: dict[str, dict] = {}
    for shards in spec["shard_counts"]:
        print(f"[scale] {key} shards={shards}: ...", flush=True)
        leg = run_leg(config, trace, shards, repeat)
        legs[f"shards{shards}"] = leg
        print(
            f"[scale] {key} shards={shards}: wall={leg['wall_s']:.1f}s "
            f"sim_events/s={leg['sim_events_per_s']:,} "
            f"remote={leg['remote_messages']:,} "
            f"stalls={leg['barrier_stalls']:,} "
            f"mem/node={leg['bytes_per_node']:,}B "
            f"digest={leg['digest'][:12]}",
            flush=True,
        )
        if shards > 1 and leg["load_imbalance"] > 2.0:
            print(
                f"[scale] WARNING: {key} shards={shards} load imbalance "
                f"{leg['load_imbalance']}x (max/median > 2x); "
                f"load_by_shard={leg['load_by_shard']}",
                flush=True,
            )
        path = leg.get("critical_path")
        if path is not None:
            print(
                f"[scale] {key} shards={shards}: critical path shard "
                f"{path['dominant_shard']} ({path['dominant_phase']}-bound); "
                f"busy={path['busy_s']} wait={path['barrier_wait_s']} "
                f"pipe={path['pipe_s']}; suggested cuts "
                f"{leg['suggested_cuts']}",
                flush=True,
            )
    serial = legs.get("shards1")
    if serial is not None:
        for leg_key, leg in legs.items():
            if leg_key != "shards1" and serial["sim_events_per_s"]:
                leg["speedup_vs_serial"] = round(
                    leg["sim_events_per_s"] / serial["sim_events_per_s"], 3
                )
    return {
        "nodes": spec["nodes"],
        "key_bits": spec["key_bits"],
        "subscriptions": spec["subscriptions"],
        "publications": spec["publications"],
        "subscription_period": spec["subscription_period"],
        "publication_mean_period": spec["publication_mean_period"],
        "discretization_width": DISCRETIZATION_WIDTH,
        "cache_capacity": CACHE_CAPACITY,
        "subscription_ttl": SUBSCRIPTION_TTL,
        "trace_gen_s": trace_gen_s,
        "trace_ops": len(trace.ops),
        "legs": legs,
    }


def check(report: dict, baseline: dict, require_speedup: float | None) -> int:
    """The CI gate; returns a process exit code."""
    cpus = report["meta"]["available_cpus"]
    scenarios = report["scenarios"]
    base_scenarios = baseline.get("scenarios", {})
    shared = False
    failures: list[str] = []
    for key, result in scenarios.items():
        before = base_scenarios.get(key)
        if before is None:
            continue
        for leg_key, leg in result["legs"].items():
            base_leg = before.get("legs", {}).get(leg_key)
            if base_leg is None:
                continue
            shared = True
            if base_leg["digest"] != leg["digest"]:
                failures.append(
                    f"{key}/{leg_key}: behavior digest diverged from baseline"
                )
    if not shared:
        print("[check] FAIL: no shared (scenario, leg) with baseline", flush=True)
        return 1
    # Availability-aware perf floor: a single CPU cannot show a
    # parallel win, but fork + barrier overhead must stay bounded.
    floor = 0.4 if cpus <= 1 else 0.8
    for key, result in scenarios.items():
        serial = result["legs"].get("shards1")
        if serial is None or not serial["sim_events_per_s"]:
            continue
        for leg_key, leg in result["legs"].items():
            if leg_key == "shards1":
                continue
            if leg["sim_events_per_s"] < floor * serial["sim_events_per_s"]:
                failures.append(
                    f"{key}/{leg_key}: {leg['sim_events_per_s']:,} events/s "
                    f"< {floor} x serial {serial['sim_events_per_s']:,} "
                    f"({cpus} CPUs available)"
                )
    if require_speedup is not None:
        best = max(
            (
                leg.get("speedup_vs_serial", 0.0)
                for result in scenarios.values()
                for leg in result["legs"].values()
            ),
            default=0.0,
        )
        if best < require_speedup:
            failures.append(
                f"no scenario reached a {require_speedup}x events/s speedup "
                f"over its serial leg (best: {best}x, {cpus} CPUs available)"
            )
    if failures:
        for failure in failures:
            print(f"[check] FAIL: {failure}", flush=True)
        return 1
    print(
        f"[check] OK: digests match baseline; sharded legs within the "
        f"{floor}x perf floor ({cpus} CPUs available)",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--baseline", default=None,
        help="earlier output of this harness to gate against",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="with --baseline: exit non-zero on digest drift or a "
        "sharded-throughput floor violation (CI gate)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="timed runs per leg, fastest wall kept (digest asserted "
        "identical across repeats)",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="SUBSTRING",
        help="only run scenarios whose key contains this substring",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None,
        help="with --check: fail unless some scenario's sharded leg "
        "reached this events/s multiple of its serial leg "
        "(meaningful on multi-core hardware only)",
    )
    args = parser.parse_args(argv)
    if args.check and not args.baseline:
        parser.error("--check requires --baseline")

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            parser.error(f"--baseline file not found: {baseline_path}")
        try:
            baseline = json.loads(baseline_path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"--baseline is not valid JSON ({baseline_path}): {exc}")

    selected = {
        key: spec
        for key, spec in SCENARIOS.items()
        if args.scenario is None or args.scenario in key
    }
    if not selected:
        parser.error(f"no scenario key contains {args.scenario!r}")

    scenarios = {
        key: run_scenario(key, spec, args.repeat)
        for key, spec in selected.items()
    }
    report = {
        "meta": {
            "seed": SEED,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "available_cpus": len(os.sched_getaffinity(0)),
            "storage_samples": STORAGE_SAMPLES,
            "matcher": "vector" if HAVE_NUMPY else "vector(grid fallback)",
        },
        "scenarios": scenarios,
    }
    for key, result in scenarios.items():
        for leg_key, leg in result["legs"].items():
            if "speedup_vs_serial" in leg:
                print(
                    f"[scale] {key} {leg_key}: {leg['speedup_vs_serial']}x "
                    f"events/s vs serial",
                    flush=True,
                )

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[scale] wrote {args.out}", flush=True)

    if args.check:
        assert baseline is not None
        return check(report, baseline, args.require_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
