"""Ablation benches for the design choices called out in DESIGN.md.

1. Location cache on/off (explains the Section 5.1 routing figure).
2. Matching engine: grid index vs brute force at rendezvous scale.
3. Overlay portability: the same workload over Chord vs Pastry.
"""

import random
import time

from conftest import scaled

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.events import Event
from repro.core.mappings import make_mapping
from repro.experiments.report import render_table
from repro.matching import BruteForceMatcher, GridIndexMatcher
from repro.overlay.api import MessageKind
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.can import CanOverlay
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.generator import SubscriptionGenerator
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def test_matching_engine_ablation(benchmark):
    """Grid index vs brute force on a rendezvous-sized store."""
    spec = WorkloadSpec()
    rng = random.Random(3)
    generator = SubscriptionGenerator(spec, rng)
    space = generator.space
    subscriptions = [generator.generate() for _ in range(scaled(2000))]
    events = [
        Event(
            space=space,
            values=tuple(rng.randrange(spec.domain_size) for _ in range(4)),
        )
        for _ in range(200)
    ]

    def match_all(matcher):
        total = 0
        for event in events:
            total += len(matcher.match(event))
        return total

    grid = GridIndexMatcher(space)
    brute = BruteForceMatcher()
    for sigma in subscriptions:
        grid.add(sigma)
        brute.add(sigma)

    t0 = time.perf_counter()
    brute_total = match_all(brute)
    brute_seconds = time.perf_counter() - t0

    grid_total = benchmark(match_all, grid)
    assert grid_total == brute_total  # engines agree
    t0 = time.perf_counter()
    match_all(grid)
    grid_seconds = time.perf_counter() - t0
    print(
        f"\nmatching {len(events)} events against {len(subscriptions)} subs: "
        f"brute {brute_seconds * 1000:.0f} ms, grid {grid_seconds * 1000:.0f} ms "
        f"({brute_seconds / max(grid_seconds, 1e-9):.0f}x)"
    )
    assert grid_seconds < brute_seconds


def _run_workload(overlay_cls, cache_capacity=128, seed=13):
    sim = Simulator()
    if overlay_cls is ChordOverlay:
        overlay = ChordOverlay(sim, KS, cache_capacity=cache_capacity)
    else:
        overlay = overlay_cls(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 300))
    spec = WorkloadSpec(subscription_ttl=None)
    space = spec.make_space()
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping("selective-attribute", space, KS),
        PubSubConfig(routing=RoutingMode.MCAST),
    )
    driver = WorkloadDriver(
        system,
        spec,
        random.Random(seed + 1),
        max_subscriptions=scaled(120),
        max_publications=scaled(120),
    )
    driver.run_to_completion()
    messages = system.recorder.messages
    return {
        "sub_hops": messages.mean_hops_per_request(MessageKind.SUBSCRIPTION),
        "pub_hops": messages.mean_hops_per_request(MessageKind.PUBLICATION),
        "notify_hops": messages.mean_hops_per_request(MessageKind.NOTIFICATION),
    }


def test_location_cache_ablation(benchmark):
    """Cache off vs on, end to end (not just raw routing)."""
    warm = benchmark.pedantic(
        lambda: _run_workload(ChordOverlay, cache_capacity=128),
        rounds=1,
        iterations=1,
    )
    cold = _run_workload(ChordOverlay, cache_capacity=0)
    print()
    print(
        render_table(
            ["config", "sub hops", "pub hops", "notify hops"],
            [
                ["cache=128", warm["sub_hops"], warm["pub_hops"], warm["notify_hops"]],
                ["cache=0", cold["sub_hops"], cold["pub_hops"], cold["notify_hops"]],
            ],
            title="Ablation — location cache (mapping 3, m-cast, n=300)",
        )
    )
    assert warm["pub_hops"] <= cold["pub_hops"]
    assert warm["notify_hops"] <= cold["notify_hops"]


def test_overlay_portability_cost(benchmark):
    """Chord vs Pastry vs CAN under the same pub/sub workload.

    Expected shape: Chord and Pastry route in O(log n); CAN's greedy
    geometric routing costs O(sqrt(n)) — visibly more hops per
    publication at n=300, which is exactly the routing-geometry
    difference the portability claim abstracts over."""
    chord = benchmark.pedantic(
        lambda: _run_workload(ChordOverlay), rounds=1, iterations=1
    )
    pastry = _run_workload(PastryOverlay)
    can = _run_workload(CanOverlay)
    print()
    print(
        render_table(
            ["overlay", "sub hops", "pub hops", "notify hops"],
            [
                ["chord", chord["sub_hops"], chord["pub_hops"], chord["notify_hops"]],
                ["pastry", pastry["sub_hops"], pastry["pub_hops"], pastry["notify_hops"]],
                ["can", can["sub_hops"], can["pub_hops"], can["notify_hops"]],
            ],
            title="Ablation — overlay substrate (mapping 3, m-cast, n=300)",
        )
    )
    # All three complete the workload; CAN pays its sqrt(n) geometry.
    assert pastry["sub_hops"] < 10 * max(chord["sub_hops"], 1)
    assert can["pub_hops"] > chord["pub_hops"]
