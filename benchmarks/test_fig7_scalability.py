"""Figure 7: hops per publication vs number of nodes (Mapping 3, unicast).

Expected shape: logarithmic growth inherited from the overlay's routing
(the paper: "in all cases, the number of hops grows logarithmically
with n").
"""

import math

from conftest import scaled

from repro.experiments.figures import figure7
from repro.experiments.report import render_table

NODE_COUNTS = (50, 100, 200, 500, 1000, 2000, 4000)


def run_figure7():
    return figure7(node_counts=NODE_COUNTS, publications=scaled(300))


def test_figure7(benchmark):
    rows = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["nodes", "hops/publication", "log2(n)"],
            [[r["nodes"], r["pub_hops"], r["log2_n"]] for r in rows],
            title="Figure 7 — scalability of bandwidth consumption",
        )
    )
    hops = [r["pub_hops"] for r in rows]
    # Monotone growth over the sweep ends.
    assert hops[0] < hops[-1]
    # Sub-linear (log-like): doubling n from 2000 to 4000 adds far less
    # than doubling the cost.
    assert hops[-1] < 1.5 * hops[-3]
    # Bounded by the Chord worst case per key (m hops) times |EK| = 4.
    assert max(hops) <= 4 * (math.log2(4000) + 2)
