"""Figure 9(b): subscription hops vs discretization interval size.

Intervals of 1 (none), 10% and 20% of the average range size; Mapping 3
under unicast, per the paper (the same trend applies to the other
mappings with multicast).  Expected shape: monotone reduction of
subscription-propagation cost with coarser intervals.
"""

from conftest import scaled

from repro.experiments.figures import figure9b
from repro.experiments.report import render_table


def run_figure9b():
    return figure9b(
        width_fractions=(0.0, 0.1, 0.2),
        subscriptions=scaled(300),
        nodes=500,
    )


def test_figure9b(benchmark):
    rows = benchmark.pedantic(run_figure9b, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["interval (frac. of avg range)", "width", "sub hops", "keys/sub"],
            [
                [r["interval_fraction"], r["interval_width"], r["sub_hops"],
                 r["keys_per_sub"]]
                for r in rows
            ],
            title="Figure 9(b) — discretization of mappings",
        )
    )
    hops = [r["sub_hops"] for r in rows]
    keys = [r["keys_per_sub"] for r in rows]
    assert hops[0] > hops[1] > hops[2]
    assert keys[0] > keys[1] > keys[2]
    # The effect is large: 10% intervals cut subscription cost by >50%.
    assert hops[1] < 0.5 * hops[0]
