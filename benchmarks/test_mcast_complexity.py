"""Section 4.3.1's analysis of the one-to-many primitives.

Claims regenerated as measurements over key ranges on a 500-node ring:

- m-cast: O(log n + N_range) one-hop messages, O(log n) dilation;
- conservative sequential walk: same message asymptotics, but
  O(log n + N_range) dilation (intolerable in practice);
- aggressive per-key unicast: O(log n) dilation but Omega(x log n)
  messages for x target keys (clearly unacceptable).
"""

import math
import random

from conftest import scaled

from repro.experiments.report import render_table
from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
N = 500
RANGE_SIZES = (64, 256, 1024, 4096)


def run_mode(mode: str, keys: list[int], seed: int = 7):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=0)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), N))
    overlay.set_deliver(lambda nid, m: None)
    src = overlay.node_ids()[0]
    request_id = next_request_id()
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=request_id,
        origin=src,
    )
    if mode == "m-cast":
        overlay.mcast(src, keys, message)
    elif mode == "sequential":
        overlay.sequential_cast(src, keys, message)
    else:  # aggressive: one unicast per key, same request id
        for key in keys:
            overlay.send(src, key, message)
    sim.run()
    trace = overlay.recorder.messages.traces[request_id]
    nodes_covered = len({overlay.owner_of(k) for k in keys})
    return {
        "mode": mode,
        "range": len(keys),
        "nodes": nodes_covered,
        "messages": trace.one_hop_messages,
        "dilation": trace.max_path_hops,
        "deliveries": trace.delivery_count,
    }


def run_all():
    rows = []
    for size in RANGE_SIZES:
        keys = [(1000 + i) % KS.size for i in range(size)]
        for mode in ("m-cast", "sequential", "aggressive"):
            rows.append(run_mode(mode, keys))
    return rows


def test_mcast_complexity(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["mode", "range keys", "covering nodes", "one-hop msgs",
             "dilation", "deliveries"],
            [
                [r["mode"], r["range"], r["nodes"], r["messages"],
                 r["dilation"], r["deliveries"]]
                for r in rows
            ],
            title="Section 4.3.1 — one-to-many primitive comparison (n=500)",
        )
    )
    log_n = math.log2(N)
    for size in RANGE_SIZES:
        mcast, seq, aggressive = (
            next(r for r in rows if r["mode"] == mode and r["range"] == size)
            for mode in ("m-cast", "sequential", "aggressive")
        )
        nodes = mcast["nodes"]
        # m-cast: messages O(log n + N), dilation O(log n).
        assert mcast["messages"] <= 3 * (nodes + log_n)
        assert mcast["dilation"] <= log_n + 2
        # Sequential: comparable messages, dilation grows with the range.
        assert seq["messages"] <= 3 * (nodes + log_n)
        assert seq["dilation"] >= nodes - 2
        # Aggressive: log-dilation but way more messages for large ranges.
        assert aggressive["dilation"] <= log_n + 2
        if size >= 256:
            assert aggressive["messages"] > 2 * mcast["messages"]
        # All three cover every node exactly / at least once.
        assert mcast["deliveries"] == nodes
        assert seq["deliveries"] == nodes
        assert aggressive["deliveries"] >= nodes
