"""Figure 9(a): notification traffic vs matching probability under the
buffering/collecting variants of Section 4.3.2.

Expected shapes: traffic grows with the matching probability; buffering
and buffering+collecting both cut it relative to per-match immediate
notifications, with longer buffering periods cutting more (at a pure
latency cost).
"""

from conftest import scaled

from repro.experiments.figures import figure9a
from repro.experiments.report import render_table


def run_figure9a():
    return figure9a(
        matching_probabilities=(0.25, 0.5, 0.75, 1.0),
        subscriptions=scaled(300),
        publications=scaled(600),
        nodes=500,
    )


def test_figure9a(benchmark):
    rows = benchmark.pedantic(run_figure9a, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["p(match)", "variant", "notify hops/pub", "batches", "matches",
             "mean delay [s]"],
            [
                [r["matching_probability"], r["variant"],
                 r["notify_hops_per_pub"], r["notification_batches"],
                 r["matched_notifications"], r["mean_delay"]]
                for r in rows
            ],
            title="Figure 9(a) — notification buffering and collecting",
        )
    )

    def cell(probability, variant):
        return next(
            r for r in rows
            if r["matching_probability"] == probability and r["variant"] == variant
        )

    none = "no buffering, no collecting"
    for probability in (0.5, 0.75, 1.0):
        baseline = cell(probability, none)["notify_hops_per_pub"]
        assert cell(probability, "buffering only (1x)")["notify_hops_per_pub"] < baseline
        assert (
            cell(probability, "buffering + collecting (5x)")["notify_hops_per_pub"]
            < baseline
        )
        # Longer periods batch more.
        assert (
            cell(probability, "buffering + collecting (5x)")["notify_hops_per_pub"]
            <= cell(probability, "buffering + collecting (1x)")["notify_hops_per_pub"]
        )
    # Traffic grows with matching probability (more matches to notify).
    assert (
        cell(1.0, none)["notify_hops_per_pub"]
        > cell(0.25, none)["notify_hops_per_pub"]
    )
    # The cost of buffering is latency only: delivery delay grows with
    # the buffering period ("introducing only a delay in the
    # notification itself").
    assert (
        cell(0.5, "buffering + collecting (5x)")["mean_delay"]
        > cell(0.5, "buffering only (1x)")["mean_delay"]
        > cell(0.5, none)["mean_delay"]
    )
