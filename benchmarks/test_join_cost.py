"""Self-configuration cost: protocol-level Chord joins and convergence.

The paper's architecture inherits self-configuration from the overlay
(Section 4.1: no manual setup beyond running the overlay itself).  This
bench measures that inherited machinery with the message-level Chord
protocol: per-join lookup cost, stabilization traffic rate, and the
time to re-converge after a batch of concurrent joins.
"""

import random

from conftest import scaled

from repro.experiments.report import render_table
from repro.overlay.chord.protocol import ProtocolChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def run_join_study(ring_sizes=(8, 16, 32, 64)):
    rows = []
    for size in ring_sizes:
        sim = Simulator()
        overlay = ProtocolChordOverlay(sim, KS)
        ids = random.Random(size).sample(range(KS.size), size + 1)
        overlay.bootstrap(ids[0])
        for node_id in ids[1:size]:
            overlay.join(node_id, bootstrap=ids[0])
            sim.run_until(sim.now + 2 * overlay.stabilize_period)
        overlay.run_until_converged(max_rounds=300)

        # Cost of one more join into the converged ring.
        before = overlay.control_messages()
        start = sim.now
        overlay.join(ids[size], bootstrap=ids[0])
        converged, elapsed = overlay.run_until_converged(max_rounds=300)
        join_cost = overlay.control_messages() - before
        rows.append(
            {
                "nodes": size,
                "join_msgs": join_cost,
                "converge_s": elapsed,
                "converged": converged,
            }
        )
    return rows


def test_join_cost(benchmark):
    rows = benchmark.pedantic(run_join_study, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["ring size", "msgs to converge after join", "converge time [s]"],
            [[r["nodes"], r["join_msgs"], r["converge_s"]] for r in rows],
            title="Self-configuration — protocol-level Chord join cost",
        )
    )
    assert all(r["converged"] for r in rows)
    # Join cost includes periodic stabilization during convergence; it
    # must grow sublinearly in the ring size (logarithmic lookup plus
    # O(ring) background stabilization per round — bound generously).
    assert rows[-1]["join_msgs"] < 60 * rows[-1]["nodes"]
