#!/usr/bin/env python
"""Wall-clock throughput harness for the pub/sub hot paths.

Runs a fixed, fully seeded workload (subscriptions + publications over
a converged Chord ring) for every (ring size, ak-mapping) scenario and
measures how fast the simulator chews through it on real hardware:

- ``wall_s``            — wall-clock seconds for the simulation run;
- ``sim_events_per_s``  — kernel events fired per wall-clock second;
- ``app_msgs_per_s``    — one-hop overlay messages per wall-clock second.

Because the workload is seeded and the network delay is fixed, the
*simulated* outcome (delivery counts, per-request hop counts,
notification delays) must be identical run-to-run and across purely
mechanical optimizations.  Each scenario therefore also records a
``fingerprint`` — a SHA-256 over the canonicalized metric multisets —
so a perf PR can prove it did not change behavior: run this harness on
the old tree, then on the new tree with ``--baseline old.json``, and
the output JSON reports per-scenario speedups plus ``metrics_equal``.

Scenarios cover the steady-state hot paths (converged ring, one run
per ring size × AK-mapping) plus churn-heavy scenarios (shaped like
``examples/churn_resilience.py``) that join, remove and crash nodes
as Poisson processes *while* the workload runs — the stress case for
routing-table invalidation and same-tick delivery batching.  The churn
scenarios run once per overlay (Chord, Pastry, CAN) and report the
rebuild/patch/seed maintenance totals alongside the throughput; with
``--check``, a churn scenario that recorded zero patches fails the
gate (incremental maintenance regressed to wholesale rebuilds).

Both suites run ``flash-crowd-n2000`` at full size: Zipf-skewed
subscriptions plus celebrity-key publications with the load
observatory *enabled*, recording the skew analytics (hot rendezvous
keys/nodes, Gini, overload events) and the covering-index
effectiveness (collapsed installs, matcher-work skew vs an untimed
uncollapsed reference leg) in the output JSON; ``--check`` gates on a
perf floor, on subscriptions actually collapsing, and on the covering
run's fingerprint equalling the uncollapsed store's bit for bit.
Every other scenario runs telemetry-disabled, so the ``--check``
fingerprint comparison doubles as the observatory's zero-overhead
gate.

Usage:
    PYTHONPATH=src python benchmarks/bench_throughput.py --out BENCH_PR1.json
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --baseline /tmp/bench_seed.json --out BENCH_PR1.json
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick --profile
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick \
        --baseline benchmarks/baselines/bench_quick_baseline.json --check
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import pstats
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.system import PubSubConfig, PubSubSystem  # noqa: E402
from repro.core.mappings import make_mapping  # noqa: E402
from repro.metrics.fingerprint import behavior_fingerprint  # noqa: E402
from repro.metrics.memory import peak_rss_bytes, reset_peak_rss  # noqa: E402
from repro.metrics.skew import skew_summary  # noqa: E402
from repro.metrics.stats import summarize  # noqa: E402
from repro.overlay.can import CanOverlay  # noqa: E402
from repro.overlay.chord import ChordOverlay  # noqa: E402
from repro.overlay.ids import KeySpace  # noqa: E402
from repro.overlay.network import Network  # noqa: E402
from repro.overlay.pastry import PastryOverlay  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402
from repro.workload.churn import ChurnDriver, ChurnSpec  # noqa: E402
from repro.workload.driver import WorkloadDriver  # noqa: E402
from repro.workload.generator import SubscriptionGenerator  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402

SEED = 20260805
BITS = 13
MAPPINGS = ("attribute-split", "keyspace-split", "selective-attribute")
PROFILE_TOP = 15

#: Overlay factories the churn scenarios cycle through — all three
#: consume the membership delta log, so each gets a churn scenario
#: proving its incremental maintenance holds up (and a maintenance
#: counter summary proving it actually patches instead of rebuilding).
OVERLAYS = {
    "chord": lambda sim, keyspace: ChordOverlay(sim, keyspace, cache_capacity=128),
    "pastry": lambda sim, keyspace: PastryOverlay(sim, keyspace),
    "can": lambda sim, keyspace: CanOverlay(sim, keyspace),
}


def scenario_key(nodes: int, mapping: str) -> str:
    return f"n{nodes}-{mapping}"


def maintenance_counts(overlay) -> dict:
    """Routing-table maintenance totals, live nodes plus departed ones.

    The bench runs with telemetry disabled (NullRegistry), so the
    counters cannot be aggregated centrally.  ``maintenance_totals``
    sums the live nodes' counters on top of the counts the overlay
    accumulated from departed nodes at unregister time, so a churn
    run's totals no longer shrink when a heavily-patched node leaves
    or crashes mid-run.
    """
    return overlay.maintenance_totals()


def hop_percentiles(system: PubSubSystem) -> dict:
    """Path-length distribution over delivered requests.

    One sample per request trace that delivered anywhere: its deepest
    delivery path (``max_path_hops``).  Recorded next to the wall-clock
    numbers so routing shortcuts (e.g. the CAN express links) show up
    as a hop-count drop, not just a throughput bump.  Deliberately
    *outside* the behavior fingerprint: the fingerprint already pins
    per-trace hop counts bit-for-bit, and keeping the summary separate
    lets baselines compare distributions without re-deriving them.
    """
    traces = system.recorder.messages.traces
    summary = summarize(
        trace.max_path_hops
        for trace in traces.values()
        if trace.deliveries
    )
    return {
        "count": summary.count,
        "mean": round(summary.mean, 3),
        "p50": summary.p50,
        "p95": summary.p95,
        "p99": summary.p99,
        "max": summary.maximum,
    }


def fingerprint(system: PubSubSystem) -> dict:
    """Canonical digest of the run's simulated-outcome metrics.

    Delegates to the shared canonicalization in
    :mod:`repro.metrics.fingerprint` — the same frozen digest the
    sharded kernel's determinism contract is stated in — so the bench
    baselines and the shard parity tests can never drift apart.
    """
    return behavior_fingerprint(system.recorder)


def run_one(
    nodes: int, mapping: str, subs: int, pubs: int, overlay_kind: str = "chord"
) -> dict:
    # The chord seeds predate the overlay parameter and keep their
    # original strings so historical baselines stay comparable.
    tag = (
        f"{nodes}:{mapping}"
        if overlay_kind == "chord"
        else f"{overlay_kind}:{nodes}:{mapping}"
    )
    rng = random.Random(f"{SEED}:{tag}")
    sim = Simulator()
    keyspace = KeySpace(BITS)
    overlay = OVERLAYS[overlay_kind](sim, keyspace)
    overlay.build_ring(rng.sample(range(keyspace.size), nodes))
    spec = WorkloadSpec()
    driver_rng = random.Random(f"{SEED}:driver:{tag}")
    config = PubSubConfig()
    # The mapping and the workload driver must agree on the event
    # space; both derive it deterministically from the spec.
    space = SubscriptionGenerator(spec, random.Random(0)).space
    mapping_obj = make_mapping(mapping, space, keyspace)
    system = PubSubSystem(sim, overlay, mapping_obj, config)
    driver = WorkloadDriver(
        system,
        spec,
        driver_rng,
        max_subscriptions=subs,
        max_publications=pubs,
    )
    start = time.perf_counter()
    driver.run_to_completion()
    wall = time.perf_counter() - start
    fp = fingerprint(system)
    events = sim.events_processed
    sends = fp["total_one_hop_sends"]
    return {
        "nodes": nodes,
        "overlay": overlay_kind,
        "mapping": mapping,
        "matcher": config.matcher,
        "subscriptions": subs,
        "publications": pubs,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
        "app_msgs_per_s": round(sends / wall, 2) if wall > 0 else None,
        "hops": hop_percentiles(system),
        "fingerprint": fp,
    }


def run_eqdense(nodes: int, subs: int, pubs: int, matcher: str) -> dict:
    """Equality-dense scenario: every attribute constrained to one value.

    ``selective_range_fraction`` small enough that the max interval span
    is 1 turns every constraint into an equality — the radix matcher's
    best case (exact block lookups) and the grid matcher's worst-ish
    case (dense single-cell candidate lists).  Run once per matcher so
    the output JSON carries a direct radix-vs-grid comparison on the
    workload shape the radix engine was built for.
    """
    rng = random.Random(f"{SEED}:eqdense:{matcher}:{nodes}")
    sim = Simulator()
    keyspace = KeySpace(BITS)
    overlay = ChordOverlay(sim, keyspace, cache_capacity=128)
    overlay.build_ring(rng.sample(range(keyspace.size), nodes))
    spec = WorkloadSpec(
        selective_attributes=(0, 1, 2, 3),
        selective_range_fraction=1e-6,
    )
    config = PubSubConfig(matcher=matcher)
    space = SubscriptionGenerator(spec, random.Random(0)).space
    mapping_obj = make_mapping("selective-attribute", space, keyspace)
    system = PubSubSystem(sim, overlay, mapping_obj, config)
    driver = WorkloadDriver(
        system,
        spec,
        random.Random(f"{SEED}:eqdense-driver:{nodes}"),
        max_subscriptions=subs,
        max_publications=pubs,
    )
    start = time.perf_counter()
    driver.run_to_completion()
    wall = time.perf_counter() - start
    fp = fingerprint(system)
    events = sim.events_processed
    sends = fp["total_one_hop_sends"]
    return {
        "nodes": nodes,
        "mapping": "selective-attribute",
        "matcher": matcher,
        "subscriptions": subs,
        "publications": pubs,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
        "app_msgs_per_s": round(sends / wall, 2) if wall > 0 else None,
        "hops": hop_percentiles(system),
        "fingerprint": fp,
    }


def _match_work_stats(load) -> dict:
    """Matcher-work skew over the active rendezvous nodes of one run."""
    loads = load.match_work_loads()
    summary = skew_summary(loads, 1)
    hottest = summary.top[0] if summary.top else None
    return {
        "active_nodes": summary.count,
        "total_work": summary.total,
        "gini": round(summary.gini, 6),
        "hottest_node": hottest[0] if hottest else None,
        "hottest_share": (
            round(hottest[1] / summary.total, 6)
            if hottest and summary.total
            else 0.0
        ),
    }


def _flash_run(nodes: int, subs: int, pubs: int, covering: bool | None):
    """One seeded flash-crowd run; returns (wall, fp, load, system, events)."""
    tag = f"flash:{nodes}"
    rng = random.Random(f"{SEED}:{tag}")
    sim = Simulator()
    keyspace = KeySpace(BITS)
    telemetry = Telemetry()
    network = Network(sim, telemetry=telemetry)
    overlay = ChordOverlay(sim, keyspace, network=network, cache_capacity=128)
    overlay.build_ring(rng.sample(range(keyspace.size), nodes))
    spec = WorkloadSpec(
        selective_attributes=(0, 1),
        zipf_exponent=1.6,
        temporal_locality=0.9,
        # Partially defined interest (Section 4.2): the crowd states
        # the hot selective attributes and flips a coin per remaining
        # attribute — the workload shape under which subscription
        # covering actually occurs at the hot rendezvous nodes.
        constraint_probability=0.5,
    )
    config = PubSubConfig(covering=covering)
    space = SubscriptionGenerator(spec, random.Random(0)).space
    mapping_obj = make_mapping("selective-attribute", space, keyspace)
    system = PubSubSystem(sim, overlay, mapping_obj, config)
    driver = WorkloadDriver(
        system,
        spec,
        random.Random(f"{SEED}:flash-driver:{nodes}"),
        max_subscriptions=subs,
        max_publications=pubs,
    )
    horizon = driver.estimated_duration()
    samples = 24
    telemetry.sample(0.0)
    for sample in range(1, samples + 1):
        at = horizon * sample / samples
        sim.schedule_at(at, telemetry.sample, at)
    start = time.perf_counter()
    driver.run_to_completion(horizon)
    wall = time.perf_counter() - start
    fp = fingerprint(system)
    load = telemetry.load
    assert load is not None
    return wall, fp, load, system, sim.events_processed


def run_flash_crowd(nodes: int, subs: int, pubs: int) -> dict:
    """Flash-crowd scenario: Zipf-skewed interest, celebrity publications.

    Two selective attributes with a steep Zipf exponent concentrate
    subscription range centers on a few hot values, and high temporal
    locality makes consecutive publications cluster around the same
    point — together the "everyone watches the same ticker" shape that
    drives rendezvous load skew.  Unlike every other scenario, this one
    runs with the load observatory *enabled* (telemetry + LoadMeter,
    sampled on the sim clock) and records the resulting skew analytics
    — top-k hot rendezvous keys/nodes, Gini, p99/mean, overload events
    — in the output JSON next to the throughput numbers.  The behavior
    fingerprint only hashes the MetricsRecorder, so the enabled
    observatory cannot perturb it.

    The timed leg runs with the covering index enabled (the default);
    an untimed *uncollapsed reference* leg then replays the identical
    seeded workload with covering off and the result records both legs'
    matcher-work skew plus a ``fingerprint_equal`` bit — the runtime
    proof that collapsing covered subscriptions is invisible to the
    delivery stream (``--check`` gates on it).
    """
    wall, fp, load, system, events = _flash_run(nodes, subs, pubs, None)
    sends = fp["total_one_hop_sends"]
    node_skew = skew_summary(load.node_loads(), k=10)
    key_skew = skew_summary(load.key_loads(), k=10)
    covering_totals = load.covering_totals()
    _, ref_fp, ref_load, _, _ = _flash_run(nodes, subs, pubs, False)
    return {
        "nodes": nodes,
        "overlay": "chord",
        "mapping": "selective-attribute",
        "matcher": "grid",
        "subscriptions": subs,
        "publications": pubs,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
        "app_msgs_per_s": round(sends / wall, 2) if wall > 0 else None,
        "hops": hop_percentiles(system),
        "skew": {
            "node": node_skew.as_dict(),
            "key": key_skew.as_dict(),
            "skew_samples": len(load.skew_samples),
            "overload_events": len(load.detector.events),
            "overloaded_nodes": sorted(
                {event.node for event in load.detector.events}
            ),
        },
        "covering": {
            **covering_totals,
            "match_work": _match_work_stats(load),
            "uncollapsed_reference": {
                "fingerprint_equal": (
                    fp["sha256"] == ref_fp["sha256"]
                ),
                "match_work": _match_work_stats(ref_load),
            },
        },
        "fingerprint": fp,
    }


def run_churn(nodes: int, subs: int, pubs: int, overlay_kind: str = "chord") -> dict:
    """Churn-heavy scenario: continuous joins/leaves/crashes mid-workload.

    Shaped like ``examples/churn_resilience.py``: a replicated system
    keeps serving publications while Poisson churn perturbs the ring.
    Every membership change invalidates routing state, so this scenario
    is dominated by routing-table maintenance plus the m-cast fan-out —
    exactly the paths the batched delivery engine and the incremental
    table patching target.  ``overlay_kind`` picks the routing substrate
    (all three overlays patch against the same membership delta log);
    the chord seeds predate the parameter and keep their original
    strings so historical baselines stay comparable.
    """
    tag = nodes if overlay_kind == "chord" else f"{overlay_kind}:{nodes}"
    rng = random.Random(f"{SEED}:churn:{tag}")
    sim = Simulator()
    keyspace = KeySpace(BITS)
    overlay = OVERLAYS[overlay_kind](sim, keyspace)
    overlay.build_ring(rng.sample(range(keyspace.size), nodes))
    spec = WorkloadSpec()
    config = PubSubConfig(replication_factor=2, failure_detection_delay=0.3)
    space = SubscriptionGenerator(spec, random.Random(0)).space
    mapping_obj = make_mapping("selective-attribute", space, keyspace)
    system = PubSubSystem(sim, overlay, mapping_obj, config)
    driver = WorkloadDriver(
        system,
        spec,
        random.Random(f"{SEED}:churn-driver:{tag}"),
        max_subscriptions=subs,
        max_publications=pubs,
    )
    churn = ChurnDriver(
        system,
        ChurnSpec(
            join_period=2.0,
            leave_period=2.0,
            crash_period=10.0,
            min_ring_size=max(8, nodes // 2),
        ),
        random.Random(f"{SEED}:churn-events:{tag}"),
    )
    start = time.perf_counter()
    churn.start()
    driver.run_to_completion()
    churn.stop()
    wall = time.perf_counter() - start
    fp = fingerprint(system)
    events = sim.events_processed
    sends = fp["total_one_hop_sends"]
    return {
        "nodes": nodes,
        "overlay": overlay_kind,
        "mapping": "selective-attribute",
        "matcher": config.matcher,
        "subscriptions": subs,
        "publications": pubs,
        "churn_events": {
            "joins": churn.joins,
            "leaves": churn.leaves,
            "crashes": churn.crashes,
        },
        "maintenance": maintenance_counts(overlay),
        "wall_s": round(wall, 6),
        "sim_events": events,
        "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
        "app_msgs_per_s": round(sends / wall, 2) if wall > 0 else None,
        "hops": hop_percentiles(system),
        "fingerprint": fp,
    }


def best_of(repeat: int, fn, *args) -> dict:
    """Run a scenario ``repeat`` times, keep the fastest wall clock.

    The simulated outcome is seeded, so every repeat must produce the
    same fingerprint — asserted here — and min-wall is the standard
    noise filter for timing on shared machines.  Each repeat brackets
    the run with an RSS high-water-mark reset, so ``peak_rss_bytes``
    is the kept run's own footprint, not the harness's lifetime peak.
    """
    best: dict | None = None
    for _ in range(repeat):
        reset_peak_rss()
        result = fn(*args)
        result["peak_rss_bytes"] = peak_rss_bytes()
        if best is not None and (
            result["fingerprint"]["sha256"] != best["fingerprint"]["sha256"]
        ):
            raise AssertionError(
                "non-deterministic scenario: fingerprint changed across repeats"
            )
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    assert best is not None
    return best


def profiled(fn, *args) -> dict:
    """Run one scenario under cProfile and print the top entries."""
    profiler = cProfile.Profile()
    reset_peak_rss()
    profiler.enable()
    result = fn(*args)
    profiler.disable()
    result["peak_rss_bytes"] = peak_rss_bytes()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP)
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small smoke sizes")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier output of this harness to diff against (before/after)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=f"wrap each scenario in cProfile and print the top "
        f"{PROFILE_TOP} cumulative entries",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timed runs per scenario; the fastest wall clock is kept "
        "(noise filter — the simulated outcome is identical every run)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with --baseline: exit non-zero if any shared scenario's "
        "behavior fingerprint differs (CI regression gate; the bench "
        "runs with telemetry/load metering disabled, so this doubles "
        "as the observatory's zero-overhead gate)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="SUBSTRING",
        help="only run scenarios whose key contains this substring "
        "(e.g. 'churn' for targeted before/after comparisons)",
    )
    args = parser.parse_args(argv)
    if args.check and not args.baseline:
        parser.error("--check requires --baseline")

    baseline = None
    if args.baseline:
        # Fail before the (long) measurement runs, not after.
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            parser.error(f"--baseline file not found: {baseline_path}")
        try:
            baseline = json.loads(baseline_path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"--baseline is not valid JSON ({baseline_path}): {exc}")

    if args.quick:
        sizes, subs, pubs = (120,), 60, 120
        churn_nodes, churn_subs, churn_pubs = 100, 40, 80
    else:
        sizes, subs, pubs = (500, 2000), 400, 800
        churn_nodes, churn_subs, churn_pubs = 400, 300, 600

    runs: list[tuple[str, object, tuple]] = [
        (scenario_key(nodes, mapping), run_one, (nodes, mapping, subs, pubs))
        for nodes in sizes
        for mapping in MAPPINGS
    ]
    runs.extend(
        (f"eqdense-{matcher}-n{sizes[0]}", run_eqdense, (sizes[0], subs, pubs, matcher))
        for matcher in ("grid", "radix")
    )
    runs.append(
        (f"churn-n{churn_nodes}", run_churn, (churn_nodes, churn_subs, churn_pubs))
    )
    runs.extend(
        (
            f"churn-{kind}-n{churn_nodes}",
            run_churn,
            (churn_nodes, churn_subs, churn_pubs, kind),
        )
        for kind in ("pastry", "can")
    )
    if not args.quick:
        # CAN's large-n datapoint, comparable to the Chord scale runs
        # (same workload shape as n2000-selective-attribute).
        runs.append(
            (
                "scale-can-n2000",
                run_one,
                (2000, "selective-attribute", subs, pubs, "can"),
            )
        )
    # Flash-crowd load-skew datapoint: the only scenario that runs with
    # the load observatory enabled; its JSON carries the skew analytics
    # (hot keys/nodes, Gini, overload events) and the covering-index
    # effectiveness numbers (collapsed installs, matcher-work skew vs
    # the uncollapsed reference leg).  Full-size even under --quick: it
    # feeds the --check covering and perf gates, so the workload must
    # be the one whose skew the covering index is built to shed.
    runs.append(("flash-crowd-n2000", run_flash_crowd, (2000, 400, 800)))
    if args.scenario is not None:
        runs = [run for run in runs if args.scenario in run[0]]
        if not runs:
            parser.error(f"no scenario key contains {args.scenario!r}")

    scenarios: dict[str, dict] = {}
    for key, runner, run_args in runs:
        print(f"[bench] {key}: ...", flush=True)
        if args.profile:
            print(f"[profile] {key}:", flush=True)
            result = profiled(runner, *run_args)
        else:
            result = best_of(max(1, args.repeat), runner, *run_args)
        scenarios[key] = result
        print(
            f"[bench] {key}: wall={result['wall_s']:.3f}s "
            f"sim_events/s={result['sim_events_per_s']:,} "
            f"msgs/s={result['app_msgs_per_s']:,} "
            f"peak_rss={result['peak_rss_bytes'] / 2**20:.1f}MiB "
            f"fp={result['fingerprint']['sha256'][:12]}",
            flush=True,
        )

    report = {
        "meta": {
            "seed": SEED,
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": scenarios,
    }

    if baseline is not None:
        base_scenarios = baseline.get("scenarios", {})
        delta = {}
        for key, after in scenarios.items():
            before = base_scenarios.get(key)
            if before is None:
                continue
            speedup = (
                after["sim_events_per_s"] / before["sim_events_per_s"]
                if before["sim_events_per_s"]
                else None
            )
            wall_speedup = (
                before["wall_s"] / after["wall_s"] if after["wall_s"] else None
            )
            msgs_speedup = (
                after["app_msgs_per_s"] / before["app_msgs_per_s"]
                if before["app_msgs_per_s"]
                else None
            )
            delta[key] = {
                "before_sim_events_per_s": before["sim_events_per_s"],
                "after_sim_events_per_s": after["sim_events_per_s"],
                "before_wall_s": before["wall_s"],
                "after_wall_s": after["wall_s"],
                "speedup": round(speedup, 3) if speedup else None,
                "wall_speedup": round(wall_speedup, 3) if wall_speedup else None,
                "app_msgs_speedup": round(msgs_speedup, 3) if msgs_speedup else None,
                "metrics_equal": (
                    before["fingerprint"]["sha256"] == after["fingerprint"]["sha256"]
                ),
            }
        report["baseline"] = {
            "meta": baseline.get("meta"),
            "scenarios": base_scenarios,
        }
        report["delta"] = delta
        if not delta:
            print(
                "[delta] WARNING: baseline shares no scenarios with this run "
                "(quick vs full?) — no speedups computed",
                flush=True,
            )
        for key, d in delta.items():
            print(
                f"[delta] {key}: events/s {d['speedup']}x "
                f"wall {d['wall_speedup']}x msgs/s {d['app_msgs_speedup']}x "
                f"metrics_equal={d['metrics_equal']}",
                flush=True,
            )

    out = args.out
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote {out}", flush=True)

    if args.check:
        delta = report.get("delta", {})
        if not delta:
            print("[check] FAIL: no shared scenarios with baseline", flush=True)
            return 1
        # CAN scenarios are gated on the perf floor below (their hop
        # sequences legitimately change when the routing fast path is
        # tuned); every other overlay's fingerprint must stay
        # bit-for-bit identical.  These scenarios run with telemetry —
        # and so load metering — disabled, which makes this comparison
        # the load observatory's zero-overhead gate: a stray load hook
        # on the disabled path would perturb the event/message stream
        # and flip the fingerprints.
        mismatched = [
            k for k, d in delta.items() if not d["metrics_equal"] and "can" not in k
        ]
        if mismatched:
            print(
                f"[check] FAIL: behavior fingerprints diverged from baseline "
                f"in {', '.join(sorted(mismatched))}",
                flush=True,
            )
            return 1
        # Perf floors: the CAN fast path and the flash-crowd hot path
        # (covering + observatory) must not silently regress.  The
        # quick baseline records the machine it ran on; same-machine CI
        # runs must stay within 5% of its throughput on these keys.
        slowed = [
            (k, d)
            for k, d in delta.items()
            if k.startswith(("churn-can", "flash-crowd"))
            and d["before_sim_events_per_s"]
            and d["after_sim_events_per_s"]
            < 0.95 * d["before_sim_events_per_s"]
        ]
        if slowed:
            for key, d in slowed:
                print(
                    f"[check] FAIL: {key} throughput regressed: "
                    f"{d['after_sim_events_per_s']:,} events/s < 0.95 x "
                    f"baseline {d['before_sim_events_per_s']:,}",
                    flush=True,
                )
            return 1
        # Covering-effectiveness gate: the flash-crowd Zipf workload
        # must actually collapse subscriptions, the collapsed run's
        # delivery fingerprint must equal the uncollapsed reference
        # leg's bit for bit, and the hottest rendezvous node's share of
        # matcher work must be strictly below the uncollapsed store's.
        weak: list[str] = []
        for key, result in scenarios.items():
            cov = result.get("covering")
            if cov is None:
                continue
            ref = cov["uncollapsed_reference"]
            if cov["collapsed"] <= 0:
                weak.append(
                    f"{key}: no subscriptions collapsed on the Zipf workload"
                )
            if not ref["fingerprint_equal"]:
                weak.append(
                    f"{key}: covering run's fingerprint diverged from the "
                    f"uncollapsed store"
                )
            if not (
                cov["match_work"]["hottest_share"]
                < ref["match_work"]["hottest_share"]
            ):
                weak.append(
                    f"{key}: hottest-node matcher-work share did not drop "
                    f"({cov['match_work']['hottest_share']} vs uncollapsed "
                    f"{ref['match_work']['hottest_share']})"
                )
        if weak:
            for line in weak:
                print(f"[check] FAIL: {line}", flush=True)
            return 1
        # Maintenance gate: a churn scenario whose nodes never patched
        # has regressed to wholesale rebuilds — the incremental
        # delta-log path stopped being taken, even if behavior (and so
        # the fingerprint) is unchanged.
        unpatched = [
            key
            for key, result in scenarios.items()
            if "maintenance" in result
            and result["maintenance"]["table_patches"] == 0
        ]
        if unpatched:
            print(
                f"[check] FAIL: no incremental table patches recorded in "
                f"{', '.join(sorted(unpatched))} — churn maintenance "
                f"regressed to wholesale rebuilds",
                flush=True,
            )
            return 1
        print(
            f"[check] OK: {len(delta)} scenarios checked against baseline "
            f"(non-CAN fingerprints identical, churn-can/flash-crowd "
            f"within the perf floor); churn scenarios patch "
            f"incrementally; covering collapses and preserves delivery",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
