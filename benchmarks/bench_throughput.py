#!/usr/bin/env python
"""Wall-clock throughput harness for the pub/sub hot paths.

Runs a fixed, fully seeded workload (subscriptions + publications over
a converged Chord ring) for every (ring size, ak-mapping) scenario and
measures how fast the simulator chews through it on real hardware:

- ``wall_s``            — wall-clock seconds for the simulation run;
- ``sim_events_per_s``  — kernel events fired per wall-clock second;
- ``app_msgs_per_s``    — one-hop overlay messages per wall-clock second.

Because the workload is seeded and the network delay is fixed, the
*simulated* outcome (delivery counts, per-request hop counts,
notification delays) must be identical run-to-run and across purely
mechanical optimizations.  Each scenario therefore also records a
``fingerprint`` — a SHA-256 over the canonicalized metric multisets —
so a perf PR can prove it did not change behavior: run this harness on
the old tree, then on the new tree with ``--baseline old.json``, and
the output JSON reports per-scenario speedups plus ``metrics_equal``.

Usage:
    PYTHONPATH=src python benchmarks/bench_throughput.py --out BENCH_PR1.json
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --baseline /tmp/bench_seed.json --out BENCH_PR1.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.system import PubSubConfig, PubSubSystem  # noqa: E402
from repro.core.mappings import make_mapping  # noqa: E402
from repro.overlay.chord import ChordOverlay  # noqa: E402
from repro.overlay.ids import KeySpace  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.workload.driver import WorkloadDriver  # noqa: E402
from repro.workload.generator import SubscriptionGenerator  # noqa: E402
from repro.workload.spec import WorkloadSpec  # noqa: E402

SEED = 20260805
BITS = 13
MAPPINGS = ("attribute-split", "keyspace-split", "selective-attribute")


def scenario_key(nodes: int, mapping: str) -> str:
    return f"n{nodes}-{mapping}"


def fingerprint(system: PubSubSystem) -> dict:
    """Canonical digest of the run's simulated-outcome metrics.

    Everything here is invariant under intra-timestamp event reordering
    (multisets, not sequences) but pins delivery counts, hop counts and
    notification delays bit-for-bit.
    """
    recorder = system.recorder
    stats = recorder.messages
    sends_by_kind = {
        kind.name: stats.total_sends(kind)
        for kind in sorted(
            {trace.kind for trace in stats.traces.values()}, key=lambda k: k.name
        )
    }
    traces = sorted(
        (
            trace.kind.name,
            trace.one_hop_messages,
            trace.max_path_hops,
            sorted((node, repr(when)) for node, when in trace.deliveries),
        )
        for trace in stats.traces.values()
    )
    delays = sorted(repr(d) for d in recorder._notification_delays)
    canonical = json.dumps(
        {
            "sends_by_kind": sends_by_kind,
            "traces": traces,
            "delays": delays,
            "matched_notifications": recorder.matched_notifications,
            "notification_batches": recorder.notification_batches,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    total_deliveries = sum(t.delivery_count for t in stats.traces.values())
    return {
        "sha256": digest,
        "total_one_hop_sends": stats.total_sends(),
        "total_deliveries": total_deliveries,
        "sends_by_kind": sends_by_kind,
        "matched_notifications": recorder.matched_notifications,
        "delay_count": len(recorder._notification_delays),
        "delay_sum_repr": repr(sum(sorted(recorder._notification_delays))),
    }


def run_one(nodes: int, mapping: str, subs: int, pubs: int) -> dict:
    rng = random.Random(f"{SEED}:{nodes}:{mapping}")
    sim = Simulator()
    keyspace = KeySpace(BITS)
    overlay = ChordOverlay(sim, keyspace, cache_capacity=128)
    overlay.build_ring(rng.sample(range(keyspace.size), nodes))
    spec = WorkloadSpec()
    driver_rng = random.Random(f"{SEED}:driver:{nodes}:{mapping}")
    config = PubSubConfig()
    # The mapping and the workload driver must agree on the event
    # space; both derive it deterministically from the spec.
    space = SubscriptionGenerator(spec, random.Random(0)).space
    mapping_obj = make_mapping(mapping, space, keyspace)
    system = PubSubSystem(sim, overlay, mapping_obj, config)
    driver = WorkloadDriver(
        system,
        spec,
        driver_rng,
        max_subscriptions=subs,
        max_publications=pubs,
    )
    start = time.perf_counter()
    driver.run_to_completion()
    wall = time.perf_counter() - start
    fp = fingerprint(system)
    events = sim.events_processed
    sends = fp["total_one_hop_sends"]
    return {
        "nodes": nodes,
        "mapping": mapping,
        "matcher": config.matcher,
        "subscriptions": subs,
        "publications": pubs,
        "wall_s": round(wall, 6),
        "sim_events": events,
        "sim_events_per_s": round(events / wall, 2) if wall > 0 else None,
        "app_msgs_per_s": round(sends / wall, 2) if wall > 0 else None,
        "fingerprint": fp,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small smoke sizes")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier output of this harness to diff against (before/after)",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        # Fail before the (long) measurement runs, not after.
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            parser.error(f"--baseline file not found: {baseline_path}")
        try:
            baseline = json.loads(baseline_path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"--baseline is not valid JSON ({baseline_path}): {exc}")

    if args.quick:
        sizes, subs, pubs = (120,), 60, 120
    else:
        sizes, subs, pubs = (500, 2000), 400, 800

    scenarios: dict[str, dict] = {}
    for nodes in sizes:
        for mapping in MAPPINGS:
            key = scenario_key(nodes, mapping)
            print(f"[bench] {key}: subs={subs} pubs={pubs} ...", flush=True)
            result = run_one(nodes, mapping, subs, pubs)
            scenarios[key] = result
            print(
                f"[bench] {key}: wall={result['wall_s']:.3f}s "
                f"sim_events/s={result['sim_events_per_s']:,} "
                f"msgs/s={result['app_msgs_per_s']:,} "
                f"fp={result['fingerprint']['sha256'][:12]}",
                flush=True,
            )

    report = {
        "meta": {
            "seed": SEED,
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": scenarios,
    }

    if baseline is not None:
        base_scenarios = baseline.get("scenarios", {})
        delta = {}
        for key, after in scenarios.items():
            before = base_scenarios.get(key)
            if before is None:
                continue
            speedup = (
                after["sim_events_per_s"] / before["sim_events_per_s"]
                if before["sim_events_per_s"]
                else None
            )
            delta[key] = {
                "before_sim_events_per_s": before["sim_events_per_s"],
                "after_sim_events_per_s": after["sim_events_per_s"],
                "before_wall_s": before["wall_s"],
                "after_wall_s": after["wall_s"],
                "speedup": round(speedup, 3) if speedup else None,
                "metrics_equal": (
                    before["fingerprint"]["sha256"] == after["fingerprint"]["sha256"]
                ),
            }
        report["baseline"] = {
            "meta": baseline.get("meta"),
            "scenarios": base_scenarios,
        }
        report["delta"] = delta
        if not delta:
            print(
                "[delta] WARNING: baseline shares no scenarios with this run "
                "(quick vs full?) — no speedups computed",
                flush=True,
            )
        for key, d in delta.items():
            print(
                f"[delta] {key}: {d['speedup']}x "
                f"metrics_equal={d['metrics_equal']}",
                flush=True,
            )

    out = args.out
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote {out}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
