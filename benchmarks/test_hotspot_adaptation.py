"""Ablation: nearly-static hotspot adaptation (Section 4.2, Discussion).

A hotspot workload (every subscription's selective constraint centered
on a handful of hot values) is run twice: with the plain static
Selective-Attribute mapping, and with the
:class:`~repro.core.mappings.adaptive.HotspotAdaptiveMapping` wrapper
after one rebalance epoch.  Expected shape: the peak per-node storage
drops substantially while every publication still reaches its
subscribers (the intersection rule is preserved by the split).
"""

import random
from collections import Counter

from conftest import scaled

from repro.core import PubSubConfig, PubSubSystem, RoutingMode, Subscription
from repro.core.mappings import HotspotAdaptiveMapping, SelectiveAttributeMapping
from repro.experiments.report import render_table
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)
HOT_VALUES = (111_111, 444_444, 777_777)


def hotspot_subscriptions(count, rng, space):
    """Subscriptions whose selective constraint hits one of 3 hot values."""
    subs = []
    for _ in range(count):
        hot = rng.choice(HOT_VALUES)
        subs.append(
            Subscription.build(
                space,
                a1=(hot, hot + rng.randint(0, 400)),
                a2=(0, 1_000_000),
                a3=(0, 1_000_000),
                a4=(0, 1_000_000),
            )
        )
    return subs


def run_phase(mapping, subs, events, seed=3):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 300))
    system = PubSubSystem(
        sim, overlay, mapping, PubSubConfig(routing=RoutingMode.MCAST)
    )
    delivered = []
    system.set_global_notify_handler(lambda nid, ns: delivered.extend(ns))
    rng = random.Random(seed + 1)
    nodes = overlay.node_ids()
    for sigma in subs:
        system.subscribe(rng.choice(nodes), sigma)
    sim.run()
    for event in events:
        system.publish(rng.choice(nodes), event)
    sim.run()
    storage = system.subscriptions_per_node()
    return {
        "max_storage": max(storage.values(), default=0),
        "delivered": len(delivered),
    }


def run_ablation():
    spec = WorkloadSpec()
    space = spec.make_space()
    rng = random.Random(11)
    subs = hotspot_subscriptions(scaled(400), rng, space)
    events = []
    for _ in range(scaled(200)):
        hot = rng.choice(HOT_VALUES)
        events.append(
            space.make_event(
                a1=hot + rng.randint(0, 100),
                a2=rng.randrange(spec.domain_size),
                a3=rng.randrange(spec.domain_size),
                a4=rng.randrange(spec.domain_size),
            )
        )

    static = SelectiveAttributeMapping(space, KS)
    static_result = run_phase(static, subs, events)

    # One nearly-static rebalance epoch, driven by the observed per-key
    # subscription load of the static run.
    load = Counter()
    for sigma in subs:
        for key in static.subscription_keys(sigma):
            load[key] += 1
    adaptive = HotspotAdaptiveMapping(
        SelectiveAttributeMapping(space, KS), fan_out=4
    )
    # Split every key that carried load: the census only contains the
    # rendezvous keys of the three hot regions, which are exactly the
    # hotspot (a 300-node ring leaves each region's whole key arc on a
    # single node).
    adaptive.rebalance(dict(load), hot_fraction=1.0)
    adaptive_result = run_phase(adaptive, subs, events)
    return static_result, adaptive_result, adaptive.epoch


def test_hotspot_adaptation(benchmark):
    static, adaptive, epochs = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["mapping", "max subs/node", "notifications delivered"],
            [
                ["static selective-attribute", static["max_storage"],
                 static["delivered"]],
                [f"hotspot-adaptive ({epochs} epoch)", adaptive["max_storage"],
                 adaptive["delivered"]],
            ],
            title="Ablation — nearly-static hotspot adaptation (Section 4.2)",
        )
    )
    # Storage hotspot is cut markedly; no notification is lost.  (The
    # residual max is typically two sibling keys landing on one node —
    # with ~36 siblings over 300 nodes a birthday collision is likely —
    # so the bound is looser than 1/fan_out.)
    assert adaptive["max_storage"] < 0.6 * static["max_storage"]
    assert adaptive["delivered"] >= static["delivered"]
