"""Performance trajectory across committed per-PR benchmark snapshots.

Every PR that moves a hot path commits its benchmark JSON as
``BENCH_PR<N>.json`` at the repo root.  This script aggregates those
snapshots into one table per metric — events/s and peak RSS, scenario
rows vs. PR columns — so a perf regression that slipped past a single
PR's before/after delta still shows up as a dip in the trajectory.

Two snapshot shapes are understood:

* throughput format (``bench_throughput.py``):
  ``scenarios -> {name: {sim_events_per_s, peak_rss_bytes, ...}}``
* scale format (``bench_scale.py``):
  ``scenarios -> {name: {legs: {legname: {sim_events_per_s,
  worker_peak_rss_bytes, coordinator_peak_rss_bytes, ...}}}}`` —
  flattened to one row per leg, keyed ``"{scenario}/{leg}"``.

A scenario is flagged as a regression when its latest events/s falls
below ``--threshold`` (default 0.9) times the most recent earlier PR
that recorded it.  The flag is informational: trajectory dips often
mean the scenario itself got heavier (more features under test), so
the script always exits 0 and leaves judgement to the reader.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: ``BENCH_PR<N>.json`` at the repo root; <N> orders the columns.
_SNAPSHOT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")

#: Latest / previous events-per-second ratio below which we flag.
DEFAULT_THRESHOLD = 0.9


def _flatten(snapshot: dict) -> dict[str, dict]:
    """Map ``scenario`` (or ``scenario/leg``) -> flat metric dict."""
    rows: dict[str, dict] = {}
    for name, payload in snapshot.get("scenarios", {}).items():
        legs = payload.get("legs") if isinstance(payload, dict) else None
        if legs is None:
            rows[name] = payload
            continue
        for leg_name, leg in legs.items():
            workers = leg.get("worker_peak_rss_bytes") or []
            peaks = [p for p in workers if p is not None]
            coord = leg.get("coordinator_peak_rss_bytes")
            if coord is not None:
                peaks.append(coord)
            rows[f"{name}/{leg_name}"] = {
                "sim_events_per_s": leg.get("sim_events_per_s"),
                "peak_rss_bytes": max(peaks) if peaks else None,
            }
    return rows


def load_snapshots(root: Path) -> list[tuple[int, dict[str, dict]]]:
    """Load ``(pr_number, flattened_scenarios)`` sorted by PR number."""
    snapshots = []
    for path in root.iterdir():
        match = _SNAPSHOT_RE.match(path.name)
        if not match:
            continue
        try:
            snapshot = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"[trajectory] skipping {path.name}: {exc}", file=sys.stderr)
            continue
        snapshots.append((int(match.group(1)), _flatten(snapshot)))
    snapshots.sort(key=lambda item: item[0])
    return snapshots


def _fmt_rate(value) -> str:
    return f"{value:,.0f}" if isinstance(value, (int, float)) else "-"


def _fmt_rss(value) -> str:
    if not isinstance(value, (int, float)) or value <= 0:
        return "-"
    return f"{value / (1 << 20):,.0f}M"


def _table(
    title: str,
    columns: list[int],
    rows: dict[str, list],
    fmt,
    flags: dict[str, str] | None = None,
) -> list[str]:
    head = ["scenario"] + [f"PR{pr}" for pr in columns]
    body = []
    for name in sorted(rows):
        cells = [fmt(value) for value in rows[name]]
        suffix = (flags or {}).get(name, "")
        body.append([name + suffix] + cells)
    widths = [
        max(len(head[i]), *(len(r[i]) for r in body)) if body else len(head[i])
        for i in range(len(head))
    ]
    lines = [title, "-" * len(title)]
    lines.append(
        "  ".join(
            h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
            for i, h in enumerate(head)
        )
    )
    for row in body:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return lines


def build_report(
    snapshots: list[tuple[int, dict[str, dict]]],
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """Render the trajectory tables plus the regression summary."""
    if not snapshots:
        return "perf trajectory: no BENCH_PR*.json snapshots found\n"
    columns = [pr for pr, _ in snapshots]
    names = sorted({name for _, rows in snapshots for name in rows})
    rates: dict[str, list] = {}
    rss: dict[str, list] = {}
    for name in names:
        rates[name] = [rows.get(name, {}).get("sim_events_per_s")
                       for _, rows in snapshots]
        rss[name] = [rows.get(name, {}).get("peak_rss_bytes")
                     for _, rows in snapshots]

    regressions: list[str] = []
    flags: dict[str, str] = {}
    for name in names:
        series = [
            (columns[i], value)
            for i, value in enumerate(rates[name])
            if isinstance(value, (int, float)) and value > 0
        ]
        if len(series) < 2:
            continue
        (prev_pr, prev), (last_pr, last) = series[-2], series[-1]
        if last < threshold * prev:
            flags[name] = " !"
            regressions.append(
                f"  {name}: {last:,.0f} ev/s at PR{last_pr} is "
                f"{last / prev:.2f}x of {prev:,.0f} at PR{prev_pr} "
                f"(threshold {threshold:.2f}x)"
            )

    lines: list[str] = []
    title = f"perf trajectory — {len(snapshots)} snapshot(s)"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append("")
    lines += _table("events per second", columns, rates, _fmt_rate, flags)
    lines.append("")
    lines += _table("peak RSS", columns, rss, _fmt_rss)
    lines.append("")
    if regressions:
        lines.append(f"regressions (latest < {threshold:.2f}x previous):")
        lines += regressions
    else:
        lines.append(
            f"regressions (latest < {threshold:.2f}x previous): none"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory holding BENCH_PR*.json (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="flag scenarios whose latest events/s falls below this "
        "fraction of the previous snapshot (default %(default)s)",
    )
    args = parser.parse_args(argv)
    print(build_report(load_snapshots(args.dir), args.threshold), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
