"""Section 5.1 text: baseline unicast routing cost and finger caching.

"Upon n=500, the average number of hops it took the Chord simulator to
deliver a single message between a pair of random nodes was about 2.5.
This is better than log n due to the finger caching mechanism."

This bench sweeps the location-cache capacity: 0 reproduces textbook
Chord (~0.5 log2 n = 4.5 hops), larger caches approach the paper's
figure (our cache saturates around 3.5 for uniformly random pairs; see
EXPERIMENTS.md for the discussion of the remaining gap).
"""

from conftest import scaled

from repro.experiments.figures import baseline_routing
from repro.experiments.report import render_table


def run_baseline():
    return baseline_routing(
        nodes=500,
        publications=scaled(2500),
        cache_capacities=(0, 32, 128),
    )


def test_baseline_routing(benchmark):
    rows = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["cache capacity", "hops/message", "0.5*log2(n)"],
            [[r["cache_capacity"], r["pub_hops"], r["half_log2_n"]] for r in rows],
            title="Section 5.1 — unicast hops at n=500 (finger caching)",
        )
    )
    by_cache = {r["cache_capacity"]: r["pub_hops"] for r in rows}
    assert by_cache[0] > 4.0  # textbook Chord (~0.5 log2 n)
    assert by_cache[128] <= by_cache[32] <= by_cache[0]
    # Caching beats plain fingers decisively (the means still include
    # the cold warm-up phase, so compare relative to the cache-less run).
    assert by_cache[128] < 0.85 * by_cache[0]
