"""Figure 5: hops per request for the three mappings x {unicast, m-cast}.

Paper claims reproduced here (Section 5.2, "Network Performance"):
- publications map to 1 key under Mappings 1-2, 4 keys under Mapping 3;
- subscriptions map to ~10x more keys under Mapping 1 than Mapping 3,
  and to "slightly over one" key under Mapping 2;
- m-cast cuts the subscription hop count by >90% where the key fan-out
  is large (Mappings 1 and 3).
"""

from conftest import scaled

from repro.experiments.figures import figure5
from repro.experiments.report import render_table


def run_figure5():
    return figure5(
        subscriptions=scaled(300),
        publications=scaled(300),
        nodes=500,
    )


def test_figure5(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["mapping", "routing", "sub hops", "pub hops", "notify hops",
             "keys/sub", "keys/pub"],
            [
                [r["mapping"], r["routing"], r["sub_hops"], r["pub_hops"],
                 r["notify_hops"], r["keys_per_sub"], r["keys_per_pub"]]
                for r in rows
            ],
            title="Figure 5 — hops per request",
        )
    )

    def row(mapping, routing):
        return next(
            r for r in rows if r["mapping"] == mapping and r["routing"] == routing
        )

    # The paper's headline: >90% subscription-hop reduction with m-cast.
    for mapping in ("attribute-split", "selective-attribute"):
        saving = 1 - row(mapping, "mcast")["sub_hops"] / row(mapping, "unicast")["sub_hops"]
        assert saving > 0.9, f"{mapping}: m-cast saving {saving:.0%}"
    # Cardinality narrative.
    ratio = (
        row("attribute-split", "mcast")["keys_per_sub"]
        / row("selective-attribute", "mcast")["keys_per_sub"]
    )
    assert 5 < ratio < 15
    assert row("keyspace-split", "mcast")["keys_per_sub"] < 2.5
    assert row("selective-attribute", "mcast")["keys_per_pub"] > 3.5
