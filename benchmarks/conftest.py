"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's figures (or a Section
4.3.1 analysis claim) and prints the series the paper plots.  Scales
default to laptop-friendly values; set ``REPRO_BENCH_SCALE`` to a float
(e.g. ``REPRO_BENCH_SCALE=8`` approaches the paper's 25 000-subscription
runs) to scale workload sizes up.
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, minimum: int = 1) -> int:
    """Scale a workload size by REPRO_BENCH_SCALE."""
    return max(minimum, int(base * SCALE))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
