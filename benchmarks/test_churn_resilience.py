"""Adaptiveness under continuous churn (Section 4.1).

The architecture's claim: node joins, departures and crashes are
absorbed by the overlay's re-mapping plus state transfer/replication,
with no manual intervention.  This bench runs the paper's workload
(matching probability forced to 1 so every publication *should*
notify) under increasing churn intensity, with and without replication,
and reports the delivered fraction.

Expected shape: graceful joins/leaves barely dent delivery (state
transfer moves subscriptions with their keys); crashes without
replication lose the crashed rendezvous' subscriptions; replication
recovers most of that loss.
"""

import random

from conftest import scaled

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.experiments.report import render_table
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.churn import ChurnDriver, ChurnSpec
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def run_condition(label, churn_spec, replication, seed=19):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 200))
    workload_spec = WorkloadSpec(matching_probability=1.0)
    space = workload_spec.make_space()
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping("selective-attribute", space, KS),
        PubSubConfig(
            routing=RoutingMode.MCAST,
            replication_factor=replication,
            failure_detection_delay=0.3,
        ),
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    churn = ChurnDriver(system, churn_spec, random.Random(seed + 1))
    workload = WorkloadDriver(
        system, workload_spec, random.Random(seed + 2),
        max_subscriptions=scaled(60), max_publications=scaled(120),
    )
    churn.start()
    workload.run_to_completion()
    churn.stop()
    got = {(n.event.event_id, n.subscription_id) for n in received}
    expected = {
        (event.event_id, sigma.subscription_id)
        for event in workload.injected_events
        for sigma in workload.injected_subscriptions
        if sigma.matches(event)
    }
    ratio = len(got & expected) / len(expected) if expected else 1.0
    return {
        "condition": label,
        "churn_events": churn.events,
        "expected": len(expected),
        "delivered_ratio": ratio,
    }


def run_study():
    quiet = ChurnSpec()
    graceful = ChurnSpec(join_period=20.0, leave_period=20.0)
    crashy = ChurnSpec(join_period=20.0, crash_period=25.0)
    return [
        run_condition("no churn", quiet, replication=0),
        run_condition("joins+leaves (graceful)", graceful, replication=0),
        run_condition("joins+crashes, r=0", crashy, replication=0),
        run_condition("joins+crashes, r=2", crashy, replication=2),
    ]


def test_churn_resilience(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["condition", "churn events", "expected matches", "delivered"],
            [
                [r["condition"], r["churn_events"], r["expected"],
                 f"{r['delivered_ratio']:.1%}"]
                for r in rows
            ],
            title="Adaptiveness — delivery under continuous churn (n=200)",
        )
    )
    by_label = {r["condition"]: r for r in rows}
    assert by_label["no churn"]["delivered_ratio"] == 1.0
    # Graceful churn: state transfer keeps delivery near-perfect.
    assert by_label["joins+leaves (graceful)"]["delivered_ratio"] > 0.95
    # Crashes hurt without replication; replication recovers most of it.
    r0 = by_label["joins+crashes, r=0"]["delivered_ratio"]
    r2 = by_label["joins+crashes, r=2"]["delivered_ratio"]
    assert r2 >= r0
    assert r2 > 0.9