"""Figure 8: max subscriptions per node vs ring size n.

Paper shapes: total stored copies grow with n under Mappings 1 and 3
(a key range is split across more rendezvous nodes, so subscriptions
are duplicated), while Mapping 2's per-node storage is nearly constant;
with one selective attribute, Mapping 3 beats Mapping 2 below a
crossover (paper: n around 2500).
"""

from conftest import scaled

from repro.experiments.figures import figure8
from repro.experiments.report import render_table

NODE_COUNTS = (100, 250, 500, 1000, 2000, 4000)


def run_figure8():
    return figure8(
        node_counts=NODE_COUNTS,
        subscriptions=scaled(3000),
        selective_counts=(0, 1),
    )


def test_figure8(benchmark):
    rows = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["selective", "nodes", "mapping", "max subs/node", "mean subs/node"],
            [
                [r["selective_attributes"], r["nodes"], r["mapping"],
                 r["max_subs_per_node"], r["mean_subs_per_node"]]
                for r in rows
            ],
            title="Figure 8 — scalability of memory consumption",
        )
    )

    def mean_series(selective, mapping):
        return [
            r["mean_subs_per_node"]
            for r in rows
            if r["selective_attributes"] == selective and r["mapping"] == mapping
        ]

    # Total copies = mean * n.  Mapping 2's total stays ~flat; mappings
    # 1 and 3 duplicate across more rendezvous as n grows.
    def total_growth(selective, mapping):
        series = mean_series(selective, mapping)
        totals = [m * n for m, n in zip(series, NODE_COUNTS)]
        return totals[-1] / totals[0]

    assert total_growth(0, "keyspace-split") < 2.0
    assert total_growth(0, "attribute-split") > 3.0
    assert total_growth(0, "selective-attribute") > 3.0

    # With one selective attribute, Mapping 3 stores less than Mapping 2
    # on small rings (the paper's crossover story).
    def max_at(selective, mapping, n):
        return next(
            r["max_subs_per_node"]
            for r in rows
            if r["selective_attributes"] == selective
            and r["mapping"] == mapping
            and r["nodes"] == n
        )

    small_n = NODE_COUNTS[0]
    assert max_at(1, "selective-attribute", small_n) <= max_at(
        1, "keyspace-split", small_n
    ) * 1.5
