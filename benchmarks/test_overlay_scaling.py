"""Routing-geometry comparison: hops vs n across the three overlays.

Chord and the Pastry-style prefix router route in O(log n); CAN's
2-d greedy geometric routing costs O(sqrt(n)).  The crossover in this
table is the quantitative content of the paper's overlay-portability
footnote: the pub/sub layer is oblivious to the choice, but the choice
prices every message.
"""

import math
import random

from conftest import scaled

from repro.experiments.report import render_table
from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator

KS = KeySpace(13)
NODE_COUNTS = (64, 128, 256, 512, 1024)


def mean_hops(overlay_cls, n, seed=5, messages=None):
    messages = messages or scaled(200)
    sim = Simulator()
    if overlay_cls is ChordOverlay:
        overlay = ChordOverlay(sim, KS, cache_capacity=0)
    else:
        overlay = overlay_cls(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    hops = []
    overlay.set_deliver(lambda nid, m: hops.append(m.hops))
    rng = random.Random(seed + 1)
    nodes = overlay.node_ids()
    for _ in range(messages):
        src = rng.choice(nodes)
        key = rng.randrange(KS.size)
        message = OverlayMessage(
            kind=MessageKind.PUBLICATION, payload=None,
            request_id=next_request_id(), origin=src,
        )
        overlay.send(src, key, message)
    sim.run()
    return sum(hops) / len(hops)


def run_comparison():
    rows = []
    for n in NODE_COUNTS:
        rows.append(
            {
                "nodes": n,
                "chord": mean_hops(ChordOverlay, n),
                "pastry": mean_hops(PastryOverlay, n),
                "can": mean_hops(CanOverlay, n),
                "log2_n": math.log2(n),
                "sqrt_n": math.sqrt(n),
            }
        )
    return rows


def test_overlay_scaling(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["nodes", "chord", "pastry", "can", "log2(n)", "sqrt(n)"],
            [
                [r["nodes"], r["chord"], r["pastry"], r["can"],
                 r["log2_n"], r["sqrt_n"]]
                for r in rows
            ],
            title="Routing geometry — mean unicast hops vs n",
        )
    )
    first, last = rows[0], rows[-1]
    # Log-geometry overlays grow slowly...
    assert last["chord"] / first["chord"] < 2.5
    assert last["pastry"] / first["pastry"] < 2.5
    # ...while CAN tracks sqrt(n): a 16x population costs ~4x the hops.
    assert last["can"] / first["can"] > 2.0
    # And at 1024 nodes the geometric overlay is clearly the priciest.
    assert last["can"] > last["chord"]
    assert last["can"] > last["pastry"]
