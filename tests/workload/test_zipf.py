"""The Zipf sampler used for selective range centers."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfSampler


def test_validation():
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        ZipfSampler(0, 1.0, rng)
    with pytest.raises(ConfigurationError):
        ZipfSampler(10, 0.0, rng)


def test_values_in_domain():
    sampler = ZipfSampler(1000, 0.99, random.Random(1))
    for _ in range(500):
        assert 0 <= sampler.sample() < 1000


def test_rank_one_dominates():
    sampler = ZipfSampler(10_000, 1.2, random.Random(2))
    ranks = Counter(sampler.sample_rank() for _ in range(5000))
    assert ranks[1] == max(ranks.values())
    # Rank 1 should dwarf, say, rank 100.
    assert ranks[1] > 10 * ranks.get(100, 0)


def test_skew_increases_concentration():
    def top_share(exponent):
        sampler = ZipfSampler(10_000, exponent, random.Random(3))
        ranks = [sampler.sample_rank() for _ in range(4000)]
        return sum(1 for r in ranks if r <= 10) / len(ranks)

    assert top_share(1.5) > top_share(0.5)


def test_spread_moves_hotspot_off_zero():
    sampler = ZipfSampler(10_000, 1.2, random.Random(4), spread=True)
    values = Counter(sampler.sample() for _ in range(3000))
    hottest, _ = values.most_common(1)[0]
    assert hottest != 0  # golden-ratio stride + random offset


def test_no_spread_maps_rank_to_value_directly():
    sampler = ZipfSampler(10_000, 1.2, random.Random(5), spread=False)
    values = Counter(sampler.sample() for _ in range(3000))
    hottest, _ = values.most_common(1)[0]
    assert hottest == 0  # rank 1 -> value 0


def test_single_value_domain():
    sampler = ZipfSampler(1, 1.0, random.Random(6))
    assert sampler.sample() == 0


def test_deterministic_given_rng():
    a = ZipfSampler(1000, 0.99, random.Random(7))
    b = ZipfSampler(1000, 0.99, random.Random(7))
    assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]
