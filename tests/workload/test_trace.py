"""Trace generation, replay and JSON persistence."""

import random

from repro.core import EventSpace, PubSubSystem
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace, TraceOp

KS = KeySpace(13)


def make_trace(subs=10, pubs=8, ttl=None, seed=4):
    spec = WorkloadSpec(subscription_ttl=ttl)
    node_ids = random.Random(seed).sample(range(KS.size), 50)
    return (
        Trace.generate(
            spec, random.Random(seed + 1), node_ids, subscriptions=subs,
            publications=pubs,
        ),
        node_ids,
    )


def test_generate_counts_and_ordering():
    trace, _ = make_trace(subs=10, pubs=8)
    assert len(trace) == 18
    times = [op.time for op in trace.ops]
    assert times == sorted(times)
    assert sum(1 for op in trace.ops if op.kind == "sub") == 10
    assert sum(1 for op in trace.ops if op.kind == "pub") == 8


def test_json_roundtrip():
    trace, _ = make_trace(subs=5, pubs=5, ttl=42.0)
    restored = Trace.from_json(trace.to_json())
    assert len(restored) == len(trace)
    for original, loaded in zip(trace.ops, restored.ops):
        assert original.time == loaded.time
        assert original.kind == loaded.kind
        assert original.node == loaded.node
        if original.subscription is not None:
            assert (
                loaded.subscription.subscription_id
                == original.subscription.subscription_id
            )
            assert loaded.subscription.constraints == original.subscription.constraints
            assert loaded.ttl == 42.0
        if original.event is not None:
            assert loaded.event.values == original.event.values
            assert loaded.event.event_id == original.event.event_id


def test_save_load(tmp_path):
    trace, _ = make_trace(subs=3, pubs=2)
    path = tmp_path / "trace.json"
    trace.save(path)
    assert len(Trace.load(path)) == 5


def test_replay_drives_a_system():
    trace, node_ids = make_trace(subs=8, pubs=8)
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(node_ids)
    system = PubSubSystem(
        sim, overlay, make_mapping("keyspace-split", trace.space, KS)
    )
    trace.replay(system)
    messages = system.recorder.messages
    from repro.overlay.api import MessageKind

    assert len(messages.requests_of_kind(MessageKind.SUBSCRIPTION)) == 8
    assert len(messages.requests_of_kind(MessageKind.PUBLICATION)) == 8


def test_replay_same_trace_different_mappings_comparable():
    """The point of traces: a paired comparison on identical input."""
    trace, node_ids = make_trace(subs=12, pubs=0, seed=9)
    from repro.overlay.api import MessageKind

    hops = {}
    for mapping_name in ("attribute-split", "selective-attribute"):
        sim = Simulator()
        overlay = ChordOverlay(sim, KS, cache_capacity=0)
        overlay.build_ring(node_ids)
        system = PubSubSystem(
            sim, overlay, make_mapping(mapping_name, trace.space, KS)
        )
        trace.replay(system)
        hops[mapping_name] = system.recorder.messages.mean_hops_per_request(
            MessageKind.SUBSCRIPTION
        )
    # Identical workload: attribute-split must cost strictly more.
    assert hops["attribute-split"] > hops["selective-attribute"]


def test_trace_roundtrip_preserves_attribute_kinds():
    """String attributes survive serialization (footnote 2 workloads)."""
    from repro.core.events import Attribute, EventSpace

    space = EventSpace(
        (Attribute("topic", 1000, kind="string"), Attribute("v", 1000))
    )
    event = space.make_event(topic="sports", v=5)
    trace = Trace(
        space,
        [TraceOp(time=1.0, kind="pub", node=10, event=event)],
    )
    restored = Trace.from_json(trace.to_json())
    assert restored.space.attributes[0].kind == "string"
    assert restored.space.attributes[1].kind == "int"
    assert restored.ops[0].event.values == event.values


def test_trace_json_carries_version():
    import json

    trace, _ = make_trace(subs=1, pubs=0)
    assert json.loads(trace.to_json())["version"] == 1
