"""The churn driver: Poisson membership events against a live system."""

import random

import pytest

from repro.core import EventSpace, PubSubConfig, PubSubSystem
from repro.core.mappings import make_mapping
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.churn import ChurnDriver, ChurnSpec

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)


def build(n=60, seed=3, config=None):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim, overlay, make_mapping("keyspace-split", SPACE, KS), config
    )
    return sim, system


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ChurnSpec(join_period=-1)
    with pytest.raises(ConfigurationError):
        ChurnSpec(min_ring_size=1)


def test_join_stream_grows_ring():
    sim, system = build()
    driver = ChurnDriver(system, ChurnSpec(join_period=5.0), random.Random(1))
    driver.start()
    before = len(system.overlay.node_ids())
    sim.run_until(200.0)
    driver.stop()
    assert driver.joins > 10
    assert len(system.overlay.node_ids()) == before + driver.joins


def test_leave_respects_min_ring_size():
    sim, system = build(n=12)
    spec = ChurnSpec(leave_period=1.0, min_ring_size=10)
    driver = ChurnDriver(system, spec, random.Random(2))
    driver.start()
    sim.run_until(300.0)
    driver.stop()
    assert len(system.overlay.node_ids()) >= 10


def test_protected_nodes_never_removed():
    sim, system = build(n=30)
    protected = set(system.overlay.node_ids()[:3])
    driver = ChurnDriver(
        system,
        ChurnSpec(leave_period=1.0, crash_period=1.0, min_ring_size=4),
        random.Random(3),
        protected=protected,
    )
    driver.start()
    sim.run_until(300.0)
    driver.stop()
    for node_id in protected:
        assert system.overlay.is_alive(node_id)


def test_mixed_churn_counts():
    sim, system = build(n=50)
    driver = ChurnDriver(
        system,
        ChurnSpec(join_period=4.0, leave_period=6.0, crash_period=8.0),
        random.Random(4),
    )
    driver.start()
    sim.run_until(400.0)
    driver.stop()
    assert driver.joins > 0 and driver.leaves > 0 and driver.crashes > 0
    assert driver.events == driver.joins + driver.leaves + driver.crashes
    # Stopping really stops.
    events = driver.events
    sim.run_until(600.0)
    assert driver.events == events


def test_double_start_is_noop():
    sim, system = build(n=20)
    driver = ChurnDriver(system, ChurnSpec(join_period=5.0), random.Random(5))
    driver.start()
    driver.start()
    sim.run_until(50.0)
    # One join stream, not two: ~10 joins expected, not ~20.
    assert driver.joins <= 16
