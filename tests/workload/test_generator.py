"""Subscription and event generators: Section 5.1 workload properties."""

import random
import statistics

from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


def test_subscription_constrains_every_attribute():
    spec = WorkloadSpec()
    generator = SubscriptionGenerator(spec, random.Random(1))
    for _ in range(20):
        sigma = generator.generate()
        assert len(sigma.constraints) == spec.dimensions
        assert not sigma.is_partial


def test_range_widths_within_class_bounds():
    spec = WorkloadSpec(selective_attributes=(0,))
    generator = SubscriptionGenerator(spec, random.Random(2))
    selective_spans, nonselective_spans = [], []
    for _ in range(300):
        sigma = generator.generate()
        selective_spans.append(sigma.constraint_on(0).span)
        nonselective_spans.append(sigma.constraint_on(1).span)
    assert max(selective_spans) <= spec.max_range(0)
    assert max(nonselective_spans) <= spec.max_range(1)
    # Uniform [1, X] should average around X/2.
    assert 0.3 * spec.max_range(1) < statistics.mean(nonselective_spans) < 0.7 * spec.max_range(1)


def test_constraints_stay_in_domain():
    spec = WorkloadSpec()
    generator = SubscriptionGenerator(spec, random.Random(3))
    for _ in range(200):
        for constraint in generator.generate().constraints:
            assert 0 <= constraint.low <= constraint.high <= spec.attr_max


def test_zipf_centers_concentrate_selective_attribute():
    spec = WorkloadSpec(selective_attributes=(0,))
    generator = SubscriptionGenerator(spec, random.Random(4))
    centers = [
        (s.constraint_on(0).low + s.constraint_on(0).high) // 2
        for s in (generator.generate() for _ in range(1000))
    ]
    # Zipf skew (s = 0.8): hot values repeat — the most popular center
    # recurs several times, while a uniform draw over 10^6 values would
    # almost surely produce 1000 distinct centers (birthday bound ~0.5
    # expected collisions).
    top_multiplicity = max(statistics.multimode(centers), key=centers.count)
    assert centers.count(top_multiplicity) >= 3
    assert len(set(centers)) <= len(centers) - 10


def test_matching_probability_honored():
    spec = WorkloadSpec(matching_probability=0.5)
    rng = random.Random(5)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    subs = [sub_generator.generate() for _ in range(50)]
    for sigma in subs:
        event_generator.register(sigma, expire_at=None)
    matched = 0
    trials = 400
    for _ in range(trials):
        event = event_generator.generate(now=0.0)
        if any(s.matches(event) for s in subs):
            matched += 1
    assert 0.4 < matched / trials < 0.6


def test_matching_probability_one_always_matches():
    spec = WorkloadSpec(matching_probability=1.0)
    rng = random.Random(6)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    subs = [sub_generator.generate() for _ in range(10)]
    for sigma in subs:
        event_generator.register(sigma, expire_at=None)
    for _ in range(100):
        event = event_generator.generate(now=0.0)
        assert any(s.matches(event) for s in subs)


def test_matching_probability_zero_never_matches():
    spec = WorkloadSpec(matching_probability=0.0)
    rng = random.Random(7)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    subs = [sub_generator.generate() for _ in range(10)]
    for sigma in subs:
        event_generator.register(sigma, expire_at=None)
    for _ in range(100):
        event = event_generator.generate(now=0.0)
        assert not any(s.matches(event) for s in subs)


def test_no_live_subscriptions_yields_uniform_events():
    spec = WorkloadSpec(matching_probability=1.0)
    rng = random.Random(8)
    generator = EventGenerator(spec, WorkloadSpec().make_space(), rng)
    event = generator.generate(now=0.0)
    assert len(event.values) == spec.dimensions


def test_expired_subscriptions_leave_live_view():
    spec = WorkloadSpec(matching_probability=1.0)
    rng = random.Random(9)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    sigma = sub_generator.generate()
    event_generator.register(sigma, expire_at=10.0)
    assert event_generator.live_count == 1
    event_generator.evict_expired(now=10.0)
    assert event_generator.live_count == 0
    # With nothing live, generation still works.
    event_generator.generate(now=11.0)


def test_unregister():
    spec = WorkloadSpec()
    rng = random.Random(10)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    sigma = sub_generator.generate()
    event_generator.register(sigma, expire_at=None)
    event_generator.unregister(sigma.subscription_id)
    assert event_generator.live_count == 0
