"""The temporal-locality event-stream model (Section 4.3.2 motivation)."""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(temporal_locality=1.5)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(temporal_locality=-0.1)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(locality_jitter_fraction=0.0)


def test_consecutive_events_are_close_under_locality():
    spec = WorkloadSpec(
        temporal_locality=1.0, locality_jitter_fraction=0.001,
        matching_probability=0.0,
    )
    rng = random.Random(1)
    generator = EventGenerator(spec, spec.make_space(), rng)
    events = [generator.generate(now=0.0) for _ in range(50)]
    jitter = int(spec.attr_max * spec.locality_jitter_fraction)
    for previous, current in zip(events, events[1:]):
        for a, b in zip(previous.values, current.values):
            assert abs(a - b) <= jitter


def test_zero_locality_events_are_independent():
    spec = WorkloadSpec(temporal_locality=0.0, matching_probability=0.0)
    rng = random.Random(2)
    generator = EventGenerator(spec, spec.make_space(), rng)
    events = [generator.generate(now=0.0) for _ in range(50)]
    gaps = [
        abs(a.values[0] - b.values[0]) for a, b in zip(events, events[1:])
    ]
    # Uniform draws over 10^6 are far apart on average.
    assert statistics.mean(gaps) > 50_000


def test_locality_preserves_matching_rate_roughly():
    spec = WorkloadSpec(
        temporal_locality=0.85, locality_jitter_fraction=0.0005,
        matching_probability=0.5,
    )
    rng = random.Random(3)
    sub_generator = SubscriptionGenerator(spec, rng)
    generator = EventGenerator(spec, sub_generator.space, rng)
    subs = [sub_generator.generate() for _ in range(40)]
    for sigma in subs:
        generator.register(sigma, None)
    matched = sum(
        1
        for _ in range(600)
        if any(s.matches(generator.generate(now=0.0)) for s in subs)
    )
    # Drift can bleed matches, but the rate stays in the right regime.
    assert 0.35 < matched / 600 < 0.65


def test_perturbation_clamped_to_domain():
    spec = WorkloadSpec(
        temporal_locality=1.0, locality_jitter_fraction=0.5,
        matching_probability=0.0,
    )
    rng = random.Random(4)
    generator = EventGenerator(spec, spec.make_space(), rng)
    for _ in range(100):
        event = generator.generate(now=0.0)
        for value in event.values:
            assert 0 <= value <= spec.attr_max
