"""Workload specification validation and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.spec import DEFAULT_ATTR_MAX, WorkloadSpec


def test_paper_defaults():
    spec = WorkloadSpec()
    assert spec.dimensions == 4
    assert spec.attr_max == DEFAULT_ATTR_MAX == 1_000_000
    assert spec.domain_size == 1_000_001
    assert spec.subscription_period == 5.0
    assert spec.publication_mean_period == 5.0
    assert spec.matching_probability == 0.5
    assert spec.selective_attributes == ()


def test_max_range_per_selectivity_class():
    spec = WorkloadSpec(selective_attributes=(0,))
    # Selective: 0.1% of ATTR_MAX; non-selective: 3%.
    assert spec.max_range(0) == 1000
    assert spec.max_range(1) == 30000
    assert spec.is_selective(0) and not spec.is_selective(1)


def test_average_range():
    spec = WorkloadSpec()
    assert spec.average_range(0) == (1 + 30000) / 2


def test_paper_selective_constraint_share():
    """Section 5.1: the most restrictive of 4 non-selective constraints
    averages ~0.6% of ATTR_MAX.  E[min of 4 U(0,1)] = 1/5 of 3% = 0.6%."""
    spec = WorkloadSpec()
    expected_min_fraction = spec.nonselective_range_fraction / 5
    assert abs(expected_min_fraction - 0.006) < 1e-9


def test_make_space():
    space = WorkloadSpec(dimensions=3).make_space()
    assert space.dimensions == 3
    assert [a.name for a in space.attributes] == ["a1", "a2", "a3"]
    assert all(a.size == 1_000_001 for a in space.attributes)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(dimensions=0),
        dict(attr_max=0),
        dict(selective_attributes=(9,)),
        dict(nonselective_range_fraction=0.0),
        dict(selective_range_fraction=1.5),
        dict(matching_probability=-0.1),
        dict(matching_probability=1.1),
        dict(subscription_period=0),
        dict(publication_mean_period=-1),
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        WorkloadSpec(**kwargs)
