"""The workload driver: arrival processes and system integration."""

import random

import pytest

from repro.core import EventSpace, PubSubSystem
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def build(spec=None, n=60, seed=3, **driver_kwargs):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=16)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    spec = spec or WorkloadSpec()
    space = spec.make_space()
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", space, KS)
    )
    driver = WorkloadDriver(
        system, spec, random.Random(seed + 1), **driver_kwargs
    )
    return sim, system, driver


def test_injects_exact_counts():
    sim, system, driver = build(max_subscriptions=20, max_publications=15)
    driver.run_to_completion()
    assert driver.subscriptions_sent == 20
    assert driver.publications_sent == 15
    assert len(driver.injected_subscriptions) == 20
    assert len(driver.injected_events) == 15


def test_subscriptions_arrive_at_regular_period():
    spec = WorkloadSpec(subscription_period=5.0)
    sim, system, driver = build(
        spec=spec, max_subscriptions=5, max_publications=0
    )
    times = []
    original = system.subscribe

    def spy(node_id, subscription, ttl=None):
        times.append(system.now)
        return original(node_id, subscription, ttl=ttl)

    system.subscribe = spy
    driver.run_to_completion()
    assert times == [5.0, 10.0, 15.0, 20.0, 25.0]


def test_publications_are_poisson_like():
    spec = WorkloadSpec(publication_mean_period=5.0)
    sim, system, driver = build(
        spec=spec, max_subscriptions=0, max_publications=200
    )
    times = []
    original = system.publish

    def spy(node_id, event):
        times.append(system.now)
        return original(node_id, event)

    system.publish = spy
    driver.run_to_completion()
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert 3.5 < mean_gap < 6.5  # exponential with mean 5
    assert min(gaps) < 1.0  # bursty, unlike the regular stream


def test_zero_streams_complete_immediately():
    sim, system, driver = build(max_subscriptions=0, max_publications=0)
    driver.start()
    sim.run()
    assert driver.subscriptions_sent == 0
    assert driver.publications_sent == 0


def test_estimated_duration_requires_bounds():
    sim, system, driver = build(max_subscriptions=None, max_publications=1)
    with pytest.raises(ValueError):
        driver.estimated_duration()


def test_expirations_tracked_in_generator():
    spec = WorkloadSpec(subscription_ttl=30.0)
    sim, system, driver = build(
        spec=spec, max_subscriptions=10, max_publications=0
    )
    driver.run_to_completion()
    driver.event_generator.evict_expired(system.now)
    # All subscriptions expired well before the horizon.
    assert driver.event_generator.live_count == 0
