"""The sharded kernel: window primitives, partitioning, parity, audit.

The contract under test (see ``repro/sim/shard.py``):

- ``--shards 1`` reproduces a serial :meth:`Trace.replay` of the same
  trace **bit for bit** (behavior digest over every send, trace and
  delivery), for all three overlays.
- K > 1 is deterministic across repeats and across worker modes
  (inline vs fork), and the post-hoc delivery-oracle audit reports
  zero violations.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit import AuditConfig
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_system, run_experiment
from repro.metrics.fingerprint import behavior_digest
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import MessageKind, OverlayMessage
from repro.overlay.network import FixedDelay, ShardNetwork
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.shard import partition_ring, ring_node_ids, run_sharded
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


# -- kernel window primitives ------------------------------------------------


def test_next_event_time_peeks_without_firing():
    sim = Simulator()
    fired = []
    sim.schedule_at(3.0, fired.append, "a")
    sim.schedule_at(1.0, fired.append, "b")
    assert sim.next_event_time() == 1.0
    assert fired == []
    assert sim.now == 0.0


def test_next_event_time_skips_cancelled_tops():
    sim = Simulator()
    handle = sim.schedule_at(1.0, lambda: None)
    sim.schedule_at(2.0, lambda: None)
    handle.cancel()
    assert sim.next_event_time() == 2.0
    assert sim.next_event_time() == 2.0  # idempotent peek


def test_next_event_time_empty():
    assert Simulator().next_event_time() is None


def test_run_before_fires_strictly_below_bound():
    sim = Simulator()
    fired = []
    for time in (1.0, 2.0, 3.0):
        sim.schedule_at(time, fired.append, time)
    assert sim.run_before(3.0) == 2
    assert fired == [1.0, 2.0]
    # The clock stays at the last fired event, never at the bound:
    # remote messages may still be injected at exactly the bound.
    assert sim.now == 2.0
    assert sim.next_event_time() == 3.0


def test_run_before_processes_events_scheduled_during_window():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        sim.schedule_at(sim.now + 0.4, chain)

    sim.schedule_at(0.1, chain)
    sim.run_before(1.0)
    assert fired == [0.1, 0.5, 0.9]


def test_run_before_rejects_past_bound():
    sim = Simulator()
    sim.schedule_at(5.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_before(4.0)


# -- ring partitioning -------------------------------------------------------


def test_partition_ring_contiguous_and_complete():
    rng = random.Random(3)
    ids = rng.sample(range(8192), 100)
    locals_, shard_of = partition_ring(ids, 4)
    assert sum(len(arc) for arc in locals_) == 100
    assert set().union(*locals_) == set(ids)
    ordered = sorted(ids)
    # Each arc is a contiguous run of the sorted ring.
    start = 0
    for shard, arc in enumerate(locals_):
        run = ordered[start:start + len(arc)]
        assert set(run) == arc
        assert all(shard_of[node] == shard for node in run)
        start += len(arc)


def test_partition_ring_near_equal_sizes():
    locals_, _ = partition_ring(list(range(10)), 3)
    assert sorted(len(arc) for arc in locals_) == [3, 3, 4]


def test_partition_ring_rejects_bad_counts():
    with pytest.raises(ConfigurationError):
        partition_ring([1, 2, 3], 0)
    with pytest.raises(ConfigurationError):
        partition_ring([1, 2, 3], 4)


# -- shard network -----------------------------------------------------------


def _message(kind=MessageKind.CONTROL):
    return OverlayMessage(kind=kind, payload=None, request_id=1, origin=7)


def test_shard_network_outboxes_remote_charges_send():
    sim = Simulator()
    network = ShardNetwork(sim, FixedDelay(0.05), local=frozenset({1}))
    got = []
    network.register(1, got.append)
    network.transmit(1, 99, _message())  # 99 is remote
    assert network.recorder.messages.total_sends(MessageKind.CONTROL) == 1
    outbox = network.drain_outbox()
    assert [(dst, arrival) for dst, arrival, _ in outbox] == [(99, 0.05)]
    assert network.drain_outbox() == []  # drained
    sim.run()
    assert got == []  # nothing entered the local inbox


def test_shard_network_local_transmit_unchanged():
    sim = Simulator()
    network = ShardNetwork(sim, FixedDelay(0.05), local=frozenset({1, 2}))
    got = []
    network.register(2, got.append)
    message = _message()
    network.transmit(1, 2, message)
    sim.run()
    assert got == [message]
    assert network.drain_outbox() == []


def test_shard_network_inject_delivers_in_merge_order():
    sim = Simulator()
    network = ShardNetwork(sim, FixedDelay(0.05), local=frozenset({5}))
    got = []
    network.register(5, got.append)
    first, second = _message(), _message()
    network.inject([(5, 1.0, first), (5, 1.0, second)])
    sim.run()
    assert got == [first, second]
    assert sim.now == 1.0


# -- serial parity and determinism ------------------------------------------


def _make_trace(config: ExperimentConfig) -> Trace:
    streams = RandomStreams(config.seed)
    return Trace.generate(
        config.workload,
        streams.stream("workload"),
        ring_node_ids(config),
        config.subscriptions,
        config.publications,
    )


def _serial_digest(config: ExperimentConfig, trace: Trace) -> str:
    _, system = build_system(config, RandomStreams(config.seed))
    trace.replay(system)
    return behavior_digest(system.recorder)


@pytest.mark.parametrize("overlay", ["chord", "pastry", "can"])
def test_one_shard_reproduces_serial_replay(overlay):
    config = ExperimentConfig(
        overlay=overlay, nodes=500, subscriptions=200, publications=200,
        seed=20260808,
    )
    trace = _make_trace(config)
    outcome = run_sharded(config, trace, 1, mode="inline", audit=AuditConfig())
    assert behavior_digest(outcome.recorder) == _serial_digest(config, trace)
    assert outcome.audit is not None and outcome.audit.violations == []
    assert outcome.barrier_rounds == 0  # a lone shard never barriers
    assert outcome.remote_messages == 0


@pytest.mark.parametrize("overlay", ["chord", "pastry", "can"])
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_runs_deterministic_and_audit_clean(overlay, shards):
    config = ExperimentConfig(
        overlay=overlay, nodes=500, subscriptions=150, publications=150,
        seed=20260808,
    )
    trace = _make_trace(config)
    first = run_sharded(
        config, trace, shards, mode="fork", audit=AuditConfig()
    )
    again = run_sharded(config, trace, shards, mode="fork")
    inline = run_sharded(config, trace, shards, mode="inline")
    digest = behavior_digest(first.recorder)
    assert digest == behavior_digest(again.recorder)
    assert digest == behavior_digest(inline.recorder)
    assert first.audit is not None and first.audit.violations == []
    assert first.remote_messages > 0  # the workload does cross shards
    assert sum(first.events_per_shard) > 0
    # Every trace and delivery accounted for across the shard merge.
    assert len(first.recorder.messages.requests_of_kind(
        MessageKind.PUBLICATION
    )) == config.publications


def test_per_shard_load_totals_sum_to_merged_sends():
    config = ExperimentConfig(
        nodes=200, subscriptions=80, publications=80, seed=20260808,
    )
    trace = _make_trace(config)
    outcome = run_sharded(config, trace, 3, mode="inline")
    assert len(outcome.load_by_shard) == 3
    # Per-shard loads are the pre-merge recorder send counts, so their
    # sum must equal the merged recorder's total exactly.
    assert sum(outcome.load_by_shard) == outcome.recorder.messages.total_sends()
    assert outcome.load_imbalance >= 1.0
    # ... and equal the serial replay's total: sharding moves work
    # between workers but never changes what the simulation sends.
    _, system = build_system(config, RandomStreams(config.seed))
    trace.replay(system)
    assert sum(outcome.load_by_shard) == system.recorder.messages.total_sends()


def test_load_imbalance_ratio():
    from repro.sim.shard import ShardRunReport

    def report(loads):
        return ShardRunReport(
            recorder=MetricsRecorder(), audit=None, num_shards=len(loads),
            horizon=0.0, barrier_rounds=0, remote_messages=0,
            barrier_stalls=0, events_per_shard=[], peak_rss_by_shard=[],
            load_by_shard=loads,
        )

    assert report([]).load_imbalance == 0.0
    assert report([0, 0]).load_imbalance == 0.0
    assert report([10, 10, 10]).load_imbalance == 1.0
    # Median of [2, 10, 30] is 10; max/median = 3.
    assert report([30, 2, 10]).load_imbalance == 3.0
    # Even count averages the middle two: median of [1, 3] is 2.
    assert report([1, 3]).load_imbalance == 1.5


def test_sharded_storage_snapshots_cover_all_nodes():
    config = ExperimentConfig(
        nodes=120, subscriptions=80, publications=40, seed=11,
        workload=WorkloadSpec(subscription_ttl=None),
    )
    trace = _make_trace(config)
    outcome = run_sharded(config, trace, 3, mode="inline")
    final = outcome.recorder.storage.latest()
    assert len(final) == config.nodes
    assert sum(final.values()) > 0


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    overlay=st.sampled_from(["chord", "pastry", "can"]),
    shards=st.integers(min_value=2, max_value=4),
)
def test_shard_property_small_rings(seed, overlay, shards):
    """K=1 parity + K>1 determinism on randomized small configurations."""
    config = ExperimentConfig(
        overlay=overlay, nodes=60, subscriptions=40, publications=30,
        seed=seed,
    )
    trace = _make_trace(config)
    one = run_sharded(config, trace, 1, mode="inline")
    assert behavior_digest(one.recorder) == _serial_digest(config, trace)
    many = run_sharded(config, trace, shards, mode="inline",
                       audit=AuditConfig())
    again = run_sharded(config, trace, shards, mode="inline")
    assert behavior_digest(many.recorder) == behavior_digest(again.recorder)
    assert many.audit is not None and many.audit.violations == []


# -- configuration and runner dispatch --------------------------------------


def test_config_validates_shards():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(shards=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(shards=2, message_delay=0.0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(shards=8, nodes=4)


def test_config_profile_and_cuts_require_sharding():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(shard_profile=True)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(shard_cuts=(0, 50))
    config = ExperimentConfig(shards=2, shard_profile=True,
                              shard_cuts=(0, 50))
    assert config.shard_cuts == (0, 50)


def test_run_sharded_rejects_zero_delay_and_bad_mode():
    config = ExperimentConfig(nodes=20, subscriptions=5, publications=5)
    trace = _make_trace(config)
    zero_delay = ExperimentConfig(
        nodes=20, subscriptions=5, publications=5, message_delay=0.0
    )
    with pytest.raises(ConfigurationError):
        run_sharded(zero_delay, trace, 2, mode="inline")
    with pytest.raises(ConfigurationError):
        run_sharded(config, trace, 2, mode="threads")


def test_run_experiment_dispatches_to_sharded_kernel():
    config = ExperimentConfig(
        nodes=100, subscriptions=60, publications=60, seed=5, shards=2
    )
    result = run_experiment(config, audit=AuditConfig())
    assert result.subscriptions_sent == 60
    assert result.publications_sent == 60
    assert result.audit is not None and result.audit.ok
    assert result.pub_hops.mean > 0
    assert result.keys_per_publication > 0
