"""ScheduledEvent ordering semantics (the heap's contract)."""

import heapq

from hypothesis import given, strategies as st

from repro.sim.events import ScheduledEvent


def make(time, seq):
    return ScheduledEvent(time=time, seq=seq, callback=lambda: None)


def test_ordering_by_time_then_seq():
    assert make(1.0, 5) < make(2.0, 0)
    assert make(1.0, 0) < make(1.0, 1)
    assert not make(1.0, 1) < make(1.0, 1)


def test_cancel_and_fire():
    fired = []
    event = ScheduledEvent(time=0.0, seq=0, callback=fired.append, args=(7,))
    event.fire()
    assert fired == [7]
    event.cancel()
    assert event.cancelled
    event.cancel()  # idempotent
    assert event.cancelled


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.integers(0, 10**6)),
        min_size=1,
        max_size=50,
    )
)
def test_property_heap_pops_in_time_seq_order(entries):
    # Deduplicate (time, seq) pairs: seq is unique in the kernel.
    unique = list({(t, s) for t, s in entries})
    heap = [make(t, s) for t, s in unique]
    heapq.heapify(heap)
    popped = []
    while heap:
        event = heapq.heappop(heap)
        popped.append((event.time, event.seq))
    assert popped == sorted(unique)
