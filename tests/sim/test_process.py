"""Unit tests for the periodic timer."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTimer


def test_ticks_at_period():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run_until(7.0)
    assert ticks == [2.0, 4.0, 6.0]


def test_first_delay_override():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 5.0, lambda: ticks.append(sim.now))
    timer.start(first_delay=1.0)
    sim.run_until(12.0)
    assert ticks == [1.0, 6.0, 11.0]


def test_stop_halts_ticking():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run_until(2.5)
    timer.stop()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0]
    assert not timer.running


def test_stop_from_within_callback():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 3:
            timer.stop()

    timer = PeriodicTimer(sim, 1.0, tick)
    timer.start()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_double_start_is_noop():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    timer.start()
    sim.run_until(2.5)
    assert ticks == [1.0, 2.0]


def test_nonpositive_period_rejected():
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), -1.0, lambda: None)


def test_restart_after_stop():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    timer.start()
    sim.run_until(1.5)
    timer.stop()
    timer.start()
    sim.run_until(3.0)
    assert ticks == [1.0, 2.5]
