"""The bounded periodic-callback helper used by the audit probes."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_fires_each_period_up_to_horizon():
    sim = Simulator()
    fired = []
    sim.call_every(2.0, lambda: fired.append(sim.now), horizon=9.0)
    sim.run()
    assert fired == [2.0, 4.0, 6.0, 8.0]


def test_horizon_is_inclusive():
    sim = Simulator()
    fired = []
    sim.call_every(3.0, lambda: fired.append(sim.now), horizon=6.0)
    sim.run()
    assert fired == [3.0, 6.0]


def test_unbounded_chain_stops_with_max_events():
    sim = Simulator()
    fired = []
    sim.call_every(1.0, lambda: fired.append(sim.now))
    sim.run(max_events=5)
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_passes_args_through():
    sim = Simulator()
    seen = []
    sim.call_every(1.0, seen.append, "tick", horizon=2.0)
    sim.run()
    assert seen == ["tick", "tick"]


def test_rejects_non_positive_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_every(0.0, lambda: None)
