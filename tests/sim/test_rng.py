"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams


def test_same_name_same_stream_object():
    streams = RandomStreams(42)
    assert streams.stream("a") is streams.stream("a")


def test_streams_deterministic_across_instances():
    a = RandomStreams(42).stream("workload")
    b = RandomStreams(42).stream("workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_decoupled():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_creation_order_does_not_matter():
    first = RandomStreams(7)
    x1 = first.stream("x").random()
    second = RandomStreams(7)
    second.stream("y")  # create another stream first
    x2 = second.stream("x").random()
    assert x1 == x2


def test_different_root_seeds_differ():
    a = RandomStreams(1).stream("s").random()
    b = RandomStreams(2).stream("s").random()
    assert a != b


def test_fork_is_deterministic_and_independent():
    parent = RandomStreams(42)
    fork_a = parent.fork("trial-1")
    fork_b = RandomStreams(42).fork("trial-1")
    assert fork_a.stream("w").random() == fork_b.stream("w").random()
    assert parent.fork("trial-1").root_seed != parent.fork("trial-2").root_seed
