"""The O(1) ``Simulator.pending`` counter and lazy-cancel bookkeeping."""

from __future__ import annotations

import random

from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator


def test_pending_tracks_cancellations_without_scanning():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert sim.pending == 100
    for handle in handles[:40]:
        handle.cancel()
    assert sim.pending == 60
    # Idempotent cancels must not double-count.
    for handle in handles[:40]:
        handle.cancel()
    assert sim.pending == 60
    sim.run()
    assert sim.pending == 0
    assert sim.events_processed == 60


def test_cancel_after_fire_does_not_corrupt_pending():
    sim = Simulator()
    fired = []
    first = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.run(max_events=1) == 1
    first.cancel()  # already fired: must be a no-op for the counter
    assert sim.pending == 1
    sim.run()
    assert fired == ["a", "b"]
    assert sim.pending == 0


def test_cancel_seen_by_step_and_run_until():
    sim = Simulator()
    kept = []
    doomed = sim.schedule(1.0, kept.append, "doomed")
    sim.schedule(1.5, kept.append, "kept")
    later = sim.schedule(3.0, kept.append, "later")
    doomed.cancel()
    assert sim.pending == 2
    assert sim.step() is True
    assert kept == ["kept"]
    later.cancel()
    assert sim.run_until(5.0) == 0
    assert sim.pending == 0
    assert sim.now == 5.0


def test_detached_handle_cancel_is_harmless():
    # Handles built outside a kernel (tests, external queues) have no
    # simulator to notify; cancel() must still work.
    event = ScheduledEvent(time=0.0, seq=0, callback=lambda: None)
    event.cancel()
    event.cancel()
    assert event.cancelled


def test_pending_matches_brute_force_count_under_random_churn():
    rng = random.Random(42)
    sim = Simulator()
    live: list = []
    for round_number in range(50):
        for _ in range(rng.randint(0, 5)):
            live.append(sim.schedule(rng.uniform(0.0, 10.0), lambda: None))
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            victim.cancel()
        expected = sum(
            1 for (_, _, ev) in sim._heap if not ev.cancelled
        )
        assert sim.pending == expected
    sim.run()
    assert sim.pending == 0
