"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "last")
    sim.run()
    assert fired == ["early", "late", "last"]
    assert sim.now == 3.0


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    sim.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, fired.append, t)
    count = sim.run_until(2.0)
    assert count == 2
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0
    # The rest is still pending and can be run later.
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(4.0)


def test_run_max_events_bounds_work():
    sim = Simulator()
    fired = []
    for t in range(10):
        sim.schedule(float(t + 1), fired.append, t)
    assert sim.run(max_events=4) == 4
    assert len(fired) == 4


def test_pending_and_processed_counters():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    h1.cancel()
    assert sim.pending == 1
    sim.run()
    assert sim.events_processed == 1


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]


def test_zero_delay_fires_at_current_time():
    sim = Simulator()
    sim.run_until(5.0)
    fired = []
    sim.schedule(0.0, fired.append, sim.now)
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0
