"""build_ring semantics shared by the overlays."""

import pytest

from repro.errors import OverlayError
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator

KS = KeySpace(13)
OVERLAYS = [ChordOverlay, PastryOverlay, CanOverlay]


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_duplicate_ids_deduplicated(overlay_cls):
    overlay = overlay_cls(Simulator(), KS)
    overlay.build_ring([100, 200, 100, 300, 200])
    assert sorted(overlay.node_ids()) == [100, 200, 300]


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_empty_build_rejected(overlay_cls):
    overlay = overlay_cls(Simulator(), KS)
    with pytest.raises(OverlayError):
        overlay.build_ring([])


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_double_build_rejected(overlay_cls):
    overlay = overlay_cls(Simulator(), KS)
    overlay.build_ring([1, 2])
    with pytest.raises(OverlayError):
        overlay.build_ring([3])


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_out_of_range_ids_rejected(overlay_cls):
    overlay = overlay_cls(Simulator(), KS)
    with pytest.raises(Exception):
        overlay.build_ring([1, KS.size])


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_single_node_covers_everything(overlay_cls):
    overlay = overlay_cls(Simulator(), KS)
    overlay.build_ring([4000])
    for key in (0, 1, 4000, 8191):
        assert overlay.owner_of(key) == 4000
        assert overlay.covers(4000, key)
