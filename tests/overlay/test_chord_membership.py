"""Chord membership: join/leave/crash, owners, neighbors, state hooks."""

import random

import pytest

from repro.errors import OverlayError
from repro.overlay.api import MessageKind, NeighborSide, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(ids, **kwargs):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, **kwargs)
    overlay.build_ring(ids)
    return sim, overlay


def test_build_ring_sorted_and_registered():
    _, overlay = build([500, 100, 4000])
    assert overlay.node_ids() == [100, 500, 4000]
    assert len(overlay) == 3
    for node_id in (100, 500, 4000):
        assert overlay.is_alive(node_id)


def test_empty_ring_rejected():
    overlay = ChordOverlay(Simulator(), KS)
    with pytest.raises(OverlayError):
        overlay.build_ring([])


def test_double_build_rejected():
    _, overlay = build([1, 2])
    with pytest.raises(OverlayError):
        overlay.build_ring([3])


def test_owner_is_successor_of_key():
    _, overlay = build([100, 500, 4000])
    assert overlay.owner_of(100) == 100  # a node covers its own id
    assert overlay.owner_of(101) == 500
    assert overlay.owner_of(500) == 500
    assert overlay.owner_of(4001) == 100  # wraps
    assert overlay.owner_of(0) == 100


def test_successor_predecessor_cycle():
    _, overlay = build([100, 500, 4000])
    assert overlay.successor_of(100) == 500
    assert overlay.successor_of(4000) == 100
    assert overlay.predecessor_of(100) == 4000
    assert overlay.neighbor_of(500, NeighborSide.SUCCESSOR) == 4000
    assert overlay.neighbor_of(500, NeighborSide.PREDECESSOR) == 100


def test_join_takes_over_interval():
    _, overlay = build([100, 4000])
    assert overlay.owner_of(2000) == 4000
    overlay.join(3000)
    assert overlay.owner_of(2000) == 3000
    assert overlay.owner_of(3500) == 4000


def test_duplicate_join_rejected():
    _, overlay = build([100])
    with pytest.raises(OverlayError):
        overlay.join(100)


def test_leave_returns_interval_to_successor():
    _, overlay = build([100, 3000, 4000])
    overlay.leave(3000)
    assert overlay.owner_of(2000) == 4000
    assert not overlay.is_alive(3000)


def test_last_node_cannot_leave_or_crash():
    _, overlay = build([100])
    with pytest.raises(OverlayError):
        overlay.leave(100)
    with pytest.raises(OverlayError):
        overlay.crash(100)


def test_join_fires_state_transfer_hook():
    calls = []
    _, overlay = build([100, 4000])
    overlay.set_state_transfer(lambda f, t, r: calls.append((f, t, r)))
    overlay.join(3000)
    assert calls == [(4000, 3000, (100, 3000))]


def test_leave_fires_state_transfer_hook():
    calls = []
    _, overlay = build([100, 3000, 4000])
    overlay.set_state_transfer(lambda f, t, r: calls.append((f, t, r)))
    overlay.leave(3000)
    assert calls == [(3000, 4000, (100, 3000))]


def test_crash_fires_no_hook():
    calls = []
    _, overlay = build([100, 3000, 4000])
    overlay.set_state_transfer(lambda f, t, r: calls.append((f, t, r)))
    overlay.crash(3000)
    assert calls == []
    assert overlay.owner_of(2000) == 4000


def test_crash_unknown_node_rejected():
    _, overlay = build([100, 200])
    with pytest.raises(OverlayError):
        overlay.crash(999)


def test_routing_correct_after_heavy_churn():
    rng = random.Random(11)
    sim, overlay = build(rng.sample(range(KS.size), 100), cache_capacity=0)
    # Churn: 30 joins and 30 removals interleaved.
    alive = set(overlay.node_ids())
    for _ in range(30):
        new_id = rng.randrange(KS.size)
        if new_id not in alive:
            overlay.join(new_id)
            alive.add(new_id)
        victim = rng.choice(sorted(alive))
        if len(alive) > 2:
            overlay.leave(victim)
            alive.discard(victim)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.payload)))
    for _ in range(50):
        src = rng.choice(sorted(alive))
        key = rng.randrange(KS.size)
        message = OverlayMessage(
            kind=MessageKind.PUBLICATION,
            payload=key,
            request_id=next_request_id(),
            origin=src,
        )
        overlay.send(src, key, message)
    sim.run()
    assert len(delivered) == 50
    for node_id, key in delivered:
        assert overlay.owner_of(key) == node_id


def test_send_to_neighbor_is_one_hop():
    sim, overlay = build([100, 3000, 4000])
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.hops)))
    message = OverlayMessage(
        kind=MessageKind.CONTROL,
        payload=None,
        request_id=next_request_id(),
        origin=100,
    )
    overlay.send_to_neighbor(100, NeighborSide.SUCCESSOR, message)
    sim.run()
    assert delivered == [(3000, 1)]


def test_send_to_neighbor_single_node_delivers_locally():
    sim, overlay = build([100])
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    message = OverlayMessage(
        kind=MessageKind.CONTROL,
        payload=None,
        request_id=next_request_id(),
        origin=100,
    )
    overlay.send_to_neighbor(100, NeighborSide.SUCCESSOR, message)
    sim.run()
    assert delivered == [100]
