"""Maintenance counters across the three overlays.

Chord's ``table_rebuilds``/``table_patches`` split is pinned in detail
by ``test_chord_incremental`` (and Pastry's/CAN's by their own
incremental suites); here the rebuild-vs-patch read surface is checked
on Pastry and CAN and the shared registry plumbing on a
telemetry-enabled network.
"""

import random

from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator
from repro.telemetry import Telemetry

KS = KeySpace(10)


def _ids(n, seed=3):
    return random.Random(seed).sample(range(KS.size), n)


def test_pastry_counts_rebuilds_and_patches_on_churn():
    sim = Simulator()
    overlay = PastryOverlay(sim, KS)
    overlay.build_ring(_ids(20))
    node = overlay.node(overlay.node_ids()[0])
    assert node.table_rebuilds == 0
    node.routing_table()
    assert node.table_rebuilds == 1  # cold start: wholesale computation
    node.leaf_set()  # same version: memoized, no extra rebuild
    assert node.table_rebuilds == 1
    joiner = next(i for i in range(KS.size) if not overlay.is_alive(i))
    overlay.join(joiner)
    node.routing_table()
    assert node.table_rebuilds == 1  # one delta behind: patched
    assert node.table_patches == 1
    assert overlay.node(joiner).table_seeds == 1


def test_can_counts_rebuilds_and_patches_on_zone_changes():
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring(_ids(16))
    node = overlay.node(overlay.node_ids()[0])
    assert node.table_rebuilds == 0
    node.cells()
    assert node.table_rebuilds == 1
    node.cells()  # memoized per zone version
    assert node.table_rebuilds == 1
    # A departure elsewhere (our node is not the heir) leaves our zone
    # untouched: consuming the delta is a patch, not a rebuild.
    victim = overlay.node_ids()[2]
    assert overlay.heir_of(victim) != node.id
    overlay.leave(victim)
    node.cells()
    assert node.table_rebuilds == 1
    assert node.table_patches == 1
    # Absorbing a zone (we are the heir) recomputes the decomposition.
    victim = overlay.node_ids()[1]
    assert overlay.heir_of(victim) == node.id
    overlay.leave(victim)
    node.cells()
    assert node.table_rebuilds == 2
    assert node.table_patches == 1


def test_departed_nodes_keep_their_maintenance_counts():
    """Totals must not shrink when a counted node leaves or crashes.

    ``maintenance_totals()`` = live nodes' counters + the counts the
    overlay accumulated from departed nodes at unregister time.  Before
    that accumulation, a churn run's totals silently dropped exactly
    the departed nodes' work.
    """
    for overlay_cls in (ChordOverlay, PastryOverlay, CanOverlay):
        sim = Simulator()
        overlay = overlay_cls(sim, KS)
        overlay.build_ring(_ids(16))
        ids = list(overlay.node_ids())
        for node_id in ids[:4]:
            node = overlay.node(node_id)
            # Materialize routing state so the node has rebuild counts.
            if hasattr(node, "fingers"):
                node.fingers()
            elif hasattr(node, "routing_table"):
                node.routing_table()
            else:
                node.cells()
        before = overlay.maintenance_totals()["table_rebuilds"]
        assert overlay.node(ids[1]).table_rebuilds >= 1
        assert before >= 4
        overlay.leave(ids[1])
        after_leave = overlay.maintenance_totals()["table_rebuilds"]
        assert after_leave >= before, overlay_cls.__name__
        overlay.crash(ids[2])
        assert (
            overlay.maintenance_totals()["table_rebuilds"] >= after_leave
        ), overlay_cls.__name__


def test_counters_aggregate_in_an_enabled_registry():
    telemetry = Telemetry()
    sim = Simulator()
    network = Network(sim, telemetry=telemetry)
    overlay = ChordOverlay(sim, KS, network=network)
    overlay.build_ring(_ids(12))
    for node_id in overlay.node_ids():
        overlay.node(node_id).fingers()
    registry = telemetry.registry
    total = registry.total("chord.table_rebuilds")
    assert total == sum(
        overlay.node(i).table_rebuilds for i in overlay.node_ids()
    )
    assert total >= 12
    assert registry.snapshot()["chord.table_rebuilds"] == total


def test_network_drop_counters_are_registry_views():
    telemetry = Telemetry()
    sim = Simulator()
    network = Network(sim, telemetry=telemetry)
    overlay = ChordOverlay(sim, KS, network=network)
    overlay.build_ring(_ids(8))
    ids = overlay.node_ids()
    from repro.overlay.api import MessageKind, OverlayMessage, next_request_id

    message = OverlayMessage(
        kind=MessageKind.CONTROL,
        payload=None,
        request_id=next_request_id(),
        origin=ids[0],
    )
    network.transmit(ids[0], ids[1], message)
    overlay.crash(ids[1])  # dies while the message is in flight
    sim.run()
    assert network.dropped == 1
    assert telemetry.registry.total("network.dropped") == 1
