"""Incremental Pastry routing-state maintenance under churn.

The prefix router consumes the same membership delta log as Chord:
joins min-update exactly one routing-table row and dirty the leaf set
only when they land inside its arc; departures recompute exactly the
rows they held.  These tests pin that a patched node's state is always
identical to a wholesale recomputation, that join-time seeding is
exact, and that the log-overrun fallback still rebuilds.
"""

import random

from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator

KS = KeySpace(13)


def build(ids, **kwargs):
    sim = Simulator()
    overlay = PastryOverlay(sim, KS, **kwargs)
    overlay.build_ring(ids)
    return sim, overlay


def assert_state_matches_rebuild(overlay, node):
    assert node.routing_table() == overlay.compute_routing_table(node.id)
    assert node.leaf_set() == overlay.compute_leaf_set(node.id)


def test_join_patches_exactly_one_row():
    _, overlay = build([0x0100, 0x0900, 0x1100, 0x1900])
    node = overlay.node(0x0100)
    node.routing_table()
    rebuilds, patches = node.table_rebuilds, node.table_patches
    overlay.join(0x0500)
    assert_state_matches_rebuild(overlay, node)
    assert node.table_rebuilds == rebuilds
    assert node.table_patches == patches + 1


def test_departure_recomputes_held_rows():
    _, overlay = build([0x0100, 0x0300, 0x0900, 0x1100, 0x1900])
    node = overlay.node(0x0100)
    node.routing_table()
    rebuilds = node.table_rebuilds
    overlay.leave(0x1100)
    assert_state_matches_rebuild(overlay, node)
    assert node.table_rebuilds == rebuilds
    overlay.crash(0x0300)
    assert_state_matches_rebuild(overlay, node)
    assert node.table_rebuilds == rebuilds


def test_joiner_is_seeded_exactly():
    rng = random.Random(7)
    ids = rng.sample(range(KS.size), 40)
    _, overlay = build(ids)
    for _ in range(30):
        candidate = rng.randrange(KS.size)
        if overlay.is_alive(candidate):
            continue
        overlay.join(candidate)
        joiner = overlay.node(candidate)
        assert joiner.table_seeds == 1
        assert joiner.table_rebuilds == 0
        # Seeded state must equal a wholesale computation and leave the
        # node version-current (reading it is not another rebuild).
        assert_state_matches_rebuild(overlay, joiner)
        assert joiner.table_rebuilds == 0


def test_randomized_churn_keeps_patched_state_exact():
    rng = random.Random(4321)
    ids = sorted(rng.sample(range(KS.size), 64))
    _, overlay = build(ids)
    watched = [overlay.node(nid) for nid in ids[:8]]
    for node in watched:
        node.routing_table()
    live = set(ids)
    for _ in range(200):
        if rng.random() < 0.5 or len(live) < 16:
            candidate = rng.randrange(KS.size)
            if candidate in live:
                continue
            overlay.join(candidate)
            live.add(candidate)
        else:
            victim = rng.choice(sorted(live - {n.id for n in watched}))
            if rng.random() < 0.5:
                overlay.leave(victim)
            else:
                overlay.crash(victim)
            live.discard(victim)
        if rng.random() < 0.3:
            for node in watched:
                assert_state_matches_rebuild(overlay, node)
    for node in watched:
        assert_state_matches_rebuild(overlay, node)
        assert node.table_patches > 0


def test_log_overrun_falls_back_to_rebuild():
    _, overlay = build([0x0100, 0x0900, 0x1100, 0x1900])
    overlay._DELTA_LOG_CAP = 4  # shrink the window for the test
    node = overlay.node(0x0100)
    node.routing_table()
    version_before = overlay.ring_version
    rebuilds = node.table_rebuilds
    for candidate in (0x0200, 0x0400, 0x0600, 0x0A00, 0x0C00, 0x1300):
        overlay.join(candidate)
    assert overlay.deltas_since(version_before) is None
    node.routing_table()
    assert node.table_rebuilds == rebuilds + 1
    assert_state_matches_rebuild(overlay, node)


def test_many_missed_deltas_fall_back_to_rebuild():
    _, overlay = build([0x0100, 0x0900, 0x1100, 0x1900])
    node = overlay.node(0x0100)
    node.routing_table()
    rebuilds = node.table_rebuilds
    joiner_rng = random.Random(11)
    added = 0
    while added <= node._patch_limit:
        candidate = joiner_rng.randrange(KS.size)
        # Keep joiners out of (0x1900, 0x0100]: a joiner there would
        # have the watched node as successor, and join-time seeding
        # force-syncs the successor, resetting the gap we are growing.
        if not 0x0100 < candidate < 0x1900:
            continue
        if not overlay.is_alive(candidate):
            overlay.join(candidate)
            added += 1
    node.routing_table()
    assert node.table_rebuilds == rebuilds + 1
    assert_state_matches_rebuild(overlay, node)
