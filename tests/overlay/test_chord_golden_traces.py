"""Golden-trace pins for Chord routing.

The fixtures in ``golden_routing.json`` were captured from the original
linear-scan implementations of ``ChordNode._next_hop`` and
``continue_mcast`` (pre-PR-1).  The binary-search rewrite must produce
the *exact same hop sequences* — same deliveries, same per-copy hop
counts, same paths — which is what makes the optimization a pure
mechanical speedup.  Regenerate the fixture only when routing behavior
is changed deliberately.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
GOLDEN = json.loads(
    (Path(__file__).parent / "golden_routing.json").read_text()
)


def build(n, seed, cache=0):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=cache)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def msg(src):
    return OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )


def mcast_trace(n, ring_seed, src_index, keys):
    sim, overlay = build(n, ring_seed)
    src = overlay.node_ids()[src_index]
    deliveries = []
    overlay.set_deliver(
        lambda nid, m: deliveries.append(
            [nid, m.hops, sorted(m.target_keys), list(m.path)]
        )
    )
    overlay.mcast(src, keys, msg(src))
    sim.run()
    return sorted(deliveries)


def unicast_trace(n, ring_seed, cache, send_seed, count):
    sim, overlay = build(n, ring_seed, cache=cache)
    routes = []
    overlay.set_deliver(lambda nid, m: routes.append([nid, m.hops, list(m.path)]))
    rng = random.Random(send_seed)
    nodes = overlay.node_ids()
    for _ in range(count):
        src = rng.choice(nodes)
        key = rng.randrange(KS.size)
        overlay.send(src, key, msg(src))
        sim.run()
    return routes


def sequential_trace(n, ring_seed, src_index, keys):
    sim, overlay = build(n, ring_seed)
    src = overlay.node_ids()[src_index]
    deliveries = []
    overlay.set_deliver(lambda nid, m: deliveries.append([nid, m.hops, list(m.path)]))
    overlay.sequential_cast(src, keys, msg(src))
    sim.run()
    return deliveries


def test_mcast_hop_sequences_match_golden_n64():
    assert (
        mcast_trace(64, 7, 0, list(range(1000, 3000, 37)))
        == GOLDEN["mcast_n64"]
    )


def test_mcast_hop_sequences_match_golden_n200():
    keys = [(1183 + 13 * i) % KS.size for i in range(150)]
    assert mcast_trace(200, 11, 37, keys) == GOLDEN["mcast_n200"]


def test_unicast_paths_with_location_cache_match_golden():
    assert unicast_trace(100, 5, 16, 3, 40) == GOLDEN["unicast_n100_cached"]


def test_sequential_walk_matches_golden():
    assert (
        sequential_trace(64, 7, 3, list(range(4000, 5000, 53)))
        == GOLDEN["sequential_n64"]
    )
