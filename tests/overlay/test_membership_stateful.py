"""Model-based testing of ring membership across all three overlays.

Random join/leave/crash interleavings checked against a sorted-set
model: the KN-mapping must stay a total partition (every key has
exactly one owner), every node must cover its own id, and neighbor
pointers must agree with the model's ring order.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import OverlayError
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator

KS = KeySpace(10)  # smaller space keeps shrinking fast


class MembershipMachine(RuleBasedStateMachine):
    overlay_cls = ChordOverlay

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.overlay = self.overlay_cls(self.sim, KS)
        self.overlay.build_ring([0])
        self.members = {0}

    @rule(node_id=st.integers(0, KS.size - 1))
    def join(self, node_id):
        if node_id in self.members:
            return
        try:
            self.overlay.join(node_id)
        except OverlayError:
            return  # CAN: unsplittable sliver zone
        self.members.add(node_id)

    @rule(choice=st.integers(0, 10**6))
    def leave(self, choice):
        if len(self.members) < 2:
            return
        victim = sorted(self.members)[choice % len(self.members)]
        self.overlay.leave(victim)
        self.members.discard(victim)

    @rule(choice=st.integers(0, 10**6))
    def crash(self, choice):
        if len(self.members) < 2:
            return
        victim = sorted(self.members)[choice % len(self.members)]
        self.overlay.crash(victim)
        self.members.discard(victim)

    @invariant()
    def membership_agrees(self):
        assert set(self.overlay.node_ids()) == self.members
        for node_id in self.members:
            assert self.overlay.is_alive(node_id)

    @invariant()
    def coverage_is_a_partition(self):
        sample_keys = range(0, KS.size, 37)
        for key in sample_keys:
            owner = self.overlay.owner_of(key)
            assert owner in self.members
            assert self.overlay.covers(owner, key)
            for other in list(self.members)[:5]:
                if other != owner:
                    assert not self.overlay.covers(other, key)

    @invariant()
    def nodes_cover_their_own_ids(self):
        for node_id in self.members:
            assert self.overlay.covers(node_id, node_id)


class ChordMembership(MembershipMachine):
    overlay_cls = ChordOverlay


class PastryMembership(MembershipMachine):
    overlay_cls = PastryOverlay


class CanMembership(MembershipMachine):
    overlay_cls = CanOverlay


_SETTINGS = settings(max_examples=20, stateful_step_count=25, deadline=None)

TestChordMembership = ChordMembership.TestCase
TestChordMembership.settings = _SETTINGS
TestPastryMembership = PastryMembership.TestCase
TestPastryMembership.settings = _SETTINGS
TestCanMembership = CanMembership.TestCase
TestCanMembership.settings = _SETTINGS
