"""Incremental CAN zone maintenance under churn.

A CAN node's zone boundaries move only when a join splits its own zone
or a departure makes it the heir; every other membership change leaves
its cells untouched.  The overlay's delta log names exactly the nodes a
change involves, so a stale node can catch up by scanning the missed
deltas: untouched -> keep the decomposition (patch), involved or log
overrun -> recompute (rebuild).  These tests pin that the patched
decomposition is always identical to a wholesale recomputation.
"""

import random

from repro.overlay.can import CanOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(12)


def build(ids):
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring(ids)
    return sim, overlay


def recompute_cells(overlay, node_id):
    """Oracle: a fresh decomposition of the node's current zone."""
    from repro.overlay.can.morton import decompose

    bits = overlay.keyspace.bits
    size = overlay.keyspace.size
    start, length = overlay.zone_of(node_id)
    if start + length <= size:
        return decompose(start, length, bits)
    head = size - start
    return decompose(start, head, bits) + decompose(0, length - head, bits)


def test_unrelated_churn_patches_without_recomputing():
    _, overlay = build([0x100, 0x500, 0x900, 0xD00])
    node = overlay.node(0x100)
    cells_before = list(node.cells())
    assert node.table_rebuilds == 1
    # A join splitting someone else's zone leaves our cells untouched.
    overlay.join(0xB00)
    assert node.cells() == cells_before
    assert node.table_rebuilds == 1
    assert node.table_patches == 1
    # So does a departure absorbed by someone else.
    victim = 0xB00
    assert overlay.heir_of(victim) != node.id
    overlay.leave(victim)
    assert node.cells() == cells_before
    assert node.table_rebuilds == 1
    assert node.table_patches == 2


def test_own_split_and_absorption_recompute():
    _, overlay = build([0x100, 0x500, 0x900, 0xD00])
    node = overlay.node(0x900)
    node.cells()
    assert node.table_rebuilds == 1
    # A join splitting OUR zone must recompute.
    joiner = 0xA00
    assert overlay.owner_of(joiner) == node.id
    overlay.join(joiner)
    assert node.cells() == recompute_cells(overlay, node.id)
    assert node.table_rebuilds == 2
    # A departure WE absorb must recompute.
    assert overlay.heir_of(joiner) == node.id
    overlay.leave(joiner)
    assert node.cells() == recompute_cells(overlay, node.id)
    assert node.table_rebuilds == 3
    assert node.table_patches == 0


def test_randomized_churn_keeps_cells_exact():
    rng = random.Random(97)
    ids = rng.sample(range(KS.size), 48)
    _, overlay = build(ids)
    live = set(overlay.node_ids())
    for _ in range(300):
        if rng.random() < 0.5 or len(live) < 12:
            candidate = rng.randrange(KS.size)
            if candidate in live:
                continue
            overlay.join(candidate)
            live.add(candidate)
        else:
            victim = rng.choice(sorted(live))
            if rng.random() < 0.5:
                overlay.leave(victim)
            else:
                overlay.crash(victim)
            live.discard(victim)
        if rng.random() < 0.2:
            for node_id in rng.sample(sorted(live), 5):
                node = overlay.node(node_id)
                assert node.cells() == recompute_cells(overlay, node_id)
    patched = sum(overlay.node(n).table_patches for n in overlay.node_ids())
    assert patched > 0


def test_log_overrun_falls_back_to_rebuild():
    _, overlay = build([0x100, 0x500, 0x900, 0xD00])
    overlay._DELTA_LOG_CAP = 3  # shrink the window for the test
    node = overlay.node(0x100)
    node.cells()
    version_before = overlay.zone_version
    # Churn entirely inside another zone, more times than the log holds.
    for joiner in (0xA00, 0xB00, 0xC00, 0xA80):
        overlay.join(joiner)
        overlay.leave(joiner)
    assert overlay.deltas_since(version_before) is None
    assert node.cells() == recompute_cells(overlay, node.id)
    assert node.table_rebuilds == 2  # cold start + overrun fallback
