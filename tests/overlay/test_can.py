"""The CAN overlay: Morton machinery, zones, routing, churn."""

import random
import statistics
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OverlayError
from repro.overlay.api import MessageKind, NeighborSide, OverlayMessage, next_request_id
from repro.overlay.can import CanOverlay, morton_decode, morton_encode, zone_rectangle
from repro.overlay.can.morton import (
    axis_sizes,
    decompose,
    rect_closest_point,
    torus_delta,
)
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(n=150, seed=1, **flags):
    sim = Simulator()
    overlay = CanOverlay(sim, KS, **flags)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


# -- Morton machinery ---------------------------------------------------------

def test_axis_sizes():
    assert axis_sizes(13) == (128, 64)
    assert axis_sizes(4) == (4, 4)


@given(st.integers(0, KS.size - 1))
def test_property_morton_roundtrip(key):
    x, y = morton_decode(key, 13)
    assert morton_encode(x, y, 13) == key
    assert 0 <= x < 128 and 0 <= y < 64


def test_morton_encode_bounds():
    with pytest.raises(OverlayError):
        morton_encode(128, 0, 13)
    with pytest.raises(OverlayError):
        morton_encode(0, 64, 13)


def test_zone_rectangle_whole_space():
    assert zone_rectangle(0, KS.size, 13) == (0, 0, 128, 64)


def test_zone_rectangle_quadrants():
    # Splitting the 13-bit space in half splits the x axis (MSB is x).
    x0, y0, w, h = zone_rectangle(0, 4096, 13)
    assert (w, h) == (64, 64)
    x1, _, _, _ = zone_rectangle(4096, 4096, 13)
    assert x1 == 64 and x0 == 0


def test_zone_rectangle_validation():
    with pytest.raises(OverlayError):
        zone_rectangle(0, 3, 13)  # not a power of two
    with pytest.raises(OverlayError):
        zone_rectangle(2, 4, 13)  # misaligned


@given(st.integers(0, KS.size - 1), st.integers(1, KS.size))
def test_property_decompose_covers_exactly(start, length):
    if start + length > KS.size:
        length = KS.size - start
        if length == 0:
            return
    cells = decompose(start, length, 13)
    covered = []
    for cell_start, cell_size in cells:
        assert cell_start % cell_size == 0  # aligned
        assert cell_size & (cell_size - 1) == 0  # power of two
        covered.extend(range(cell_start, cell_start + cell_size))
    assert covered == list(range(start, start + length))


def test_torus_delta():
    assert torus_delta(0, 3, 8) == 3
    assert torus_delta(3, 0, 8) == -3
    assert torus_delta(7, 0, 8) == 1  # wrap forward
    assert torus_delta(0, 7, 8) == -1  # wrap backward
    assert torus_delta(5, 5, 8) == 0


def test_rect_closest_point_inside_and_outside():
    rect = (2, 2, 4, 4)  # x in [2,6), y in [2,6)
    assert rect_closest_point(rect, 3, 3, 16, 16) == (3, 3)  # inside
    assert rect_closest_point(rect, 10, 3, 16, 16) == (5, 3)  # right edge
    assert rect_closest_point(rect, 3, 0, 16, 16) == (3, 2)  # below
    # Torus wrap: x=15 is closer to the left edge (x=2) than the right.
    px, py = rect_closest_point(rect, 15, 3, 16, 16)
    assert (px, py) == (2, 3)


# -- zones and membership -------------------------------------------------------

def test_zones_partition_key_space():
    _, overlay = build()
    total = sum(overlay.zone_of(n)[1] for n in overlay.node_ids())
    assert total == KS.size


def test_every_node_covers_its_own_id():
    _, overlay = build(n=200, seed=2)
    for node_id in overlay.node_ids():
        assert overlay.covers(node_id, node_id)


def test_join_state_transfer_hook_covers_moved_interval():
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring([1000])
    calls = []
    overlay.set_state_transfer(lambda f, t, r: calls.append((f, t, r)))
    overlay.join(5000)
    assert len(calls) == 1
    from_node, to_node, (left, right) = calls[0]
    assert from_node == 1000 and to_node == 5000
    # The moved interval (left, right] is exactly the joiner's zone.
    start, length = overlay.zone_of(5000)
    assert (left + 1) % KS.size == start
    assert (right - left) % KS.size == length


def test_leave_returns_zone_to_heir():
    _, overlay = build(n=30, seed=3)
    victim = overlay.node_ids()[5]
    heir = overlay.heir_of(victim)
    heir_before = overlay.zone_of(heir)[1]
    victim_length = overlay.zone_of(victim)[1]
    overlay.leave(victim)
    assert overlay.zone_of(heir)[1] == heir_before + victim_length


def test_heir_is_morton_predecessor():
    _, overlay = build(n=20, seed=4)
    node = overlay.node_ids()[3]
    assert overlay.heir_of(node) == overlay.predecessor_of(node)


def test_last_node_protected():
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring([42])
    with pytest.raises(OverlayError):
        overlay.leave(42)
    with pytest.raises(OverlayError):
        overlay.crash(42)


def test_duplicate_join_rejected():
    _, overlay = build(n=5)
    with pytest.raises(OverlayError):
        overlay.join(overlay.node_ids()[0])


def test_neighbors_cycle():
    _, overlay = build(n=10, seed=5)
    node = overlay.node_ids()[0]
    successor = overlay.neighbor_of(node, NeighborSide.SUCCESSOR)
    assert overlay.neighbor_of(successor, NeighborSide.PREDECESSOR) == node


# -- routing ----------------------------------------------------------------------

def send(overlay, src, key):
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=key,
        request_id=next_request_id(), origin=src,
    )
    overlay.send(src, key, message)


def test_unicast_reaches_owner():
    sim, overlay = build(n=250, seed=6)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.payload)))
    rng = random.Random(7)
    for _ in range(150):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    assert len(delivered) == 150
    for node_id, key in delivered:
        assert overlay.owner_of(key) == node_id


def test_hops_scale_like_sqrt_n():
    """CAN's signature: O(d * n^(1/d)) hops — sqrt(n) in 2-d, clearly
    worse than Chord's log n at this size.  Measured with the fast
    path off: express links and zone jumps exist precisely to beat
    this bound, so the baseline behavior needs its own construction."""
    sim, overlay = build(n=400, seed=8, express_links=False, zone_jumps=False)
    hops = []
    overlay.set_deliver(lambda nid, m: hops.append(m.hops))
    rng = random.Random(9)
    for _ in range(200):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    mean = statistics.mean(hops)
    assert 3 < mean < 25  # ~0.5 * sqrt(400) = 10, generous band
    assert max(hops) < 128 + 64  # bounded by the torus Manhattan diameter


def test_fast_path_shortens_walks():
    """Express links + zone jumps must cut the mean path length well
    below the unit-step baseline on the same membership."""
    means = {}
    for label, flags in (
        ("slow", dict(express_links=False, zone_jumps=False)),
        ("fast", dict(express_links=True, zone_jumps=True)),
    ):
        sim, overlay = build(n=400, seed=8, **flags)
        hops = []
        overlay.set_deliver(lambda nid, m: hops.append(m.hops))
        rng = random.Random(9)
        for _ in range(200):
            send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
        sim.run()
        means[label] = statistics.mean(hops)
    assert means["fast"] < 0.6 * means["slow"]


def test_mcast_covers_all_owners():
    sim, overlay = build(n=120, seed=10)
    got = []
    overlay.set_deliver(lambda nid, m: got.append(nid))
    src = overlay.node_ids()[0]
    keys = [k % KS.size for k in range(3000, 4500)]
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION, payload=None,
        request_id=next_request_id(), origin=src,
    )
    overlay.mcast(src, keys, message)
    sim.run()
    assert set(got) == {overlay.owner_of(k) for k in keys}
    # CAN's one-to-many is per-key greedy grouping: coverage-complete,
    # but parallel unit-step paths re-converge on zones from several
    # sides, so duplicate branch arrivals are markedly higher than on
    # Chord (whose Fig. 4 m-cast is exactly-once) or Pastry.  The
    # pub/sub layer's idempotent stores and publication dedup absorb
    # them; bound the waste rather than forbid it.
    duplicates = sum(v - 1 for v in Counter(got).values())
    assert duplicates <= 6 * len(set(got))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, KS.size - 1), st.integers(0, 10**6))
def test_property_unicast_reaches_owner(key, seed):
    sim, overlay = build(n=60, seed=seed % 40 + 1)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    send(overlay, overlay.node_ids()[seed % 60], key)
    sim.run()
    assert delivered == [overlay.owner_of(key)]


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 60), st.integers(0, 10**6))
def test_property_churn_preserves_partition_and_self_coverage(rounds, seed):
    rng = random.Random(seed)
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring(rng.sample(range(KS.size), 20))
    for _ in range(rounds):
        if rng.random() < 0.5:
            candidate = rng.randrange(KS.size)
            if not overlay.is_alive(candidate):
                try:
                    overlay.join(candidate)
                except OverlayError:
                    pass  # unsplittable sliver zone
        elif len(overlay.node_ids()) > 2:
            overlay.leave(rng.choice(overlay.node_ids()))
    assert sum(overlay.zone_of(n)[1] for n in overlay.node_ids()) == KS.size
    for node_id in overlay.node_ids():
        assert overlay.covers(node_id, node_id)
