"""Order-exact batched cache learning (the ROADMAP watch item).

``learn_batch(sequences)`` must be indistinguishable from calling
``learn(sequence)`` once per sequence — same final cache contents *and
same LRU order*, same eviction victims in the same order, same raw
routing-table side effects.  The regression suite pins this with a
direct eviction-order scenario plus a randomized equivalence sweep
against the per-call oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
RING = list(range(0, 8192, 64))  # 128 nodes


def build(cache: int) -> ChordOverlay:
    overlay = ChordOverlay(Simulator(), KS, cache_capacity=cache)
    overlay.build_ring(RING)
    return overlay


def test_learn_batch_matches_sequential_learns_exactly():
    batched = build(cache=4).node(0)
    oracle = build(cache=4).node(0)
    sequences = [[64, 128], [192, 64], [256, 320, 384]]
    batched.learn_batch(sequences)
    for sequence in sequences:
        oracle.learn(sequence)
    assert batched.cached_ids() == oracle.cached_ids()


def test_learn_batch_pins_eviction_order():
    node = build(cache=3).node(0)
    node.learn_batch([[64, 128, 192]])
    # 256 inserts and evicts 64 (the oldest); the refresh of 128 in the
    # same sequence must land *before* the insert of 320 evicts 192 —
    # per-sequence eviction, not one deferred sweep, or the LRU order
    # (and therefore the victim set) diverges from per-call learns.
    node.learn_batch([[256, 128, 320]])
    assert node.cached_ids() == [256, 128, 320]


def test_learn_batch_refresh_only_keeps_order_without_eviction():
    node = build(cache=3).node(0)
    node.learn_batch([[64, 128, 192]])
    node.learn_batch([[64], [128]])  # pure LRU refreshes, no sync needed
    assert node.cached_ids() == [192, 64, 128]


def test_learn_batch_ignores_self_and_capacity_zero():
    node = build(cache=4).node(0)
    node.learn_batch([[0, 64]])
    assert node.cached_ids() == [64]
    disabled = build(cache=0).node(0)
    disabled.learn_batch([[64, 128]])
    assert disabled.cached_ids() == []


@pytest.mark.parametrize("cache", [1, 2, 5, 16])
@pytest.mark.parametrize("seed", [1, 7, 20260808])
def test_learn_batch_randomized_equivalence(cache, seed):
    rng = random.Random(seed)
    batched = build(cache).node(0)
    oracle = build(cache).node(0)
    for _ in range(40):
        sequences = [
            [rng.choice(RING) for _ in range(rng.randint(1, 6))]
            for _ in range(rng.randint(1, 4))
        ]
        batched.learn_batch(sequences)
        for sequence in sequences:
            oracle.learn(sequence)
        assert batched.cached_ids() == oracle.cached_ids()
        assert batched.audit_state() == oracle.audit_state()
