"""Batched same-tick delivery and network fault paths.

The network coalesces all transmissions sharing one ``(destination,
arrival-time)`` pair into a single inbox bucket drained by one kernel
event.  These tests pin the observable contract of that engine: one
event per bucket, send-order delivery, per-message liveness checks,
and the drop/loss accounting that must stay identical to the old
one-event-per-message implementation.
"""

import random

import pytest

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import MessageKind, OverlayMessage
from repro.overlay.network import FixedDelay, Network, UniformDelay
from repro.sim import Simulator


def make_message(request_id=1, payload=None):
    return OverlayMessage(
        kind=MessageKind.PUBLICATION,
        payload=payload,
        request_id=request_id,
        origin=0,
    )


# -- same-tick coalescing --------------------------------------------------


def test_same_tick_messages_share_one_kernel_event():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    seen = []
    net.register(1, lambda m: seen.append(m.payload))
    for tag in ("a", "b", "c"):
        net.transmit(0, 1, make_message(payload=tag))
    # Three messages, one (dst=1, arrival=0.05) bucket, one event.
    assert net.in_flight == 3
    assert sim.pending == 1
    sim.run()
    assert seen == ["a", "b", "c"]  # drained in send order
    assert sim.events_processed == 1
    assert net.in_flight == 0


def test_distinct_destinations_get_distinct_events():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    net.register(1, lambda m: None)
    net.register(2, lambda m: None)
    net.transmit(0, 1, make_message())
    net.transmit(0, 2, make_message())
    assert sim.pending == 2


def test_distinct_arrival_times_get_distinct_events():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    net.register(1, lambda m: None)
    net.transmit(0, 1, make_message())
    sim.run_until(0.01)  # advance the clock between sends
    net.transmit(0, 1, make_message())
    assert sim.pending == 2


def test_unregister_mid_batch_drops_remainder():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    seen = []

    def first_receiver_kills_node(message):
        seen.append(message.payload)
        net.unregister(1)

    net.register(1, first_receiver_kills_node)
    net.transmit(0, 1, make_message(payload="first"))
    net.transmit(0, 1, make_message(payload="second"))
    sim.run()
    # The handler is re-fetched per message: once the first delivery
    # unregisters the node, the rest of the bucket is dropped exactly
    # as if each message had its own event.
    assert seen == ["first"]
    assert net.dropped == 1


def test_zero_delay_resend_starts_fresh_bucket():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.0))
    deliveries = []

    def echo_once(message):
        deliveries.append(message.payload)
        if message.payload == "ping":
            net.transmit(1, 1, make_message(payload="pong"))

    net.register(1, echo_once)
    net.transmit(0, 1, make_message(payload="ping"))
    sim.run()
    # The bucket is detached before draining, so a zero-delay re-send
    # to the same destination lands in a new bucket (a later event)
    # instead of being appended to the batch being drained.
    assert deliveries == ["ping", "pong"]
    assert sim.events_processed == 2


def test_in_flight_spans_multiple_buckets():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    net.register(1, lambda m: None)
    net.register(2, lambda m: None)
    net.transmit(0, 1, make_message())
    net.transmit(0, 1, make_message())
    net.transmit(0, 2, make_message())
    assert net.in_flight == 3
    sim.run()
    assert net.in_flight == 0


# -- delay models ----------------------------------------------------------


class DoublingDelay(FixedDelay):
    """A FixedDelay subclass whose sample() is NOT the constant."""

    def sample(self, src: int, dst: int) -> float:
        return self._delay * 2


def test_fixed_delay_subclass_sample_is_respected():
    # Regression: the transmit fast path may only bypass sample() for
    # FixedDelay itself (exact type), never for a subclass overriding
    # it — isinstance() here would silently ignore the override.
    sim = Simulator()
    net = Network(sim, DoublingDelay(0.05))
    arrivals = []
    net.register(1, lambda m: arrivals.append(sim.now))
    net.transmit(0, 1, make_message())
    sim.run()
    assert arrivals == [0.1]


def test_uniform_delay_sampling_is_seeded_and_varied():
    model = UniformDelay(0.01, 0.05, random.Random(7))
    draws = [model.sample(0, 1) for _ in range(50)]
    assert all(0.01 <= d <= 0.05 for d in draws)
    assert len(set(draws)) > 1  # actually random, not constant
    # Same seed, same sequence: simulations stay reproducible.
    again = UniformDelay(0.01, 0.05, random.Random(7))
    assert [again.sample(0, 1) for _ in range(50)] == draws


def test_uniform_delay_messages_arrive_in_sample_order():
    sim = Simulator()
    net = Network(sim, UniformDelay(0.01, 0.5, random.Random(3)))
    arrivals = []
    net.register(1, lambda m: arrivals.append((m.payload, sim.now)))
    for tag in range(5):
        net.transmit(0, 1, make_message(payload=tag))
    sim.run()
    times = [t for _, t in arrivals]
    assert times == sorted(times)
    assert len(arrivals) == 5


# -- loss and drop accounting ----------------------------------------------


def test_loss_rate_requires_rng():
    with pytest.raises(OverlayError):
        Network(Simulator(), loss_rate=0.5)


def test_loss_rate_outside_unit_interval_rejected():
    with pytest.raises(OverlayError):
        Network(Simulator(), loss_rate=1.5, loss_rng=random.Random(0))
    with pytest.raises(OverlayError):
        Network(Simulator(), loss_rate=-0.1, loss_rng=random.Random(0))


def test_total_loss_counts_sends_but_delivers_nothing():
    sim = Simulator()
    recorder = MetricsRecorder()
    net = Network(
        sim, recorder=recorder, loss_rate=1.0, loss_rng=random.Random(0)
    )
    seen = []
    net.register(1, seen.append)
    for _ in range(4):
        net.transmit(0, 1, make_message())
    sim.run()
    assert seen == []
    assert net.lost == 4
    assert net.dropped == 0  # lost in flight, not dropped at a dead node
    # The bytes left the sender: sends are charged regardless.
    assert recorder.messages.total_sends() == 4


def test_partial_loss_is_deterministic_under_seed():
    def run(seed):
        sim = Simulator()
        net = Network(sim, loss_rate=0.5, loss_rng=random.Random(seed))
        delivered = []
        net.register(1, delivered.append)
        for _ in range(64):
            net.transmit(0, 1, make_message())
        sim.run()
        return len(delivered), net.lost

    first = run(42)
    assert first == run(42)  # reproducible
    delivered, lost = first
    assert delivered + lost == 64
    assert 0 < lost < 64  # the coin actually lands both ways


def test_dropped_and_lost_are_disjoint_counters():
    sim = Simulator()
    net = Network(sim, loss_rate=1.0, loss_rng=random.Random(1))
    net.transmit(0, 99, make_message())  # lost before the dead-node check
    sim.run()
    assert (net.lost, net.dropped) == (1, 0)

    sim2 = Simulator()
    net2 = Network(sim2)
    net2.transmit(0, 99, make_message())  # no receiver registered
    sim2.run()
    assert (net2.lost, net2.dropped) == (0, 1)


def test_unregister_then_transmit_drops_silently():
    sim = Simulator()
    net = Network(sim)
    seen = []
    net.register(5, seen.append)
    net.unregister(5)
    net.transmit(0, 5, make_message())
    net.transmit(0, 5, make_message())
    sim.run()
    assert seen == []
    assert net.dropped == 2
