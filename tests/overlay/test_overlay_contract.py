"""The OverlayNetwork contract, enforced uniformly across Chord, Pastry
and CAN — anything the pub/sub layer relies on must hold for all."""

import random

import pytest

from repro.errors import OverlayError
from repro.overlay.api import MessageKind, NeighborSide, OverlayMessage, next_request_id
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator

KS = KeySpace(13)
OVERLAYS = [ChordOverlay, PastryOverlay, CanOverlay]


def build(overlay_cls, n=60, seed=2):
    sim = Simulator()
    overlay = overlay_cls(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def message(src, kind=MessageKind.PUBLICATION):
    return OverlayMessage(
        kind=kind, payload=None, request_id=next_request_id(), origin=src
    )


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_every_key_has_exactly_one_owner(overlay_cls):
    _, overlay = build(overlay_cls)
    for key in range(0, KS.size, 61):
        owner = overlay.owner_of(key)
        assert overlay.is_alive(owner)
        assert overlay.covers(owner, key)


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_nodes_cover_their_own_ids(overlay_cls):
    _, overlay = build(overlay_cls)
    for node_id in overlay.node_ids():
        assert overlay.covers(node_id, node_id)


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_neighbor_pointers_are_mutual(overlay_cls):
    _, overlay = build(overlay_cls)
    for node_id in overlay.node_ids()[:20]:
        successor = overlay.neighbor_of(node_id, NeighborSide.SUCCESSOR)
        assert overlay.neighbor_of(successor, NeighborSide.PREDECESSOR) == node_id


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_heir_inherits_coverage_on_crash(overlay_cls):
    _, overlay = build(overlay_cls)
    victim = overlay.node_ids()[7]
    heir = overlay.heir_of(victim)
    probe_key = victim  # the victim covers its own id
    overlay.crash(victim)
    assert overlay.owner_of(probe_key) == heir


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_send_to_neighbor_is_exactly_one_hop(overlay_cls):
    sim, overlay = build(overlay_cls)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.hops)))
    src = overlay.node_ids()[0]
    overlay.send_to_neighbor(src, NeighborSide.SUCCESSOR, message(src))
    sim.run()
    assert delivered == [(overlay.neighbor_of(src, NeighborSide.SUCCESSOR), 1)]


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_empty_mcast_and_sequential_are_noops(overlay_cls):
    sim, overlay = build(overlay_cls)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    src = overlay.node_ids()[0]
    overlay.mcast(src, [], message(src))
    overlay.sequential_cast(src, [], message(src))
    sim.run()
    assert delivered == []
    assert overlay.recorder.messages.total_sends() == 0


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_send_validates_key_range(overlay_cls):
    _, overlay = build(overlay_cls)
    src = overlay.node_ids()[0]
    with pytest.raises(Exception):
        overlay.send(src, KS.size, message(src))


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_unknown_source_rejected(overlay_cls):
    _, overlay = build(overlay_cls)
    missing = next(k for k in range(KS.size) if not overlay.is_alive(k))
    with pytest.raises(OverlayError):
        overlay.send(missing, 0, message(missing))


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_local_coverage_delivers_without_network(overlay_cls):
    sim, overlay = build(overlay_cls)
    src = overlay.node_ids()[0]
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.hops)))
    overlay.send(src, src, message(src))  # own id: always local
    sim.run()
    assert delivered == [(src, 0)]
    assert overlay.recorder.messages.total_sends() == 0


@pytest.mark.parametrize("overlay_cls", OVERLAYS)
def test_state_transfer_hook_interval_matches_new_coverage(overlay_cls):
    """Whatever interval the hook hands over, the recipient must end up
    covering every key in it (open-left, closed-right convention)."""
    sim, overlay = build(overlay_cls, n=20, seed=4)
    calls = []
    overlay.set_state_transfer(lambda f, t, r: calls.append((f, t, r)))
    joiner = next(k for k in range(100, KS.size) if not overlay.is_alive(k))
    overlay.join(joiner)
    assert calls, "join must fire the state-transfer hook"
    from_node, to_node, (left, right) = calls[-1]
    assert to_node == joiner
    for key in KS.keys_in_range((left + 1) % KS.size, right)[:50]:
        assert overlay.covers(joiner, key), key
