"""Unit tests for the message transport."""

import random

import pytest

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import MessageKind, OverlayMessage
from repro.overlay.network import FixedDelay, Network, UniformDelay
from repro.sim import Simulator


def make_message(kind=MessageKind.PUBLICATION, request_id=1):
    return OverlayMessage(kind=kind, payload=None, request_id=request_id, origin=0)


def test_fixed_delay_applied():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    arrivals = []
    net.register(1, lambda m: arrivals.append(sim.now))
    net.transmit(0, 1, make_message())
    sim.run()
    assert arrivals == [0.05]


def test_default_delay_is_papers_50ms():
    assert FixedDelay().sample(0, 1) == 0.05


def test_negative_delay_rejected():
    with pytest.raises(OverlayError):
        FixedDelay(-1.0)
    with pytest.raises(OverlayError):
        UniformDelay(0.5, 0.1, random.Random(0))


def test_uniform_delay_within_bounds():
    model = UniformDelay(0.01, 0.02, random.Random(0))
    for _ in range(100):
        assert 0.01 <= model.sample(0, 1) <= 0.02


def test_sends_counted_by_kind_and_request():
    sim = Simulator()
    recorder = MetricsRecorder()
    net = Network(sim, recorder=recorder)
    net.register(1, lambda m: None)
    net.transmit(0, 1, make_message(MessageKind.SUBSCRIPTION, request_id=9))
    net.transmit(0, 1, make_message(MessageKind.SUBSCRIPTION, request_id=9))
    net.transmit(0, 1, make_message(MessageKind.PUBLICATION, request_id=10))
    sim.run()
    assert recorder.messages.total_sends(MessageKind.SUBSCRIPTION) == 2
    assert recorder.messages.total_sends(MessageKind.PUBLICATION) == 1
    assert recorder.messages.total_sends() == 3
    assert recorder.messages.traces[9].one_hop_messages == 2


def test_transmission_to_dead_node_dropped_but_counted():
    sim = Simulator()
    recorder = MetricsRecorder()
    net = Network(sim, recorder=recorder)
    net.transmit(0, 99, make_message())
    sim.run()
    assert net.dropped == 1
    assert recorder.messages.total_sends() == 1


def test_unregister_then_drop():
    sim = Simulator()
    net = Network(sim)
    seen = []
    net.register(1, seen.append)
    net.unregister(1)
    assert not net.is_alive(1)
    net.transmit(0, 1, make_message())
    sim.run()
    assert seen == [] and net.dropped == 1


def test_double_register_rejected():
    net = Network(Simulator())
    net.register(1, lambda m: None)
    with pytest.raises(OverlayError):
        net.register(1, lambda m: None)


def test_in_flight_message_survives_sender_death():
    sim = Simulator()
    net = Network(sim)
    seen = []
    net.register(1, lambda m: seen.append(m))
    net.register(2, lambda m: None)
    net.transmit(2, 1, make_message())
    net.unregister(2)  # sender dies mid-flight
    sim.run()
    assert len(seen) == 1
