"""Unit + property tests for key-space / ring-interval arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.overlay.ids import KeySpace

KS = KeySpace(13)
keys = st.integers(min_value=0, max_value=KS.size - 1)


def test_size():
    assert KeySpace(13).size == 8192
    assert KeySpace(4).size == 16


def test_invalid_bits_rejected():
    with pytest.raises(ConfigurationError):
        KeySpace(0)
    with pytest.raises(ConfigurationError):
        KeySpace(200)


def test_contains_and_validate():
    ks = KeySpace(4)
    assert ks.contains(0) and ks.contains(15)
    assert not ks.contains(16) and not ks.contains(-1)
    assert ks.validate(7) == 7
    with pytest.raises(ConfigurationError):
        ks.validate(16)


def test_wrap():
    ks = KeySpace(4)
    assert ks.wrap(16) == 0
    assert ks.wrap(-1) == 15
    assert ks.wrap(17) == 1


def test_hash_name_deterministic_and_in_range():
    ks = KeySpace(13)
    assert ks.hash_name("node-1") == ks.hash_name("node-1")
    assert ks.hash_name("node-1") != ks.hash_name("node-2")
    assert 0 <= ks.hash_name("anything") < ks.size


def test_distance_examples():
    ks = KeySpace(4)
    assert ks.distance(3, 5) == 2
    assert ks.distance(5, 3) == 14  # wraps around
    assert ks.distance(9, 9) == 0


def test_in_open_closed_examples():
    ks = KeySpace(4)
    assert ks.in_open_closed(5, 3, 7)
    assert ks.in_open_closed(7, 3, 7)  # right endpoint included
    assert not ks.in_open_closed(3, 3, 7)  # left endpoint excluded
    assert ks.in_open_closed(1, 14, 2)  # wrapping interval
    assert not ks.in_open_closed(10, 14, 2)
    assert ks.in_open_closed(9, 6, 6)  # degenerate = whole ring


def test_finger_start():
    ks = KeySpace(5)
    # Paper Fig. 1: finger 3 of node 8 starts at 8 + 2^2 = 12.
    assert ks.finger_start(8, 3) == 12
    assert ks.finger_start(30, 3) == (30 + 4) % 32
    with pytest.raises(ConfigurationError):
        ks.finger_start(0, 0)
    with pytest.raises(ConfigurationError):
        ks.finger_start(0, 6)


def test_keys_in_range_wrapping():
    ks = KeySpace(4)
    assert ks.keys_in_range(14, 1) == [14, 15, 0, 1]
    assert ks.keys_in_range(3, 3) == [3]


# -- properties ----------------------------------------------------------

@given(keys, keys)
def test_distance_antisymmetry(a, b):
    if a != b:
        assert KS.distance(a, b) + KS.distance(b, a) == KS.size
    else:
        assert KS.distance(a, b) == 0


@given(keys, keys, keys)
def test_open_closed_partition(key, left, right):
    """(left, right] and (right, left] partition the ring minus endpoints."""
    if left == right:
        return
    in_first = KS.in_open_closed(key, left, right)
    in_second = KS.in_open_closed(key, right, left)
    if key == left:
        assert not in_first and in_second
    elif key == right:
        assert in_first and not in_second
    else:
        assert in_first != in_second


@given(keys, keys, keys)
def test_interval_forms_consistent(key, left, right):
    oc = KS.in_open_closed(key, left, right)
    oo = KS.in_open_open(key, left, right)
    cc = KS.in_closed_closed(key, left, right)
    co = KS.in_closed_open(key, left, right)
    # Open-open is the most restrictive, closed-closed the least.
    assert not oo or oc
    assert not oc or cc
    assert not oo or co


@given(keys, keys)
def test_closed_closed_includes_endpoints(left, right):
    assert KS.in_closed_closed(left, left, right)
    assert KS.in_closed_closed(right, left, right)


@given(keys, keys)
def test_keys_in_range_matches_membership(left, right):
    span = KS.distance(left, right)
    if span > 64:
        return  # keep enumeration small
    enumerated = KS.keys_in_range(left, right)
    assert len(enumerated) == span + 1
    for key in enumerated:
        assert KS.in_closed_closed(key, left, right)
