"""The Pastry-style prefix-routing overlay (portability substrate)."""

import random
import statistics
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.overlay.pastry.node import common_prefix_length
from repro.sim import Simulator

KS = KeySpace(13)


def build(n=200, seed=1, **kwargs):
    sim = Simulator()
    overlay = PastryOverlay(sim, KS, **kwargs)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def send(overlay, src, key):
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION,
        payload=key,
        request_id=next_request_id(),
        origin=src,
    )
    overlay.send(src, key, message)


def test_common_prefix_length():
    assert common_prefix_length(0b1010, 0b1010, 4) == 4
    assert common_prefix_length(0b1010, 0b1011, 4) == 3
    assert common_prefix_length(0b1010, 0b0010, 4) == 0
    assert common_prefix_length(0, 0, 13) == 13


def test_leaf_set_size_validation():
    with pytest.raises(ValueError):
        PastryOverlay(Simulator(), KS, leaf_set_size=3)
    with pytest.raises(ValueError):
        PastryOverlay(Simulator(), KS, leaf_set_size=0)


def test_leaf_set_contains_ring_neighbors():
    _, overlay = build(n=50, leaf_set_size=8)
    for node_id in overlay.node_ids()[:10]:
        leaves = overlay.node(node_id).leaf_set()
        assert overlay.successor_of(node_id) in leaves
        assert overlay.predecessor_of(node_id) in leaves
        assert node_id not in leaves
        assert len(leaves) == 8


def test_leaf_set_on_tiny_ring():
    _, overlay = build(n=3, leaf_set_size=8)
    for node_id in overlay.node_ids():
        leaves = overlay.node(node_id).leaf_set()
        assert set(leaves) == set(overlay.node_ids()) - {node_id}


def test_routing_table_prefix_property():
    _, overlay = build(n=200)
    bits = KS.bits
    for node_id in overlay.node_ids()[:15]:
        table = overlay.node(node_id).routing_table()
        assert len(table) == bits
        for position, entry in enumerate(table):
            if entry is None:
                continue
            assert common_prefix_length(node_id, entry, bits) == position


def test_unicast_delivers_at_owner():
    sim, overlay = build(n=300, seed=2)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.payload)))
    rng = random.Random(3)
    for _ in range(200):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    assert len(delivered) == 200
    for node_id, key in delivered:
        assert overlay.owner_of(key) == node_id


def test_prefix_routing_hop_bound():
    sim, overlay = build(n=500, seed=4)
    hops = []
    overlay.set_deliver(lambda nid, m: hops.append(m.hops))
    rng = random.Random(5)
    for _ in range(300):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    assert max(hops) <= KS.bits + 2
    assert statistics.mean(hops) < 8


def test_mcast_covers_all_owners():
    sim, overlay = build(n=150, seed=6)
    got = []
    overlay.set_deliver(lambda nid, m: got.append(nid))
    src = overlay.node_ids()[0]
    keys = [k % KS.size for k in range(4000, 5500)]
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )
    overlay.mcast(src, keys, message)
    sim.run()
    expected = {overlay.owner_of(k) for k in keys}
    assert set(got) == expected
    # At-most-once is not guaranteed (documented); bound the waste.
    duplicates = sum(count - 1 for count in Counter(got).values())
    assert duplicates <= len(expected) // 2


def test_sequential_cast_covers_all_owners():
    sim, overlay = build(n=100, seed=7)
    got = []
    overlay.set_deliver(lambda nid, m: got.append(nid))
    src = overlay.node_ids()[0]
    keys = [k % KS.size for k in range(100, 600)]
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )
    overlay.sequential_cast(src, keys, message)
    sim.run()
    assert set(got) == {overlay.owner_of(k) for k in keys}


def test_membership_shared_semantics_with_chord():
    _, overlay = build(n=10, seed=8)
    node_ids = overlay.node_ids()
    overlay.leave(node_ids[3])
    assert not overlay.is_alive(node_ids[3])
    assert overlay.owner_of(node_ids[3]) == node_ids[4 % len(node_ids)]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, KS.size - 1), st.integers(0, 10**6))
def test_property_unicast_reaches_owner(key, seed):
    sim, overlay = build(n=60, seed=seed % 40 + 1)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    send(overlay, overlay.node_ids()[seed % 60], key)
    sim.run()
    assert delivered == [overlay.owner_of(key)]


@settings(max_examples=15, deadline=None)
@given(st.sets(st.integers(0, KS.size - 1), min_size=1, max_size=150))
def test_property_mcast_complete_coverage(keys):
    sim, overlay = build(n=90, seed=12)
    got = []
    overlay.set_deliver(lambda nid, m: got.append(nid))
    src = overlay.node_ids()[0]
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )
    overlay.mcast(src, keys, message)
    sim.run()
    assert set(got) == {overlay.owner_of(k) for k in keys}
