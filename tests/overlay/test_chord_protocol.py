"""Protocol-level Chord: joins, stabilization, convergence, failures."""

import random

import pytest

from repro.errors import OverlayError
from repro.overlay.chord.protocol import ProtocolChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(n, seed=1, **kwargs):
    sim = Simulator()
    overlay = ProtocolChordOverlay(sim, KS, **kwargs)
    ids = random.Random(seed).sample(range(KS.size), n)
    overlay.bootstrap(ids[0])
    for node_id in ids[1:]:
        overlay.join(node_id, bootstrap=ids[0])
        sim.run_until(sim.now + 3 * overlay.stabilize_period)
    return sim, overlay


def test_bootstrap_single_node():
    sim = Simulator()
    overlay = ProtocolChordOverlay(sim, KS)
    overlay.bootstrap(100)
    node = overlay.node(100)
    assert node.successor == 100
    sim.run_until(60.0)
    assert node.successor == 100  # stable alone


def test_double_bootstrap_rejected():
    overlay = ProtocolChordOverlay(Simulator(), KS)
    overlay.bootstrap(1)
    with pytest.raises(OverlayError):
        overlay.bootstrap(2)


def test_join_requires_live_bootstrap():
    overlay = ProtocolChordOverlay(Simulator(), KS)
    overlay.bootstrap(1)
    with pytest.raises(OverlayError):
        overlay.join(5, bootstrap=99)
    with pytest.raises(OverlayError):
        overlay.join(1, bootstrap=1)


def test_two_nodes_converge():
    sim = Simulator()
    overlay = ProtocolChordOverlay(sim, KS)
    overlay.bootstrap(100)
    overlay.join(5000, bootstrap=100)
    converged, _ = overlay.run_until_converged()
    assert converged
    assert overlay.node(100).successor == 5000
    assert overlay.node(5000).successor == 100
    assert overlay.node(100).predecessor == 5000


def test_sequential_joins_converge_to_ideal_ring():
    sim, overlay = build(20, seed=2)
    converged, _ = overlay.run_until_converged()
    assert converged
    for node_id in overlay.node_ids():
        assert overlay.node(node_id).successor == overlay.ideal_successor(node_id)


def test_fingers_converge_to_ideal():
    sim, overlay = build(15, seed=3)
    overlay.run_until_converged()
    # Let fix_fingers cycle through every entry a few times.
    sim.run_until(sim.now + 5 * KS.bits * overlay.fix_fingers_period)
    ids = sorted(overlay.node_ids())

    def ideal_owner(key):
        import bisect

        index = bisect.bisect_left(ids, key)
        return ids[index % len(ids)] if index < len(ids) else ids[0]

    for node_id in ids:
        node = overlay.node(node_id)
        for index, finger in enumerate(node.fingers):
            if finger is None:
                continue
            start = KS.finger_start(node_id, index + 1)
            assert finger == ideal_owner(start), (node_id, index)


def test_concurrent_joins_converge():
    sim = Simulator()
    overlay = ProtocolChordOverlay(sim, KS)
    ids = random.Random(4).sample(range(KS.size), 25)
    overlay.bootstrap(ids[0])
    for node_id in ids[1:]:
        overlay.join(node_id, bootstrap=ids[0])  # all at once, no settling
    converged, elapsed = overlay.run_until_converged(max_rounds=400)
    assert converged, "concurrent joins never converged"


def test_join_cost_scales_logarithmically():
    """A single join costs O(log n) control messages for the lookup
    (ongoing stabilization traffic is periodic and excluded here)."""
    sim, overlay = build(30, seed=5)
    overlay.run_until_converged()
    sim.run_until(sim.now + 10.0)
    before = overlay.control_messages()
    new_id = next(k for k in range(KS.size) if not overlay.is_alive(k))
    overlay.join(new_id, bootstrap=overlay.node_ids()[0])
    sim.run_until(sim.now + 0.5)  # lookup settles; few stabilize rounds
    lookup_cost = overlay.control_messages() - before
    # Generous bound: lookup hops + a couple of stabilization rounds.
    assert lookup_cost < 8 * 13


def test_crash_recovery_via_successor_list():
    sim, overlay = build(12, seed=6, successor_list_size=4)
    overlay.run_until_converged()
    sim.run_until(sim.now + 20.0)  # populate successor lists
    ids = overlay.node_ids()
    victim = ids[3]
    overlay.crash(victim)
    converged, _ = overlay.run_until_converged(max_rounds=300)
    assert converged
    assert victim not in overlay.node_ids()


def test_multiple_crashes_recovered():
    sim, overlay = build(16, seed=7, successor_list_size=5)
    overlay.run_until_converged()
    sim.run_until(sim.now + 30.0)
    rng = random.Random(8)
    for _ in range(4):
        victim = rng.choice(overlay.node_ids())
        overlay.crash(victim)
        sim.run_until(sim.now + 10.0)
    converged, _ = overlay.run_until_converged(max_rounds=400)
    assert converged


def test_crash_unknown_rejected():
    overlay = ProtocolChordOverlay(Simulator(), KS)
    overlay.bootstrap(1)
    with pytest.raises(OverlayError):
        overlay.crash(2)


def test_lookup_resolves_correct_successor():
    sim, overlay = build(18, seed=9)
    overlay.run_until_converged()
    sim.run_until(sim.now + 5 * KS.bits * overlay.fix_fingers_period)
    results = []
    source = overlay.node(overlay.node_ids()[0])
    rng = random.Random(10)
    keys = [rng.randrange(KS.size) for _ in range(20)]
    for key in keys:
        source.lookup(key, lambda successor, key=key: results.append((key, successor)))
    sim.run_until(sim.now + 30.0)
    assert len(results) == 20
    ids = sorted(overlay.node_ids())
    import bisect

    for key, successor in results:
        index = bisect.bisect_left(ids, key)
        expected = ids[index % len(ids)] if index < len(ids) else ids[0]
        assert successor == expected, (key, successor, expected)


def test_graceful_leave_heals_faster_than_crash():
    sim, overlay = build(14, seed=11)
    overlay.run_until_converged()
    sim.run_until(sim.now + 20.0)
    victim = overlay.node_ids()[4]
    predecessor = overlay.node(victim).predecessor
    successor = overlay.node(victim).live_successor()
    overlay.leave(victim)
    sim.run_until(sim.now + 0.2)  # one hop: notices arrive
    assert overlay.node(predecessor).successor == successor
    assert overlay.node(successor).predecessor == predecessor
    converged, _ = overlay.run_until_converged(max_rounds=100)
    assert converged
    assert victim not in overlay.node_ids()


def test_leave_clears_stale_pointers():
    sim, overlay = build(10, seed=12)
    overlay.run_until_converged()
    sim.run_until(sim.now + 5 * 13 * overlay.fix_fingers_period)
    victim = overlay.node_ids()[3]
    predecessor = overlay.node(victim).predecessor
    successor = overlay.node(victim).live_successor()
    overlay.leave(victim)
    sim.run_until(sim.now + 0.2)
    # The notified neighbors dropped the leaver immediately...
    for neighbor in (predecessor, successor):
        node = overlay.node(neighbor)
        assert victim not in node.successor_list
        assert node.successor != victim
    # ...and the rest of the ring heals through stabilization.
    converged, _ = overlay.run_until_converged(max_rounds=200)
    assert converged
    sim.run_until(sim.now + 60.0)  # successor lists refresh
    for node_id in overlay.node_ids():
        assert victim not in overlay.node(node_id).successor_list
