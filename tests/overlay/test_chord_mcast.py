"""The m-cast primitive (Fig. 4): coverage, exactly-once, complexity."""

import math
import random
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.overlay.api import CastMode, MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(n=200, seed=1):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=0)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def make_message(src):
    return OverlayMessage(
        kind=MessageKind.SUBSCRIPTION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )


def run_mcast(overlay, sim, src, keys):
    deliveries = []
    overlay.set_deliver(lambda nid, m: deliveries.append((nid, m)))
    overlay.mcast(src, keys, make_message(src))
    sim.run()
    return deliveries


def test_covers_exactly_owner_set():
    sim, overlay = build()
    src = overlay.node_ids()[0]
    keys = [k % KS.size for k in range(700, 1400)]
    deliveries = run_mcast(overlay, sim, src, keys)
    expected = {overlay.owner_of(k) for k in keys}
    assert {nid for nid, _ in deliveries} == expected


def test_at_most_once_delivery_per_node():
    sim, overlay = build()
    src = overlay.node_ids()[5]
    keys = [k % KS.size for k in range(3000, 4200)]
    deliveries = run_mcast(overlay, sim, src, keys)
    counts = Counter(nid for nid, _ in deliveries)
    assert all(count == 1 for count in counts.values())


def test_single_key_mcast_is_a_route_to_owner():
    sim, overlay = build()
    src = overlay.node_ids()[0]
    deliveries = run_mcast(overlay, sim, src, [1234])
    assert [nid for nid, _ in deliveries] == [overlay.owner_of(1234)]


def test_local_keys_delivered_without_network():
    sim, overlay = build()
    src = overlay.node_ids()[0]
    deliveries = run_mcast(overlay, sim, src, [src])  # own id: always covered
    assert deliveries[0][0] == src
    assert deliveries[0][1].hops == 0


def test_empty_key_set_is_noop():
    sim, overlay = build()
    deliveries = run_mcast(overlay, sim, overlay.node_ids()[0], [])
    assert deliveries == []


def test_message_complexity_log_n_plus_range():
    """Fig. 4 analysis: O(log n + N_range) one-hop messages for a range."""
    sim, overlay = build(n=500, seed=2)
    overlay.set_deliver(lambda nid, m: None)
    src = overlay.node_ids()[0]
    keys = list(range(2000, 3500))
    message = make_message(src)
    overlay.mcast(src, keys, message)
    sim.run()
    nodes_in_range = len({overlay.owner_of(k) for k in keys})
    sends = overlay.recorder.messages.traces[message.request_id].one_hop_messages
    # Allow a small constant factor over the ideal bound: chain hops
    # through non-covering nodes occur between sparse fingers.
    bound = 3 * (nodes_in_range + math.log2(500))
    assert sends <= bound


def test_dilation_is_logarithmic():
    sim, overlay = build(n=500, seed=3)
    overlay.set_deliver(lambda nid, m: None)
    src = overlay.node_ids()[10]
    message = make_message(src)
    overlay.mcast(src, list(range(0, 8192, 8)), message)  # ring-wide
    sim.run()
    trace = overlay.recorder.messages.traces[message.request_id]
    assert trace.max_path_hops <= math.ceil(math.log2(500)) + 2


def test_branches_carry_disjoint_target_subsets():
    sim, overlay = build(n=100)
    src = overlay.node_ids()[0]
    keys = [k % KS.size for k in range(500, 900)]
    deliveries = run_mcast(overlay, sim, src, keys)
    # Each delivered node's covered targets are a subset of the branch
    # it received, and every target key is covered by exactly one
    # delivered node.
    covered = Counter()
    for node_id, message in deliveries:
        node = overlay.node(node_id)
        for key in message.target_keys:
            if node.covers(key):
                covered[key] += 1
    assert set(covered) == set(keys)
    assert all(count == 1 for count in covered.values())


def test_sequential_cast_same_coverage_more_dilation():
    """Section 4.3.1: the conservative baseline matches m-cast's message
    count asymptotics but its dilation grows with the range size."""
    keys = list(range(1000, 2200))

    def run(mode):
        sim, overlay = build(n=300, seed=4)
        overlay.set_deliver(lambda nid, m: None)
        src = overlay.node_ids()[0]
        message = make_message(src)
        if mode == "mcast":
            overlay.mcast(src, keys, message)
        else:
            overlay.sequential_cast(src, keys, message)
        sim.run()
        trace = overlay.recorder.messages.traces[message.request_id]
        return trace

    mcast_trace = run("mcast")
    seq_trace = run("seq")
    assert seq_trace.delivery_count == mcast_trace.delivery_count
    assert seq_trace.max_path_hops > 3 * mcast_trace.max_path_hops


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, KS.size - 1),
    st.integers(1, 1500),
    st.integers(0, 10**6),
)
def test_property_mcast_exactly_once_and_complete(start, span, seed):
    sim, overlay = build(n=80, seed=seed % 50 + 1)
    keys = [(start + i) % KS.size for i in range(span)]
    src = overlay.node_ids()[seed % 80]
    deliveries = run_mcast(overlay, sim, src, keys)
    expected = {overlay.owner_of(k) for k in keys}
    counts = Counter(nid for nid, _ in deliveries)
    assert set(counts) == expected
    assert all(count == 1 for count in counts.values())


@settings(max_examples=20, deadline=None)
@given(st.sets(st.integers(0, KS.size - 1), min_size=1, max_size=200))
def test_property_mcast_scattered_keys(keys):
    """Non-contiguous target sets are covered exactly once per node too."""
    sim, overlay = build(n=120, seed=9)
    src = overlay.node_ids()[0]
    deliveries = run_mcast(overlay, sim, src, keys)
    expected = {overlay.owner_of(k) for k in keys}
    counts = Counter(nid for nid, _ in deliveries)
    assert set(counts) == expected
    assert all(count == 1 for count in counts.values())
