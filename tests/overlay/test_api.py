"""The abstract overlay interface: message helpers and defaults."""

from repro.overlay.api import (
    CastMode,
    MessageKind,
    NeighborSide,
    OverlayMessage,
    next_request_id,
)
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator


def make_message(**overrides):
    defaults = dict(
        kind=MessageKind.PUBLICATION,
        payload="data",
        request_id=7,
        origin=100,
    )
    defaults.update(overrides)
    return OverlayMessage(**defaults)


def test_request_ids_monotonic_and_unique():
    first = next_request_id()
    second = next_request_id()
    assert second > first


def test_forwarded_copy_increments_hops_and_path():
    message = make_message()
    step1 = message.forwarded_copy(via=1)
    step2 = step1.forwarded_copy(via=2)
    assert message.hops == 0 and message.path == ()
    assert step1.hops == 1 and step1.path == (1,)
    assert step2.hops == 2 and step2.path == (1, 2)
    # Payload and identity travel unchanged.
    assert step2.payload == "data"
    assert step2.request_id == 7


def test_forwarded_copy_can_narrow_targets():
    message = make_message(
        target_keys=frozenset({1, 2, 3}), mode=CastMode.MCAST
    )
    branch = message.forwarded_copy(via=5, target_keys=frozenset({2}))
    assert branch.target_keys == frozenset({2})
    assert message.target_keys == frozenset({1, 2, 3})  # original intact


def test_forwarded_copy_keeps_targets_by_default():
    message = make_message(target_keys=frozenset({1, 2}))
    assert message.forwarded_copy(via=5).target_keys == frozenset({1, 2})


def test_default_covers_uses_owner():
    sim = Simulator()
    overlay = ChordOverlay(sim, KeySpace(13))
    overlay.build_ring([100, 4000])
    assert overlay.covers(100, 100)
    assert overlay.covers(100, 50)       # wraps: (4000, 100]
    assert overlay.covers(4000, 2000)
    assert not overlay.covers(100, 2000)


def test_neighbor_side_enum_values():
    assert NeighborSide.SUCCESSOR.value == "successor"
    assert NeighborSide.PREDECESSOR.value == "predecessor"


def test_message_kind_coverage():
    # The accounting taxonomy used throughout the metrics.
    assert {k.value for k in MessageKind} == {
        "subscription", "unsubscription", "publication",
        "notification", "collect", "control",
    }
