"""The bucket entry point: ``receive_batch`` and its drain contract.

The network drain hands a whole ``(dst, tick)`` inbox bucket to the
destination's batch handler in one upcall; the handler owns the
per-message semantics.  These tests pin the contract from both sides:
the network invokes the batch handler exactly once per bucket (never
the per-message handler), and the overlay node implementations keep
send-order dispatch plus the mid-batch-death accounting identical to
the old per-message drain loop.
"""

from repro.overlay.api import MessageKind, OverlayMessage
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.network import FixedDelay, Network
from repro.sim import Simulator

KS = KeySpace(13)


def make_message(request_id=1, payload=None):
    return OverlayMessage(
        kind=MessageKind.PUBLICATION,
        payload=payload,
        request_id=request_id,
        origin=0,
    )


# -- network side: one bucket, one batch upcall ----------------------------


def test_batch_handler_gets_the_whole_bucket_once():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    batches = []
    singles = []
    net.register(1, singles.append, lambda msgs: batches.append(list(msgs)))
    for tag in ("a", "b", "c"):
        net.transmit(0, 1, make_message(payload=tag))
    sim.run()
    # One bucket, one upcall, all messages in send order — and the
    # per-message handler is bypassed entirely.
    assert [[m.payload for m in batch] for batch in batches] == [["a", "b", "c"]]
    assert singles == []


def test_batch_handler_is_per_destination():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    batched = []
    plain = []
    net.register(1, lambda m: None, lambda msgs: batched.extend(msgs))
    net.register(2, plain.append)  # no batch handler: per-message path
    net.transmit(0, 1, make_message(payload="x"))
    net.transmit(0, 2, make_message(payload="y"))
    sim.run()
    assert [m.payload for m in batched] == ["x"]
    assert [m.payload for m in plain] == ["y"]


def test_unregister_detaches_batch_handler():
    sim = Simulator()
    net = Network(sim, FixedDelay(0.05))
    batches = []
    net.register(1, lambda m: None, lambda msgs: batches.append(msgs))
    net.unregister(1)
    net.transmit(0, 1, make_message())
    sim.run()
    assert batches == []
    assert net.dropped == 1


# -- node side: chord's batch dispatch -------------------------------------


def build_pair():
    """A two-node ring where 100's only route to key 200 is one hop."""
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring([100, 200])
    return sim, overlay


def test_chord_bucket_delivers_in_send_order_in_one_event():
    sim, overlay = build_pair()
    delivered = []
    overlay.set_deliver(
        lambda node_id, message: delivered.append((node_id, message.payload))
    )
    for tag in ("first", "second", "third"):
        overlay.send(100, 200, make_message(payload=tag))
    assert sim.pending == 1  # same tick, same destination: one bucket
    sim.run()
    assert delivered == [(200, "first"), (200, "second"), (200, "third")]
    assert sim.events_processed == 1


def test_chord_mid_batch_crash_drops_remainder():
    sim, overlay = build_pair()
    delivered = []

    def crash_on_first_delivery(node_id, message):
        delivered.append(message.payload)
        overlay.crash(node_id)

    overlay.set_deliver(crash_on_first_delivery)
    overlay.send(100, 200, make_message(request_id=1, payload="first"))
    overlay.send(100, 200, make_message(request_id=2, payload="second"))
    overlay.send(100, 200, make_message(request_id=3, payload="third"))
    sim.run()
    # The first delivery kills the node; receive_batch hands the
    # unprocessed tail to drop_undeliverable, so the accounting is
    # identical to the per-message drain (two drops, one delivery).
    assert delivered == ["first"]
    assert overlay.network.dropped == 2
    assert not overlay.is_alive(200)
