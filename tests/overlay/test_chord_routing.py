"""Chord unicast routing: correctness, complexity, caching."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OverlayError
from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(n=200, cache=0, seed=1):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=cache)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def send(overlay, src, key, kind=MessageKind.PUBLICATION):
    message = OverlayMessage(
        kind=kind, payload=key, request_id=next_request_id(), origin=src
    )
    overlay.send(src, key, message)


def test_unicast_delivers_at_owner():
    sim, overlay = build()
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.payload)))
    rng = random.Random(2)
    for _ in range(100):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    assert len(delivered) == 100
    for node_id, key in delivered:
        assert overlay.owner_of(key) == node_id


def test_local_coverage_delivers_without_hops():
    sim, overlay = build()
    node = overlay.node_ids()[0]
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.hops)))
    send(overlay, node, node)  # a node always covers its own id
    sim.run()
    assert delivered == [(node, 0)]


def test_hops_bounded_by_log_n_plus_constant():
    sim, overlay = build(n=500)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(m.hops))
    rng = random.Random(3)
    for _ in range(300):
        send(overlay, rng.choice(overlay.node_ids()), rng.randrange(KS.size))
    sim.run()
    # Chord guarantee: O(log n) hops; mean approx 0.5*log2(n).
    assert max(delivered) <= 13 + 1
    assert statistics.mean(delivered) < 9


def test_location_cache_reduces_hops():
    def mean_hops(cache):
        sim, overlay = build(n=500, cache=cache, seed=4)
        hops = []
        overlay.set_deliver(lambda nid, m: hops.append(m.hops))
        rng = random.Random(5)
        nodes = overlay.node_ids()
        for _ in range(3000):
            send(overlay, rng.choice(nodes), rng.randrange(KS.size))
            sim.run()
        return statistics.mean(hops[1500:])  # after warmup

    cold = mean_hops(0)
    warm = mean_hops(128)
    assert warm < cold
    # Section 5.1 reports ~2.5 average hops at n=500 thanks to finger
    # caching (vs ~0.5*log2(500) = 4.5 without).  Our location cache
    # saturates around 3.5 for uniformly random pairs; the shape
    # (caching beats plain fingers by a wide margin) is what we assert.
    assert warm < 4.0
    assert cold > 4.5


def test_cache_learns_from_message_paths():
    sim, overlay = build(n=100, cache=64)
    overlay.set_deliver(lambda nid, m: None)
    rng = random.Random(6)
    src = overlay.node_ids()[0]
    for _ in range(50):
        send(overlay, src, rng.randrange(KS.size))
    sim.run()
    # Nodes along routing paths learned about each other.
    learned = sum(len(overlay.node(n).cached_ids()) for n in overlay.node_ids())
    assert learned > 0


def test_fingers_sorted_and_start_with_successor():
    _, overlay = build(n=100)
    for node_id in overlay.node_ids()[:20]:
        fingers = overlay.node(node_id).fingers()
        assert fingers[0] == overlay.successor_of(node_id)
        distances = [KS.distance(node_id, f) for f in fingers]
        assert distances == sorted(distances)
        assert len(set(fingers)) == len(fingers)


def test_finger_memoization_invalidated_by_churn():
    _, overlay = build(n=50)
    node = overlay.node(overlay.node_ids()[0])
    # fingers() exposes the live internal array (patching updates it in
    # place), so snapshot it before the churn below.
    before = list(node.fingers())
    # Join a node right after this one: it becomes the new successor.
    new_id = (node.id + 1) % KS.size
    if not overlay.is_alive(new_id):
        overlay.join(new_id)
        after = node.fingers()
        assert after[0] == new_id
        assert before[0] != new_id


def test_single_node_ring_covers_everything():
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring([42])
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    send(overlay, 42, 4000)
    sim.run()
    assert delivered == [42]


def test_send_invalid_key_rejected():
    _, overlay = build(n=10)
    with pytest.raises(Exception):
        send(overlay, overlay.node_ids()[0], KS.size + 5)


def test_send_from_unknown_node_rejected():
    _, overlay = build(n=10)
    missing = next(k for k in range(KS.size) if not overlay.is_alive(k))
    with pytest.raises(OverlayError):
        send(overlay, missing, 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, KS.size - 1), st.integers(0, 10**6))
def test_property_unicast_always_reaches_owner(key, seed):
    sim, overlay = build(n=60, seed=seed % 100 + 1)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    src = overlay.node_ids()[seed % 60]
    send(overlay, src, key)
    sim.run()
    assert delivered == [overlay.owner_of(key)]
