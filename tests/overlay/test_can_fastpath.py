"""The CAN routing fast path: memoized geometry, zone jumps, express links.

Three properties pin the fast path to the slow one:

- **same owners** — with every layer on, a routed key is delivered to
  exactly the node a brute-force zone scan names;
- **monotone potential** — along any delivered path, each node's
  closest-point torus distance to the target strictly decreases, which
  is the termination argument for all three layers at once;
- **exact express maintenance** — a node's delta-log-patched express
  table always equals a wholesale recomputation against the current
  zone table.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.can import CanOverlay, zone_rectangle
from repro.overlay.can.morton import (
    axis_sizes,
    morton_decode,
    rect_closest_point,
    torus_delta,
)
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)

FLAG_COMBOS = (
    dict(express_links=True, zone_jumps=True),
    dict(express_links=True, zone_jumps=False),
    dict(express_links=False, zone_jumps=True),
)


def build(n=60, seed=1, **flags):
    sim = Simulator()
    overlay = CanOverlay(sim, KS, **flags)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    return sim, overlay


def send(overlay, src, key):
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=key,
        request_id=next_request_id(), origin=src,
    )
    overlay.send(src, key, message)


def brute_owner(overlay, key):
    """Oracle: linear scan of every live node's zone interval."""
    size = overlay.keyspace.size
    for node_id in overlay.node_ids():
        start, length = overlay.zone_of(node_id)
        if (key - start) % size < length:
            return node_id
    raise AssertionError(f"no zone covers key {key}")


def zone_distance(overlay, node_id, key):
    """Oracle: the node's closest-point torus distance to the target."""
    bits = overlay.keyspace.bits
    x_size, y_size = axis_sizes(bits)
    tx, ty = morton_decode(key, bits)
    best = None
    for start, csize in overlay.compute_cells(node_id):
        rect = zone_rectangle(start, csize, bits)
        px, py = rect_closest_point(rect, tx, ty, x_size, y_size)
        distance = abs(torus_delta(px, tx, x_size)) + abs(
            torus_delta(py, ty, y_size)
        )
        if best is None or distance < best:
            best = distance
    return best


def churn(overlay, rng, rounds):
    from repro.errors import OverlayError

    for _ in range(rounds):
        roll = rng.random()
        if roll < 0.5 or len(overlay.node_ids()) <= 4:
            candidate = rng.randrange(KS.size)
            if not overlay.is_alive(candidate):
                try:
                    overlay.join(candidate)
                except OverlayError:
                    pass  # unsplittable sliver zone
        elif roll < 0.8:
            overlay.leave(rng.choice(overlay.node_ids()))
        else:
            overlay.crash(rng.choice(overlay.node_ids()))


# -- geometry tables ----------------------------------------------------------

def test_rect_of_cell_matches_zone_rectangle():
    _, overlay = build(n=5)
    for free in range(KS.bits + 1):
        size = 1 << free
        for start in range(0, KS.size, max(size, KS.size // 64)):
            aligned = start - start % size
            assert overlay.rect_of_cell(aligned, size) == zone_rectangle(
                aligned, size, KS.bits
            )


# -- fast-path delivery vs oracle --------------------------------------------

@pytest.mark.parametrize("flags", FLAG_COMBOS, ids=("both", "express", "jumps"))
def test_fast_path_same_owner_and_monotone_distance_seeded(flags):
    """Across random join/leave/crash sequences, the fast path delivers
    every key to the brute-force owner, and every delivered path's
    per-node distance to the target strictly decreases."""
    rng = random.Random(20260807)
    for round_index in range(6):
        sim, overlay = build(n=50, seed=round_index + 1, **flags)
        churn(overlay, rng, 40)
        delivered = []
        overlay.set_deliver(
            lambda nid, m: delivered.append((nid, m.payload, m.path))
        )
        keys = [rng.randrange(KS.size) for _ in range(40)]
        for key in keys:
            send(overlay, rng.choice(overlay.node_ids()), key)
        sim.run()
        assert len(delivered) == len(keys)
        for node_id, key, path in delivered:
            assert node_id == brute_owner(overlay, key)
            walk = list(path) + [node_id]
            distances = [zone_distance(overlay, n, key) for n in walk]
            for previous, current in zip(distances, distances[1:]):
                assert current < previous  # strictly decreasing => terminates
            assert distances[-1] == 0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, KS.size - 1), st.integers(0, 10**6))
def test_property_fast_path_unicast_reaches_owner(key, seed):
    sim, overlay = build(n=60, seed=seed % 40 + 1)
    churn(overlay, random.Random(seed), 15)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    send(overlay, overlay.node_ids()[seed % len(overlay.node_ids())], key)
    sim.run()
    assert delivered == [brute_owner(overlay, key)]


# -- express-link maintenance -------------------------------------------------

def test_express_patch_matches_wholesale_recompute():
    rng = random.Random(11)
    _, overlay = build(n=40, seed=7)
    warm = [overlay.node(n) for n in overlay.node_ids()[:20]]
    for node in warm:
        node._express_table()
        assert node.express_rebuilds == 1  # cold start
    churn(overlay, rng, 10)  # fits in one patch window
    for node in warm:
        if not overlay.is_alive(node.id):
            continue
        links = node._express_table()
        assert links == overlay.compute_express_links(node.id)
    patched = sum(n.express_patches for n in warm if overlay.is_alive(n.id))
    assert patched > 0


def test_express_randomized_churn_keeps_links_exact():
    rng = random.Random(23)
    _, overlay = build(n=48, seed=9)
    for _ in range(250):
        churn(overlay, rng, 1)
        if rng.random() < 0.3:
            for node_id in rng.sample(overlay.node_ids(), 5):
                node = overlay.node(node_id)
                assert node._express_table() == overlay.compute_express_links(
                    node_id
                )
    totals = overlay.maintenance_totals()
    assert totals["express_patches"] > 0


def test_express_log_overrun_falls_back_to_rebuild():
    _, overlay = build(n=8, seed=3)
    overlay._DELTA_LOG_CAP = 3
    node = overlay.node(overlay.node_ids()[0])
    node._express_table()
    assert node.express_rebuilds == 1
    rng = random.Random(5)
    churn(overlay, rng, 8)  # overruns the shrunken log
    assert overlay.deltas_since(node._express_version) is None
    assert node._express_table() == overlay.compute_express_links(node.id)
    assert node.express_rebuilds == 2


# -- the defensive fallback (regression) --------------------------------------

def test_fallback_steps_toward_key_not_successor():
    """A node with corrupted (stale) geometry must still forward toward
    the key's zone, not blindly to its zone-ring successor — on a torus
    the successor can point the wrong way and the old fallback
    livelocked such walks.
    """
    sim = Simulator()
    overlay = CanOverlay(sim, KS, express_links=False, zone_jumps=False)
    overlay.build_ring([0x100, 0x900, 0x1400])
    overlay._starts = [0, 0x800, 0x1000]
    overlay._owners = [0x100, 0x900, 0x1400]
    node_a = overlay.node(0x100)
    # Corrupt A's memoized geometry so its "closest point" probe lands
    # back inside its own true zone: pretend its zone is a single far
    # cell whose one-unit step stays within [0, 0x800).
    node_a._cells = [(0x400, 1)]
    node_a._rects = [overlay.rect_of_cell(0x400, 1)]
    node_a._version = overlay.zone_version
    key = 0x1600  # owned by C=0x1400; zone index 2
    hop = node_a._next_hop(key)
    # Cyclically, stepping backward (index 0 -> 2) is the short way
    # toward the key's zone; the old code returned B (index 1), the
    # zone-ring successor, which routes away from the target.
    assert hop == 0x1400


def test_fallback_direction_is_shorter_cyclic_way():
    """_fallback_toward picks whichever cyclic zone-index direction is
    nearer to the key's zone — both ways around."""
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring([0x100, 0x900, 0x1400, 0x1C00])
    overlay._starts = [0, 0x800, 0x1000, 0x1800]
    overlay._owners = [0x100, 0x900, 0x1400, 0x1C00]
    node_a = overlay.node(0x100)
    # Key in the next zone forward: step forward to B.
    assert node_a._fallback_toward(0x900) == 0x900
    # Key in the zone just behind (cyclically): step backward to D.
    assert node_a._fallback_toward(0x1900) == 0x1C00
