"""Incremental finger-table maintenance under membership churn.

The ring overlay logs every join/leave/crash as a delta
(:meth:`RingOverlay.deltas_since`) and a stale :class:`ChordNode`
catches up by *patching* its raw finger slots against that log instead
of rebuilding from the full membership.  These tests pin the contract:
joins and departures are absorbed as patches (counted by
``table_patches``), a full rebuild (``table_rebuilds``) happens only
when the log no longer reaches back to the node's version or has more
entries than the node has finger slots, and a patched table is always
identical to what a fresh rebuild would produce.
"""

import random

from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(ids, **kwargs):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, **kwargs)
    overlay.build_ring(ids)
    return sim, overlay


def synced_node(overlay, node_id):
    """The node, with its routing table brought current."""
    node = overlay.node(node_id)
    node.fingers()  # forces a sync
    return node


def assert_table_matches_rebuild(overlay, node):
    """The node's incremental state equals a from-scratch computation."""
    assert node.fingers() == overlay.compute_fingers(node.id)
    assert node._finger_slots == overlay.compute_finger_slots(node.id)
    # The merged table is fingers plus cache, minus self, with no
    # duplicates — order is by clockwise distance.
    expected_members = set(node.fingers()) | set(node.cached_ids())
    expected_members.discard(node.id)
    assert node._table_members == expected_members
    distance = overlay.keyspace.distance
    expected_order = sorted(expected_members, key=lambda n: distance(node.id, n))
    assert node._table_ids == expected_order


# -- joins and departures patch, not rebuild -------------------------------


def test_join_is_absorbed_as_patch():
    _, overlay = build([100, 2000, 4000, 6000])
    node = synced_node(overlay, 100)
    rebuilds, patches = node.table_rebuilds, node.table_patches
    overlay.join(3000)
    node.fingers()
    assert node.table_rebuilds == rebuilds  # no rebuild
    assert node.table_patches == patches + 1
    assert_table_matches_rebuild(overlay, node)


def test_leave_is_absorbed_as_patch():
    _, overlay = build([100, 2000, 4000, 6000])
    node = synced_node(overlay, 100)
    rebuilds, patches = node.table_rebuilds, node.table_patches
    overlay.leave(4000)
    node.fingers()
    assert node.table_rebuilds == rebuilds
    assert node.table_patches == patches + 1
    assert_table_matches_rebuild(overlay, node)


def test_crash_is_absorbed_as_patch():
    _, overlay = build([100, 2000, 4000, 6000])
    node = synced_node(overlay, 100)
    rebuilds = node.table_rebuilds
    overlay.crash(2000)
    node.fingers()
    assert node.table_rebuilds == rebuilds
    assert_table_matches_rebuild(overlay, node)


def test_batched_deltas_replay_in_one_patch():
    # Eight spread-out nodes give node 100 enough distinct fingers
    # (table rows) that a four-delta gap stays under the patch limit.
    _, overlay = build([100, 1000, 2000, 3000, 4000, 5000, 6000, 7000])
    node = synced_node(overlay, 100)
    patches = node.table_patches
    # Several membership changes between two touches of this node.
    # (Joiners are picked so neither has node 100 as its successor —
    # join-time seeding force-syncs the successor, which would split
    # the catch-up into two patches.)
    overlay.join(500)
    overlay.join(6500)
    overlay.leave(4000)
    overlay.crash(2000)
    node.fingers()
    assert node.table_patches == patches + 1  # one catch-up, four deltas
    assert_table_matches_rebuild(overlay, node)


def test_randomized_churn_keeps_patched_tables_exact():
    rng = random.Random(1234)
    ids = sorted(rng.sample(range(KS.size), 64))
    _, overlay = build(ids)
    watched = [synced_node(overlay, nid) for nid in ids[:8]]
    live = set(ids)
    for _ in range(200):
        if rng.random() < 0.5 or len(live) < 16:
            candidate = rng.randrange(KS.size)
            if candidate in live:
                continue
            overlay.join(candidate)
            live.add(candidate)
        else:
            victim = rng.choice(sorted(live - {n.id for n in watched}))
            if rng.random() < 0.5:
                overlay.leave(victim)
            else:
                overlay.crash(victim)
            live.discard(victim)
        if rng.random() < 0.3:
            for node in watched:
                node.fingers()
    for node in watched:
        assert_table_matches_rebuild(overlay, node)
        assert node.table_patches > 0


# -- rebuild fallbacks -----------------------------------------------------


def test_fresh_node_is_seeded_then_patches():
    _, overlay = build([100, 2000, 4000, 6000])
    overlay.join(3000)
    joiner = overlay.node(3000)
    # Join-time seeding replaces the old cold-start rebuild: the node
    # is already at the current ring version before its first use.
    assert joiner.table_seeds == 1
    assert joiner.table_rebuilds == 0
    joiner.fingers()
    assert (joiner.table_rebuilds, joiner.table_patches) == (0, 0)
    assert_table_matches_rebuild(overlay, joiner)
    overlay.join(5000)
    joiner.fingers()
    assert (joiner.table_rebuilds, joiner.table_patches) == (0, 1)


def test_randomized_joins_are_seeded_exactly():
    """Property: every joiner's seeded table equals a fresh derivation.

    Join-time seeding derives the joiner's slots from its successor's
    table (certifying each slot or falling back to a ring bisect), so
    whatever the ring looks like, a just-joined node must hold exactly
    the state a cold rebuild would compute — without ever rebuilding.
    """
    rng = random.Random(777)
    ids = sorted(rng.sample(range(KS.size), 32))
    _, overlay = build(ids)
    live = set(ids)
    for _ in range(150):
        action = rng.random()
        if action < 0.5 or len(live) < 8:
            candidate = rng.randrange(KS.size)
            if candidate in live:
                continue
            overlay.join(candidate)
            live.add(candidate)
            joiner = overlay.node(candidate)
            assert joiner.table_seeds == 1
            assert joiner.table_rebuilds == 0
            assert_table_matches_rebuild(overlay, joiner)
        else:
            victim = rng.choice(sorted(live))
            if rng.random() < 0.5:
                overlay.leave(victim)
            else:
                overlay.crash(victim)
            live.discard(victim)


def test_log_longer_than_slots_falls_back_to_rebuild():
    # Replaying a delta costs two bisects while a rebuild re-resolves
    # each slot at one, so a burst of more deltas than finger slots
    # must trigger the rebuild path.
    _, overlay = build([100, 2000, 4000, 6000], cache_capacity=0)
    node = synced_node(overlay, 100)
    slot_count = len(node._finger_starts)
    rebuilds = node.table_rebuilds
    joiner_rng = random.Random(9)
    added = 0
    while added <= slot_count:
        candidate = joiner_rng.randrange(KS.size)
        # Keep joiners out of (6000, 100]: a joiner whose successor is
        # node 100 would force-sync it at join time (seeding), resetting
        # the delta backlog this test is accumulating.
        if not 200 < candidate < 6000:
            continue
        if not overlay.is_alive(candidate):
            overlay.join(candidate)
            added += 1
    node.fingers()
    assert node.table_rebuilds == rebuilds + 1
    assert_table_matches_rebuild(overlay, node)


def test_truncated_log_falls_back_to_rebuild():
    _, overlay = build([100, 2000, 4000, 6000])
    overlay._DELTA_LOG_CAP = 4  # shrink the window for the test
    node = synced_node(overlay, 100)
    version_before = overlay.ring_version
    rebuilds = node.table_rebuilds
    for candidate in (300, 700, 1500, 2500, 3500, 5000):
        overlay.join(candidate)
    # The log was capped: this node's version fell off the back.
    assert overlay.deltas_since(version_before) is None
    node.fingers()
    assert node.table_rebuilds == rebuilds + 1
    assert_table_matches_rebuild(overlay, node)


# -- the delta log itself --------------------------------------------------


def test_deltas_since_records_joins_and_departures():
    _, overlay = build([100, 2000, 4000, 6000])
    version = overlay.ring_version
    overlay.join(3000)
    overlay.leave(6000)
    overlay.crash(2000)
    deltas = overlay.deltas_since(version)
    assert deltas == [
        ("join", 3000, 2000),  # predecessor after the join
        ("depart", 6000, 100),  # heir: old successor (wraps to 100)
        ("depart", 2000, 3000),
    ]
    assert overlay.deltas_since(overlay.ring_version) == []


def test_build_ring_resets_the_log():
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring([100, 2000])
    assert overlay.deltas_since(overlay.ring_version) == []
    # Versions predating the bulk build are not replayable.
    assert overlay.deltas_since(overlay.ring_version - 1) is None
