"""The per-node location cache: learning, eviction, liveness checks."""

import random

from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(cache=8, ids=(100, 2000, 4000, 6000)):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=cache)
    overlay.build_ring(ids)
    return sim, overlay


def test_learn_and_order():
    _, overlay = build()
    node = overlay.node(100)
    node.learn([2000, 4000])
    node.learn([2000])  # refresh: moves to most-recent
    assert node.cached_ids() == [4000, 2000]


def test_learn_ignores_self():
    _, overlay = build()
    node = overlay.node(100)
    node.learn([100, 2000])
    assert node.cached_ids() == [2000]


def test_lru_eviction_at_capacity():
    _, overlay = build(cache=2)
    node = overlay.node(100)
    node.learn([2000])
    node.learn([4000])
    node.learn([6000])  # evicts 2000
    assert node.cached_ids() == [4000, 6000]


def test_capacity_zero_disables_learning():
    _, overlay = build(cache=0)
    node = overlay.node(100)
    node.learn([2000, 4000])
    assert node.cached_ids() == []


def test_forget():
    _, overlay = build()
    node = overlay.node(100)
    node.learn([2000])
    node.forget(2000)
    node.forget(2000)  # idempotent
    assert node.cached_ids() == []


def test_dead_cache_entry_skipped_and_forgotten():
    sim, overlay = build(cache=8, ids=(100, 2000, 4000, 6000))
    node = overlay.node(100)
    node.learn([4000])
    overlay.crash(4000)
    # Routing past 4000's position examines (and evicts) the dead entry.
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=None,
        request_id=next_request_id(), origin=100,
    )
    overlay.send(100, 5000, message)  # beyond 4000; owner is 6000
    sim.run()
    assert delivered == [overlay.owner_of(5000)] == [6000]
    assert 4000 not in node.cached_ids()


def test_cache_enables_one_hop_shortcut():
    """A cached node preceding-or-equal to the key is reached directly.

    (The cache cannot shortcut to an owner *past* the key — nodes do not
    know each other's coverage — which is why it saturates above the
    paper's 2.5-hop figure; see EXPERIMENTS.md.)"""
    sim, overlay = build(cache=8)
    source = overlay.node(100)
    source.learn([6000])
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.hops)))
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=None,
        request_id=next_request_id(), origin=100,
    )
    overlay.send(100, 6000, message)  # key == cached node id
    sim.run()
    assert delivered == [(6000, 1)]


def test_receiving_messages_populates_cache():
    sim, overlay = build(cache=8)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=None,
        request_id=next_request_id(), origin=100,
    )
    overlay.send(100, 5500, message)
    sim.run()
    receiver = overlay.node(delivered[0])
    assert 100 in receiver.cached_ids()  # learned the origin
