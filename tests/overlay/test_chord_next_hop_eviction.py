"""Regression tests: dead-node eviction must not race the next-hop scan.

The original ``_next_hop`` called ``self.forget`` (mutating the
location cache) while scanning a candidate list derived from it; the
sorted-table rewrite defers eviction until after the binary-search walk.
These tests pin the observable contract: with one or *several* crashed
cached nodes stacked in front of the key, routing still picks the
correct live hop, evicts every dead entry it examined, and leaves the
routing table consistent for subsequent messages.
"""

from __future__ import annotations

import random

from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)


def build(ids, cache=16):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=cache)
    overlay.build_ring(ids)
    return sim, overlay


def msg(src):
    return OverlayMessage(
        kind=MessageKind.PUBLICATION,
        payload=None,
        request_id=next_request_id(),
        origin=src,
    )


def test_single_crashed_cached_node_is_skipped_and_evicted():
    sim, overlay = build((100, 2000, 4000, 6000))
    node = overlay.node(100)
    node.learn([4000])
    overlay.crash(4000)
    assert node._next_hop(5000, use_cache=True) == 2000
    assert 4000 not in node.cached_ids()


def test_stack_of_crashed_cached_nodes_walked_and_evicted():
    ids = tuple(range(100, 8100, 500))
    sim, overlay = build(ids, cache=32)
    node = overlay.node(100)
    # Cache several nodes that all precede the key, then crash the
    # closest three: the scan must walk left over every dead entry.
    node.learn([3100, 3600, 4100, 4600])
    for dead in (3600, 4100, 4600):
        overlay.crash(dead)
    hop = node._next_hop(4700, use_cache=True)
    assert hop == 3100
    for dead in (3600, 4100, 4600):
        assert dead not in node.cached_ids()
    assert 3100 in node.cached_ids()
    # The table stays consistent: a second lookup gets the same answer
    # without re-examining dead entries.
    assert node._next_hop(4700, use_cache=True) == 3100


def test_route_through_crashed_cache_still_delivers_at_owner():
    ids = tuple(range(0, 8192, 64))
    sim, overlay = build(ids, cache=32)
    src = 0
    node = overlay.node(src)
    rng = random.Random(9)
    learned = rng.sample([i for i in ids if i != src], 12)
    node.learn(learned)
    crashed = learned[:5]
    for dead in crashed:
        overlay.crash(dead)
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append((nid, m.payload)))
    for key in (513, 2049, 4097, 6145, 8191):
        overlay.send(src, key, msg(src))
    sim.run()
    # Every message still lands at the key's live owner, regardless of
    # how many dead cache entries the scans walked over.  (Dead entries
    # are evicted lazily: only the ones a scan examines are dropped,
    # matching the original behavior.)
    assert sorted(nid for nid, _ in delivered) == sorted(
        overlay.owner_of(k) for k in (513, 2049, 4097, 6145, 8191)
    )
    for nid, _ in delivered:
        assert overlay.is_alive(nid)


def test_forget_keeps_finger_entries_in_routing_table():
    ids = (100, 2000, 4000, 6000)
    sim, overlay = build(ids)
    node = overlay.node(100)
    node._ensure_table()
    fingers = set(node.fingers())
    target = next(iter(fingers))
    # Learning a finger then forgetting it must not remove the finger
    # from the merged routing table.
    node.learn([target])
    node.forget(target)
    assert target not in node.cached_ids()
    assert target in node._table_ids
