"""The shard execution profiler: accounting identity, laggard
attribution, event conservation, the traffic matrix, JSONL v4
round-trip, Perfetto tracks, profiling-off neutrality, and the
rebalance advisor actually reducing barrier stalls on a skewed
workload.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.metrics.fingerprint import behavior_digest
from repro.sim.rng import RandomStreams
from repro.sim.shard import (
    load_imbalance_ratio,
    partition_ring,
    ring_node_ids,
    run_sharded,
)
from repro.telemetry import Telemetry
from repro.telemetry.export import (
    FORMAT_VERSION,
    load_jsonl,
    to_chrome_trace,
    write_jsonl,
)
from repro.telemetry.profile import (
    ShardProfiler,
    build_shard_report,
    render_shard_report,
    suggest_cuts,
)
from repro.workload.spec import WorkloadSpec
from repro.workload.trace import Trace


def _make_trace(config: ExperimentConfig) -> Trace:
    streams = RandomStreams(config.seed)
    return Trace.generate(
        config.workload,
        streams.stream("workload"),
        ring_node_ids(config),
        config.subscriptions,
        config.publications,
    )


# -- suggest_cuts (the rebalance advisor's partitioner) ----------------------


def test_suggest_cuts_equalizes_skewed_load():
    # Node 0 carries half the traffic; a 2-way cut must isolate it.
    ids = list(range(10))
    loads = {0: 50, **{n: 50 / 9 for n in range(1, 10)}}
    assert suggest_cuts(ids, loads, 2) == [0, 1]


def test_suggest_cuts_balanced_load_matches_equal_split():
    ids = list(range(12))
    loads = {n: 7 for n in ids}
    assert suggest_cuts(ids, loads, 3) == [0, 4, 8]


def test_suggest_cuts_keeps_every_arc_nonempty():
    # All load on the last node: naive quantile cuts would collapse the
    # leading arcs to zero nodes; the clamp must keep one node each.
    ids = list(range(6))
    loads = {5: 100}
    cuts = suggest_cuts(ids, loads, 4)
    assert cuts[0] == 0
    assert all(b > a for a, b in zip(cuts, cuts[1:]))
    assert cuts[-1] <= len(ids) - 1  # last arc non-empty too


def test_suggest_cuts_zero_load_falls_back_to_equal_split():
    assert suggest_cuts(list(range(10)), {}, 3) == [0, 3, 6]
    assert suggest_cuts(list(range(10)), {n: 0 for n in range(10)}, 2) \
        == [0, 5]


def test_suggest_cuts_rejects_more_shards_than_nodes():
    with pytest.raises(ValueError):
        suggest_cuts([1, 2], {1: 1.0}, 3)


def test_suggest_cuts_unsorted_ids_use_ring_order():
    ids = [30, 10, 20, 40]
    loads = {10: 97, 20: 1, 30: 1, 40: 1}
    assert suggest_cuts(ids, loads, 2) == [0, 1]


# -- partition_ring with explicit cuts ---------------------------------------


def test_partition_ring_honors_explicit_cuts():
    ids = list(range(100, 110))
    locals_, shard_of = partition_ring(ids, 3, cuts=[0, 2, 7])
    assert [len(arc) for arc in locals_] == [2, 5, 3]
    assert locals_[0] == frozenset({100, 101})
    assert shard_of[106] == 1
    assert shard_of[107] == 2


@pytest.mark.parametrize(
    "cuts",
    [
        [0, 5],            # wrong length for 3 shards
        [1, 4, 7],         # must start at 0
        [0, 4, 4],         # not strictly increasing
        [0, 4, 10],        # start offset out of range
    ],
)
def test_partition_ring_rejects_bad_cuts(cuts):
    with pytest.raises(ConfigurationError):
        partition_ring(list(range(10)), 3, cuts=cuts)


# -- one profiled run, shared across the accounting tests --------------------


@pytest.fixture(scope="module")
def profiled_run():
    config = ExperimentConfig(
        nodes=200, subscriptions=80, publications=80, seed=20260808,
    )
    trace = _make_trace(config)
    profiler = ShardProfiler(2)
    telemetry = Telemetry()
    outcome = run_sharded(
        config, trace, 2, mode="inline", telemetry=telemetry,
        profile=profiler,
    )
    return config, trace, profiler, telemetry, outcome


def test_profiler_records_every_barrier_round(profiled_run):
    _, _, profiler, _, outcome = profiled_run
    assert len(profiler.rounds) == outcome.barrier_rounds
    assert outcome.profile is profiler


def test_busy_plus_stall_equals_wall_per_round(profiled_run):
    # The accounting identity (ISSUE acceptance: within 5%; it holds
    # exactly by construction — stall is defined as wall - busy).
    _, _, profiler, _, _ = profiled_run
    for record in profiler.rounds:
        for shard in range(2):
            busy = record.busy_s[shard]
            stall = record.stall_s(shard)
            assert busy + stall == pytest.approx(record.wall_s, rel=0.05)
            assert stall >= 0.0


def test_laggard_named_for_every_round(profiled_run):
    _, _, profiler, _, _ = profiled_run
    for record in profiler.rounds:
        laggard = record.laggard
        assert 0 <= laggard < 2
        assert record.busy_s[laggard] == max(record.busy_s)


def test_round_plus_finish_events_conserve_shard_totals(profiled_run):
    # Every event a worker fired is attributed to exactly one round or
    # the finish stretch — nothing double-counted, nothing dropped.
    _, _, profiler, _, outcome = profiled_run
    for shard in range(2):
        in_rounds = sum(r.events[shard] for r in profiler.rounds)
        assert in_rounds + profiler.finish_events[shard] \
            == outcome.events_per_shard[shard]


def test_traffic_matrix_sums_to_remote_messages(profiled_run):
    _, _, profiler, _, outcome = profiled_run
    total = sum(
        sum(sum(row) for row in record.sent) for record in profiler.rounds
    )
    assert total == outcome.remote_messages
    # Diagonal is empty: a shard never routes to itself via the barrier.
    for record in profiler.rounds:
        for shard in range(2):
            assert record.sent[shard][shard] == 0


def test_critical_path_identity_and_shares(profiled_run):
    _, _, profiler, _, _ = profiled_run
    path = profiler.critical_path()
    wall = path.total_wall_s
    for shard in range(2):
        accounted = (
            path.busy_s[shard]
            + path.barrier_wait_s[shard]
            + path.pipe_s[shard]
        )
        assert accounted == pytest.approx(wall, rel=0.05)
    assert path.dominant_phase in ("compute", "barrier", "pipe")
    assert sum(path.laggard_rounds) == path.rounds
    assert all(0.0 <= u <= 1.0 for u in path.lookahead_utilization)


def test_advisor_prediction_matches_measured_load(profiled_run):
    # Per-node one-hop sends are partition-invariant (routing geometry
    # sees the full ring regardless of arc assignment), so the measured
    # load re-aggregated under the *current* cuts must reproduce the
    # coordinator's own load_by_shard exactly.
    _, _, profiler, _, outcome = profiled_run
    predicted = profiler.predicted_load_by_shard(profiler.cuts)
    assert [int(v) for v in predicted] == list(outcome.load_by_shard)
    assert sum(profiler.node_loads.values()) == sum(outcome.load_by_shard)


# -- JSONL v4 round-trip and report rendering --------------------------------


def test_profile_records_roundtrip_jsonl_v4(profiled_run, tmp_path):
    _, _, profiler, telemetry, _ = profiled_run
    path = tmp_path / "profiled.jsonl"
    write_jsonl(telemetry, path)
    dump = load_jsonl(path)
    assert dump.meta["version"] == FORMAT_VERSION == 4
    assert dump.profiles  # profile records survived the round-trip
    scopes = {record["scope"] for record in dump.profiles}
    assert scopes == {"run", "advice", "shard", "round"}
    run = next(r for r in dump.profiles if r["scope"] == "run")
    assert run["rounds"] == len(profiler.rounds)
    shards = [r for r in dump.profiles if r["scope"] == "shard"]
    assert [r["shard"] for r in sorted(shards, key=lambda r: r["shard"])] \
        == [0, 1]
    rounds = [r for r in dump.profiles if r["scope"] == "round"]
    assert len(rounds) == len(profiler.rounds)

    report = build_shard_report(dump)
    assert report is not None
    text = render_shard_report(report, source=str(path))
    assert "shard execution profile" in text
    assert "stall attribution" in text
    assert "rebalance advisor" in text


def test_build_shard_report_accepts_plain_record_list(profiled_run):
    _, _, profiler, _, _ = profiled_run
    report = build_shard_report(profiler.profile_records())
    assert report is not None
    assert report["run"]["num_shards"] == 2
    assert len(report["shards"]) == 2


def test_build_shard_report_none_without_profile_records():
    assert build_shard_report([]) is None


def test_chrome_trace_has_per_shard_wall_clock_tracks(profiled_run):
    _, _, _, telemetry, _ = profiled_run
    trace = to_chrome_trace(telemetry)
    events = trace["traceEvents"]
    names = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e["name"] in ("process_name", "thread_name")
    }
    assert "shard execution (wall clock)" in names
    assert {"shard 0", "shard 1"} <= names
    slices = [
        e for e in events
        if e.get("ph") == "X" and e.get("cat") == "shard"
    ]
    assert {e["name"] for e in slices} >= {"busy", "stall"}
    assert {e["tid"] for e in slices} == {0, 1}
    counters = {
        e["name"] for e in events
        if e.get("ph") == "C" and e.get("pid") == 2
    }
    assert counters == {
        "shard.window_width", "shard.window_events", "shard.window_remote",
    }
    json.dumps(trace)  # the whole thing must serialize


# -- profiling-off neutrality ------------------------------------------------


def test_profiled_run_matches_unprofiled_digest():
    config = ExperimentConfig(
        nodes=120, subscriptions=50, publications=50, seed=7,
    )
    trace = _make_trace(config)
    plain = run_sharded(config, trace, 2, mode="inline")
    profiled = run_sharded(
        config, trace, 2, mode="inline", profile=ShardProfiler(2)
    )
    assert behavior_digest(plain.recorder) == behavior_digest(
        profiled.recorder
    )
    assert plain.barrier_stalls == profiled.barrier_stalls
    assert plain.load_by_shard == profiled.load_by_shard


def test_profiler_shard_count_must_match():
    config = ExperimentConfig(nodes=60, subscriptions=10, publications=10)
    trace = _make_trace(config)
    with pytest.raises(ConfigurationError):
        run_sharded(config, trace, 2, mode="inline",
                    profile=ShardProfiler(3))


# -- the advisor's cuts actually help (ISSUE acceptance) ---------------------


def _skewed_config(**overrides) -> ExperimentConfig:
    """Flash-crowd-style skew: Zipf-2.0 selective ranges with high
    temporal locality concentrate rendezvous traffic on a few keys."""
    return ExperimentConfig(
        nodes=300, subscriptions=100, publications=250, seed=11,
        discretization_width=16, matcher="vector",
        workload=WorkloadSpec(
            selective_attributes=(0, 1), zipf_exponent=2.0,
            temporal_locality=0.9, constraint_probability=0.5,
        ),
        **overrides,
    )


def test_advisor_cuts_reduce_barrier_stalls_on_skewed_workload():
    config = _skewed_config()
    trace = _make_trace(config)
    profiler = ShardProfiler(8)
    baseline = run_sharded(
        config, trace, 8, mode="inline", profile=profiler
    )
    assert baseline.load_imbalance > 2.0  # the workload really is skewed

    cuts = profiler.suggest_partition()
    rebalanced = run_sharded(config, trace, 8, mode="inline", cuts=cuts)

    # Same simulated traffic — rebalancing only moves arc boundaries,
    # and per-node one-hop sends are partition-invariant.  (The full
    # behavior digest is *not* invariant: request-id residue classes
    # follow the shard a node lands on.)
    assert sum(rebalanced.load_by_shard) == sum(baseline.load_by_shard)
    assert sum(rebalanced.events_per_shard) == sum(baseline.events_per_shard)
    # Traffic-weighted cuts flatten the skew and idle fewer windows.
    assert rebalanced.load_imbalance < baseline.load_imbalance
    assert rebalanced.barrier_stalls < baseline.barrier_stalls


def test_imbalance_warning_becomes_structured_telemetry_record():
    config = _skewed_config()
    trace = _make_trace(config)
    telemetry = Telemetry()
    outcome = run_sharded(config, trace, 8, mode="inline",
                          telemetry=telemetry)
    assert outcome.load_imbalance > 2.0
    records = telemetry.load.shard_imbalances
    assert len(records) == 1
    record = records[0]
    assert record["scope"] == "shard"
    assert record["ratio"] == pytest.approx(outcome.load_imbalance)
    assert record["loads"] == list(outcome.load_by_shard)
    assert record["shard"] == outcome.load_by_shard.index(
        max(outcome.load_by_shard)
    )
    assert record["threshold"] == 2.0


# -- load_imbalance_ratio edge cases -----------------------------------------


def test_load_imbalance_ratio_single_shard_is_unity():
    assert load_imbalance_ratio([42]) == 1.0


def test_load_imbalance_ratio_zero_traffic_shard():
    # Median of [0, 10, 10] is 10 -> ratio 1.0 even with an idle shard;
    # a *majority*-idle ring (median 0) reports 0.0, not a div-by-zero.
    assert load_imbalance_ratio([10, 0, 10]) == 1.0
    assert load_imbalance_ratio([10, 0, 0]) == 0.0
