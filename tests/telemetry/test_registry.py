"""Unit tests for the metric registry and its instruments."""

from repro.telemetry import Telemetry, current, set_current
from repro.telemetry.registry import (
    MetricRegistry,
    NullRegistry,
    format_metric,
    metric_key,
)


def test_counter_get_or_create_and_inc():
    registry = MetricRegistry()
    a = registry.counter("network.dropped")
    b = registry.counter("network.dropped")
    assert a is b
    a.inc()
    a.inc(3)
    assert b.value == 4


def test_labeled_counters_are_distinct_instruments():
    registry = MetricRegistry()
    n1 = registry.counter("chord.table_patches", node=1)
    n2 = registry.counter("chord.table_patches", node=2)
    assert n1 is not n2
    n1.inc(2)
    n2.inc(5)
    assert registry.total("chord.table_patches") == 7


def test_gauge_explicit_and_supplier():
    registry = MetricRegistry()
    g = registry.gauge("depth")
    assert g.read() == 0.0
    g.set(3.5)
    assert g.read() == 3.5
    backing = [7.0]
    lazy = registry.gauge("lazy", supplier=lambda: backing[0])
    assert lazy.read() == 7.0
    backing[0] = 9.0
    assert lazy.read() == 9.0


def test_histogram_summary():
    registry = MetricRegistry()
    h = registry.histogram("delays")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    summary = h.summary()
    assert summary.count == 3
    assert summary.mean == 2.0
    assert h.count == 3
    assert h.values() == [1.0, 2.0, 3.0]


def test_snapshot_aggregates_labels_under_bare_name():
    registry = MetricRegistry()
    registry.counter("chord.table_rebuilds", node=1).inc(2)
    registry.counter("chord.table_rebuilds", node=2).inc(3)
    registry.gauge("sim.pending", supplier=lambda: 11.0)
    registry.histogram("matches").observe(1.0)
    sample = registry.snapshot()
    assert sample["chord.table_rebuilds"] == 5
    assert sample["sim.pending"] == 11.0
    assert sample["matches.count"] == 1


def test_metric_key_and_format():
    assert metric_key("x", {"b": 2, "a": 1}) == ("x", (("a", 1), ("b", 2)))
    assert format_metric("x", ()) == "x"
    assert format_metric("x", (("node", 7),)) == "x{node=7}"


def test_null_registry_hands_out_unregistered_instruments():
    registry = NullRegistry()
    c = registry.counter("n.dropped")
    c.inc(5)
    assert c.value == 5  # still counts for property views
    assert registry.total("n.dropped") == 0  # but nothing is indexed
    assert registry.snapshot() == {}
    assert registry.counter("n.dropped") is not c  # no shared state


def test_current_defaults_to_disabled_null_telemetry():
    telemetry = current()
    assert telemetry.enabled is False
    telemetry.sample(1.0)
    assert telemetry.samples == []


def test_set_current_installs_and_restores():
    mine = Telemetry()
    previous = set_current(mine)
    try:
        assert current() is mine
    finally:
        set_current(previous)
    assert current() is not mine
