"""Exporter tests: JSONL round-trip and Chrome trace-event structure."""

import json

from repro.telemetry import Telemetry
from repro.telemetry.export import (
    load_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _traced_telemetry() -> Telemetry:
    telemetry = Telemetry()
    tracer = telemetry.tracer
    root = tracer.begin_request(1, "publication", origin=1, now=0.0)
    hop = tracer.hop(root, 1, "publication", 1, 2, 0.0, 0.05)
    tracer.delivery(hop, 1, 2, 0.05)
    telemetry.registry.counter("network.dropped").inc(2)
    telemetry.registry.gauge("sim.pending", supplier=lambda: 4.0)
    telemetry.registry.histogram("matches").observe(3.0)
    telemetry.sample(0.0)
    telemetry.sample(1.0)
    return telemetry


def test_jsonl_round_trip(tmp_path):
    telemetry = _traced_telemetry()
    path = tmp_path / "out.jsonl"
    count = write_jsonl(telemetry, path)
    assert count == sum(1 for _ in open(path))
    dump = load_jsonl(path)
    assert dump.meta["format"] == "repro-telemetry"
    assert len(dump.spans) == 2
    assert dump.spans[0].status == "root"
    assert dump.deliveries == [(2, 1, 2, 0.05)]
    assert len(dump.samples) == 2
    assert dump.samples[1][1]["network.dropped"] == 2
    assert [c["value"] for c in dump.counters] == [2]
    assert [g["value"] for g in dump.gauges] == [4.0]
    assert dump.histograms[0]["count"] == 1


def test_chrome_trace_structure():
    telemetry = _traced_telemetry()
    trace = to_chrome_trace(telemetry)
    events = trace["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    flows = [e for e in events if e["ph"] in ("s", "f")]
    instants = [e for e in events if e["ph"] == "i"]
    counters = [e for e in events if e["ph"] == "C"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(slices) == 2  # root + hop
    assert len(flows) == 2  # one s/f pair for the hop
    assert len(instants) == 1  # the delivery
    assert counters  # sampled metrics
    assert any(e["name"] == "process_name" for e in meta)
    hop_slice = next(s for s in slices if s["args"]["span"] == 2)
    assert hop_slice["ts"] == 0.0
    assert hop_slice["dur"] == 50_000.0  # 0.05 s in microseconds
    assert hop_slice["tid"] == 1  # slices live on the source track
    finish = next(e for e in flows if e["ph"] == "f")
    assert finish["bp"] == "e"


def test_write_chrome_trace_is_valid_json(tmp_path):
    telemetry = _traced_telemetry()
    path = tmp_path / "out.trace.json"
    count = write_chrome_trace(telemetry, path)
    parsed = json.loads(path.read_text())
    assert len(parsed["traceEvents"]) == count
    assert parsed["displayTimeUnit"] == "ms"
