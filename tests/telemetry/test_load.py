"""Load observatory: meter behavior, export v3, parity, reporting.

The acceptance properties from the PR: (a) with the observatory
enabled on a Zipf-skewed workload, the report names the hot rendezvous
keys and their load share; (b) with it disabled, the run's behavior
fingerprint is bit-for-bit identical to an unmetered run (the
null-sink discipline).
"""

import json

import pytest

from repro.cli import main
from repro.core.system import RoutingMode
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.fingerprint import behavior_fingerprint
from repro.telemetry import Telemetry
from repro.telemetry.export import FORMAT_VERSION, load_jsonl, write_jsonl
from repro.telemetry.load import LoadMeter, MatchWork
from repro.telemetry.loadreport import build_load_report, render_load_report
from repro.workload.spec import WorkloadSpec


def zipf_config(**overrides):
    """A small run with skewed interest (hot rendezvous keys exist)."""
    defaults = dict(
        mapping="selective-attribute",
        routing=RoutingMode.MCAST,
        nodes=80,
        subscriptions=40,
        publications=40,
        workload=WorkloadSpec(
            selective_attributes=(0, 1),
            zipf_exponent=1.5,
            temporal_locality=0.8,
        ),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# -- LoadMeter unit behavior -------------------------------------------------


class TestLoadMeter:
    def test_transmit_and_deliver_attribute_to_nodes(self):
        meter = LoadMeter()
        meter.on_transmit(1)
        meter.on_transmit(1)
        meter.on_deliver(1)
        meter.on_deliver(2)
        assert meter.forwarded == {1: 2}
        assert meter.delivered == {1: 1, 2: 1}
        assert meter.node_loads() == {1: 3.0, 2: 1.0}

    def test_bucket_drain_tracks_count_and_max_depth(self):
        meter = LoadMeter()
        meter.on_bucket_drain(5, 3)
        meter.on_bucket_drain(5, 7)
        meter.on_bucket_drain(5, 2)
        assert meter.bucket_drains == {5: 3}
        assert meter.bucket_max_depth == {5: 7}

    def test_subscription_and_publication_key_attribution(self):
        meter = LoadMeter()
        meter.on_subscription_stored(1, [10, 11])
        meter.on_subscription_stored(2, [10])
        meter.on_publication(3, [10, 12])
        assert meter.subscriptions_stored == {1: 1, 2: 1}
        assert meter.key_subscriptions == {10: 2, 11: 1}
        assert meter.key_publications == {10: 1, 12: 1}
        assert meter.key_loads() == {10: 3.0, 11: 1.0, 12: 1.0}

    def test_match_work_handle_is_get_or_create(self):
        meter = LoadMeter()
        work = meter.match_work_for(9)
        assert isinstance(work, MatchWork)
        assert meter.match_work_for(9) is work

    def test_sample_snapshots_skew_and_runs_detector(self):
        meter = LoadMeter(overload_threshold=2.0)
        for _ in range(30):
            meter.on_transmit(1)
        meter.on_transmit(2)
        meter.on_transmit(3)
        meter.on_transmit(4)
        meter.sample(10.0)
        assert len(meter.skew_samples) == 1
        t, scopes = meter.skew_samples[0]
        assert t == 10.0
        assert scopes["node"].count == 4
        assert [event.node for event in meter.detector.events] == [1]

    def test_load_records_deterministic_and_complete(self):
        meter = LoadMeter()
        meter.on_transmit(2)
        meter.on_deliver(1)
        meter.on_subscription_stored(3, [7])
        meter.on_publication(1, [7])
        work = meter.match_work_for(3)
        work.candidates += 5
        work.matched += 1
        records = meter.load_records()
        nodes = [r for r in records if r["scope"] == "node"]
        keys = [r for r in records if r["scope"] == "key"]
        assert [r["id"] for r in nodes] == [1, 2, 3]
        assert [r["id"] for r in keys] == [7]
        assert keys[0]["subscriptions"] == 1
        assert keys[0]["publications"] == 1
        by_id = {r["id"]: r for r in nodes}
        assert by_id[2]["forwarded"] == 1
        assert by_id[1]["delivered"] == 1
        assert by_id[3]["match_candidates"] == 5


def test_telemetry_bundles_load_meter_only_when_enabled():
    assert isinstance(Telemetry().load, LoadMeter)
    assert Telemetry(enabled=False).load is None
    assert Telemetry(load_metering=False).load is None


# -- end-to-end: Zipf workload through the full stack ------------------------


@pytest.fixture(scope="module")
def zipf_run():
    telemetry = Telemetry()
    result = run_experiment(zipf_config(), telemetry=telemetry)
    return telemetry, result


@pytest.fixture(scope="module")
def zipf_telemetry(zipf_run):
    return zipf_run[0]


def test_enabled_run_populates_the_meter(zipf_telemetry):
    load = zipf_telemetry.load
    assert load is not None
    assert load.forwarded, "no forwarding attributed"
    assert load.delivered, "no deliveries attributed"
    assert load.subscriptions_stored, "no stored subscriptions attributed"
    assert load.key_subscriptions, "no per-key subscription load"
    assert load.key_publications, "no per-key publication load"
    assert load.bucket_drains, "no bucket drains observed"
    # The sim-clock sampling hook ran (24 periodic + initial + final).
    assert len(load.skew_samples) >= 2
    # Matcher work flowed through the attached handles.
    assert sum(w.candidates for w in load.match_work.values()) > 0
    assert sum(w.matched for w in load.match_work.values()) > 0


def test_forwarded_load_equals_recorded_sends(zipf_run):
    # Every one-hop send is charged to exactly one forwarding node, so
    # the meter's total must equal the recorder's send count.
    telemetry, result = zipf_run
    load = telemetry.load
    assert sum(load.forwarded.values()) == result.recorder.messages.total_sends()


def test_export_round_trips_load_records(zipf_telemetry, tmp_path):
    path = tmp_path / "zipf.jsonl"
    write_jsonl(zipf_telemetry, path)
    dump = load_jsonl(path)
    assert dump.meta["version"] == FORMAT_VERSION == 4
    load = zipf_telemetry.load
    assert len(dump.loads) == len(load.load_records())
    assert len(dump.skews) == 2 * len(load.skew_samples)  # node + key
    assert len(dump.overloads) == len(load.detector.events)
    scopes = {record["scope"] for record in dump.skews}
    assert scopes == {"node", "key"}


def test_report_names_hot_keys_with_load_share(zipf_telemetry, tmp_path):
    path = tmp_path / "zipf.jsonl"
    write_jsonl(zipf_telemetry, path)
    report = build_load_report(load_jsonl(path))
    keys = report["keys"]
    assert keys["count"] > 0 and keys["total_load"] > 0
    hottest = keys["top"][0]
    # The Zipf workload concentrates interest: the hottest key exists,
    # carries a positive share, and the section is sorted hot-first.
    assert hottest["load"] > 0 and 0 < hottest["share"] <= 1
    loads = [entry["load"] for entry in keys["top"]]
    assert loads == sorted(loads, reverse=True)
    rendered = render_load_report(report)
    assert f"key {hottest['id']}" in rendered
    assert "hot rendezvous keys" in rendered
    assert "gini" in rendered


def test_cli_report_load_mode(zipf_telemetry, tmp_path, capsys):
    path = tmp_path / "zipf.jsonl"
    write_jsonl(zipf_telemetry, path)
    artifact = tmp_path / "load-report.json"
    assert main(["report", str(path), "--json", str(artifact)]) == 0
    shown = capsys.readouterr().out
    assert "rendezvous load-skew report" in shown
    assert "hot nodes" in shown
    written = json.loads(artifact.read_text())
    assert written["nodes"]["top"] and written["keys"]["top"]


def test_cli_report_rejects_loadless_export(tmp_path, capsys):
    # A disabled-load export (or pre-v3 file) has no load records.
    telemetry = Telemetry(load_metering=False)
    run_experiment(zipf_config(subscriptions=5, publications=5),
                   telemetry=telemetry)
    path = tmp_path / "noload.jsonl"
    write_jsonl(telemetry, path)
    assert main(["report", str(path)]) == 2
    assert "no load records" in capsys.readouterr().err


def test_cli_stats_shows_load_rows(zipf_telemetry, tmp_path, capsys):
    path = tmp_path / "zipf.jsonl"
    write_jsonl(zipf_telemetry, path)
    main(["stats", str(path)])
    shown = capsys.readouterr().out
    assert "load records (nodes)" in shown
    assert "hottest rendezvous key" in shown


# -- the null-sink guarantee --------------------------------------------------


def test_disabled_and_enabled_runs_share_one_fingerprint():
    plain = run_experiment(zipf_config(seed=13))
    metered = run_experiment(zipf_config(seed=13), telemetry=Telemetry())
    unmetered = run_experiment(
        zipf_config(seed=13), telemetry=Telemetry(load_metering=False)
    )
    fp = behavior_fingerprint(plain.recorder)["sha256"]
    assert behavior_fingerprint(metered.recorder)["sha256"] == fp
    assert behavior_fingerprint(unmetered.recorder)["sha256"] == fp
