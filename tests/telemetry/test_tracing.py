"""Unit tests for span tracing and causal-tree reconstruction."""

from repro.telemetry.tracing import (
    DROPPED,
    LOST,
    ROOT,
    SENT,
    NullTracer,
    Span,
    Tracer,
    delivery_coverage,
    request_tree,
)


def test_root_and_hop_spans_link_causally():
    tracer = Tracer()
    root = tracer.begin_request(7, "publication", origin=10, now=0.0)
    first = tracer.hop(root, 7, "publication", 10, 20, 0.0, 0.05)
    second = tracer.hop(first, 7, "publication", 20, 30, 0.05, 0.10)
    spans = tracer.spans
    assert [s.id for s in spans] == [1, 2, 3]
    assert spans[0].status == ROOT
    assert spans[1].parent == root
    assert spans[2].parent == first
    assert spans[2].status == SENT
    assert second == 3


def test_mark_dropped_and_lost_status():
    tracer = Tracer()
    root = tracer.begin_request(1, "publication", origin=1, now=0.0)
    hop = tracer.hop(root, 1, "publication", 1, 2, 0.0, 0.05)
    tracer.mark_dropped(hop)
    assert tracer.spans[hop - 1].status == DROPPED
    lost = tracer.hop(root, 1, "publication", 1, 3, 0.0, None, status=LOST)
    assert tracer.spans[lost - 1].t_recv is None
    tracer.mark_dropped(0)  # disabled-trace id: must be a no-op
    tracer.mark_dropped(999)  # out of range: must be a no-op


def test_request_tree_reconstructs_mcast_fanout():
    tracer = Tracer()
    root = tracer.begin_request(5, "publication", origin=1, now=0.0)
    left = tracer.hop(root, 5, "publication", 1, 2, 0.0, 0.05)
    right = tracer.hop(root, 5, "publication", 1, 3, 0.0, 0.05)
    leaf = tracer.hop(left, 5, "publication", 2, 4, 0.05, 0.10)
    other = tracer.begin_request(6, "subscription", origin=9, now=0.0)
    roots, reachable = request_tree(tracer.spans, 5)
    assert roots == [root]
    assert reachable == {root, left, right, leaf}
    assert other not in reachable


def test_cross_request_parent_does_not_break_tree():
    # A notification root may point at a publication hop (another
    # request); within its own request it still counts as the root.
    tracer = Tracer()
    pub_root = tracer.begin_request(1, "publication", origin=1, now=0.0)
    pub_hop = tracer.hop(pub_root, 1, "publication", 1, 2, 0.0, 0.05)
    notify_root = tracer.begin_request(
        2, "notification", origin=2, now=0.05, parent=pub_hop
    )
    notify_hop = tracer.hop(notify_root, 2, "notification", 2, 3, 0.05, 0.10)
    roots, reachable = request_tree(tracer.spans, 2)
    assert roots == [notify_root]
    assert reachable == {notify_root, notify_hop}
    assert tracer.spans[notify_root - 1].parent == pub_hop


def test_delivery_coverage_detects_orphans():
    tracer = Tracer()
    root = tracer.begin_request(1, "publication", origin=1, now=0.0)
    hop = tracer.hop(root, 1, "publication", 1, 2, 0.0, 0.05)
    tracer.delivery(hop, 1, 2, 0.05)
    # Request 2: a delivery hanging off a parentless hop (orphan).
    orphan = tracer.hop(999, 2, "publication", 5, 6, 0.0, 0.05)
    tracer.delivery(orphan, 2, 6, 0.05)
    coverage = delivery_coverage(tracer.spans, tracer.deliveries)
    assert coverage[1] is True
    assert coverage[2] is False


def test_span_dict_round_trip():
    span = Span(3, 1, 9, "collect", 4, 5, 1.0, 1.05, SENT)
    clone = Span.from_dict(span.as_dict())
    assert clone.as_dict() == span.as_dict()


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert tracer.begin_request(1, "publication", 1, 0.0) == 0
    assert tracer.hop(0, 1, "publication", 1, 2, 0.0, 0.05) == 0
    tracer.mark_dropped(0)
    tracer.delivery(0, 1, 2, 0.05)
    assert tracer.spans == []
    assert tracer.deliveries == []
