"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.events import EventSpace
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def keyspace() -> KeySpace:
    """The paper's 13-bit key space."""
    return KeySpace(13)


@pytest.fixture
def small_space() -> EventSpace:
    """The Fig. 3 example space: 2 attributes, |Omega| = 8."""
    return EventSpace.uniform(("a1", "a2"), 8)


@pytest.fixture
def paper_space() -> EventSpace:
    """The Section 5.1 workload space: 4 attributes, values 0..10^6."""
    return EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)


def make_ring_ids(count: int, keyspace: KeySpace, seed: int = 1) -> list[int]:
    """Deterministic random node ids for a ring of the given size."""
    rng = random.Random(seed)
    return rng.sample(range(keyspace.size), count)


@pytest.fixture
def chord_200(sim: Simulator, keyspace: KeySpace) -> ChordOverlay:
    """A 200-node Chord ring with caching disabled (deterministic hops)."""
    overlay = ChordOverlay(sim, keyspace, cache_capacity=0)
    overlay.build_ring(make_ring_ids(200, keyspace))
    return overlay


@pytest.fixture
def pastry_200(sim: Simulator, keyspace: KeySpace) -> PastryOverlay:
    """A 200-node Pastry ring."""
    overlay = PastryOverlay(sim, keyspace)
    overlay.build_ring(make_ring_ids(200, keyspace))
    return overlay
