"""Edge behaviors of the system facade not covered elsewhere."""

import random

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.overlay.api import MessageKind, NeighborSide
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)


def build(config=None, n=80, seed=7, mapping="selective-attribute"):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(sim, overlay, make_mapping(mapping, SPACE, KS), config)
    return sim, system


def wide_subscription():
    return Subscription.build(
        SPACE, a1=(0, 50_000), a2=(0, 1_000_000),
        a3=(0, 1_000_000), a4=(0, 1_000_000),
    )


def test_unsubscribe_via_sequential_routing():
    sim, system = build(PubSubConfig(routing=RoutingMode.SEQUENTIAL))
    nodes = system.overlay.node_ids()
    sigma = wide_subscription()
    system.subscribe(nodes[0], sigma)
    sim.run()
    stored_before = sum(
        1 for n in nodes if sigma.subscription_id in system.node(n).store
    )
    assert stored_before > 0
    system.unsubscribe(nodes[0], sigma)
    sim.run()
    stored_after = sum(
        1 for n in nodes if sigma.subscription_id in system.node(n).store
    )
    assert stored_after == 0
    # The unsubscription request is accounted (it may cost zero hops if
    # the sole rendezvous happens to be the subscriber itself).
    assert (
        len(system.recorder.messages.requests_of_kind(MessageKind.UNSUBSCRIPTION))
        == 1
    )


def test_remove_node_stops_flush_timer():
    config = PubSubConfig(buffering=True, buffer_period=2.0)
    sim, system = build(config)
    victim = system.overlay.node_ids()[5]
    sim.run_until(1.0)
    pending_before = sim.pending
    system.remove_node(victim)
    # The victim's flush timer is cancelled: pending drops (its handle
    # is lazily discarded) and no callback for it ever fires again.
    sim.run_until(50.0)
    assert victim not in [n for n in system.overlay.node_ids()]
    assert pending_before >= 1


def test_flush_timer_created_for_late_joiner():
    config = PubSubConfig(buffering=True, buffer_period=2.0)
    sim, system = build(config)
    new_id = next(k for k in range(KS.size) if not system.overlay.is_alive(k))
    system.add_node(new_id)
    # The new node's buffer flushes periodically like everyone else's:
    # give it a buffered notification and watch it drain.
    node = system.node(new_id)
    from repro.core.payloads import Notification

    node.buffer.add(
        system.overlay.node_ids()[0],
        999,
        None,
        [Notification(event=SPACE.make_event(a1=1, a2=1, a3=1, a4=1),
                      subscription_id=999, matched_at=new_id)],
    )
    sim.run_until(sim.now + 10.0)
    assert len(node.buffer) == 0


def test_collect_direction_can_be_predecessor():
    """A batch whose agent lies counter-clockwise travels via PRED."""
    sim, system = build(
        PubSubConfig(buffering=True, collecting=True, buffer_period=1.0)
    )
    nodes = system.overlay.node_ids()
    node = system.node(nodes[10])
    keyspace = system.overlay.keyspace
    # Construct an agent key just behind this node (counter-clockwise).
    agent_key = (nodes[10] - 2 * (nodes[10] - nodes[9])) % keyspace.size
    from repro.core.payloads import Notification

    node.buffer.add(
        nodes[0],
        123,
        agent_key,
        [Notification(event=SPACE.make_event(a1=1, a2=1, a3=1, a4=1),
                      subscription_id=123, matched_at=node.id)],
    )
    node.flush()
    # run_until, not run(): flush timers keep the queue alive forever.
    sim.run_until(sim.now + 30.0)
    # The batch funnelled through at least one predecessor-side COLLECT
    # hop and ultimately reached the subscriber as a notification.
    assert system.recorder.messages.total_sends(MessageKind.COLLECT) >= 1
    assert system.recorder.notification_batches == 1


def test_attribute_split_event_attribute_three():
    """Mapping 1 with a non-default EK attribute still satisfies the
    intersection rule end to end."""
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(8).sample(range(KS.size), 60))
    mapping = make_mapping(
        "attribute-split", SPACE, KS, event_attribute=3
    )
    system = PubSubSystem(sim, overlay, mapping)
    got = []
    system.set_global_notify_handler(lambda nid, ns: got.extend(ns))
    nodes = overlay.node_ids()
    sigma = wide_subscription()
    system.subscribe(nodes[0], sigma)
    sim.run()
    system.publish(
        nodes[30], SPACE.make_event(a1=10, a2=10, a3=10, a4=999_000)
    )
    sim.run()
    assert len(got) == 1
