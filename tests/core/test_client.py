"""The client facade: disjunctions, dedup, unsubscription."""

import random

import pytest

from repro.core import EventSpace, PubSubSystem, Subscription
from repro.core.client import Disjunction, PubSubClient
from repro.core.mappings import make_mapping
from repro.errors import DataModelError
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)
KS = KeySpace(13)


def build(seed=5):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 100))
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", SPACE, KS)
    )
    return sim, system, overlay.node_ids()


def narrow(lo, hi, attr="a1"):
    full = {"a1": (0, 1_000_000), "a2": (0, 1_000_000),
            "a3": (0, 1_000_000), "a4": (0, 1_000_000)}
    full[attr] = (lo, hi)
    return Subscription.build(SPACE, **full)


def event(a1=0, a2=0, a3=0, a4=0):
    return SPACE.make_event(a1=a1, a2=a2, a3=a3, a4=a4)


def test_disjunction_validation():
    with pytest.raises(DataModelError):
        Disjunction(disjuncts=())
    d = Disjunction(disjuncts=(narrow(0, 10), narrow(20, 30)))
    assert d.matches(event(a1=5))
    assert d.matches(event(a1=25))
    assert not d.matches(event(a1=15))


def test_simple_subscribe_and_match():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, interest: got.append((e, interest)))
    sigma = narrow(100, 200)
    client.subscribe(sigma)
    sim.run()
    PubSubClient(system, nodes[50]).publish(event(a1=150))
    sim.run()
    assert len(got) == 1
    assert got[0][1] is sigma


def test_disjunction_notified_once_per_event():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, interest: got.append(interest))
    # Overlapping disjuncts: an event in the overlap matches both.
    disjunction = client.subscribe_any([narrow(100, 300), narrow(200, 400)])
    sim.run()
    client.publish(event(a1=250))  # inside both disjuncts
    sim.run()
    assert got == [disjunction]


def test_disjunction_covers_either_branch():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, interest: got.append(e.value("a1")))
    client.subscribe_any([narrow(0, 10), narrow(1000, 1010)])
    sim.run()
    publisher = PubSubClient(system, nodes[40])
    publisher.publish(event(a1=5))
    publisher.publish(event(a1=1005))
    publisher.publish(event(a1=500))  # matches neither
    sim.run()
    assert sorted(got) == [5, 1005]


def test_unsubscribe_any_removes_all_disjuncts():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, interest: got.append(e))
    disjunction = client.subscribe_any([narrow(0, 10), narrow(1000, 1010)])
    sim.run()
    client.unsubscribe_any(disjunction)
    sim.run()
    PubSubClient(system, nodes[40]).publish(event(a1=5))
    sim.run()
    assert got == []
    assert client.active_disjunctions == []


def test_plain_unsubscribe():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, interest: got.append(e))
    sigma = narrow(100, 200)
    client.subscribe(sigma)
    sim.run()
    client.unsubscribe(sigma)
    sim.run()
    PubSubClient(system, nodes[50]).publish(event(a1=150))
    sim.run()
    assert got == []
    assert client.active_subscriptions == []


def test_auto_renew_outlives_ttl():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, i: got.append(e))
    sigma = narrow(100, 200)
    client.subscribe(sigma, ttl=20.0, auto_renew=True)
    sim.run_until(100.0)  # five TTLs later: renewed four+ times
    PubSubClient(system, nodes[50]).publish(event(a1=150))
    sim.run_until(120.0)
    assert len(got) == 1


def test_without_renew_ttl_expires():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, i: got.append(e))
    client.subscribe(narrow(100, 200), ttl=20.0)
    sim.run_until(100.0)
    PubSubClient(system, nodes[50]).publish(event(a1=150))
    sim.run_until(120.0)
    assert got == []


def test_unsubscribe_cancels_renewal():
    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    got = []
    client.on_match(lambda e, i: got.append(e))
    sigma = narrow(100, 200)
    client.subscribe(sigma, ttl=20.0, auto_renew=True)
    sim.run_until(50.0)
    client.unsubscribe(sigma)
    sim.run_until(120.0)  # renewal timer must be dead
    PubSubClient(system, nodes[50]).publish(event(a1=150))
    sim.run_until(140.0)
    assert got == []


def test_auto_renew_requires_finite_ttl():
    import pytest as _pytest

    from repro.errors import DataModelError

    sim, system, nodes = build()
    client = PubSubClient(system, nodes[0])
    with _pytest.raises(DataModelError):
        client.subscribe(narrow(0, 1), auto_renew=True)  # no TTL anywhere


def test_multiple_clients_independent():
    sim, system, nodes = build()
    a = PubSubClient(system, nodes[0])
    b = PubSubClient(system, nodes[1])
    got_a, got_b = [], []
    a.on_match(lambda e, i: got_a.append(e))
    b.on_match(lambda e, i: got_b.append(e))
    a.subscribe(narrow(0, 10))
    b.subscribe(narrow(1000, 1010))
    sim.run()
    PubSubClient(system, nodes[50]).publish(event(a1=5))
    sim.run()
    assert len(got_a) == 1 and got_b == []
