"""Unit tests for the event data model."""

import pytest

from repro.core.events import Attribute, Event, EventSpace, hash_string_value
from repro.errors import DataModelError


def test_attribute_validation():
    attr = Attribute("price", 100)
    assert attr.validate_value(0) == 0
    assert attr.validate_value(99) == 99
    with pytest.raises(DataModelError):
        attr.validate_value(100)
    with pytest.raises(DataModelError):
        attr.validate_value(-1)


def test_attribute_invalid_definition():
    with pytest.raises(DataModelError):
        Attribute("x", 0)
    with pytest.raises(DataModelError):
        Attribute("", 10)


def test_uniform_space():
    space = EventSpace.uniform(("a", "b", "c"), 50)
    assert space.dimensions == 3
    assert all(attr.size == 50 for attr in space.attributes)


def test_duplicate_attribute_names_rejected():
    with pytest.raises(DataModelError):
        EventSpace((Attribute("a", 5), Attribute("a", 5)))


def test_empty_space_rejected():
    with pytest.raises(DataModelError):
        EventSpace(())


def test_index_of():
    space = EventSpace.uniform(("x", "y"), 10)
    assert space.index_of("x") == 0
    assert space.index_of("y") == 1
    with pytest.raises(DataModelError):
        space.index_of("z")


def test_make_event_and_access():
    space = EventSpace.uniform(("price", "volume"), 1000)
    event = space.make_event(price=10, volume=500)
    assert event.value("price") == 10
    assert event["volume"] == 500
    assert event.as_dict() == {"price": 10, "volume": 500}


def test_make_event_missing_value():
    space = EventSpace.uniform(("a", "b"), 10)
    with pytest.raises(DataModelError):
        space.make_event(a=1)


def test_make_event_unknown_attribute():
    space = EventSpace.uniform(("a",), 10)
    with pytest.raises(DataModelError):
        space.make_event(a=1, b=2)


def test_make_event_out_of_domain():
    space = EventSpace.uniform(("a",), 10)
    with pytest.raises(DataModelError):
        space.make_event(a=10)


def test_event_dimension_mismatch():
    space = EventSpace.uniform(("a", "b"), 10)
    with pytest.raises(DataModelError):
        Event(space=space, values=(1,))


def test_event_ids_unique():
    space = EventSpace.uniform(("a",), 10)
    e1 = space.make_event(a=1)
    e2 = space.make_event(a=1)
    assert e1.event_id != e2.event_id


def test_hash_string_value_stable_and_bounded():
    assert hash_string_value("IBM", 1000) == hash_string_value("IBM", 1000)
    assert 0 <= hash_string_value("anything", 7) < 7
    assert hash_string_value("IBM", 10**6) != hash_string_value("MSFT", 10**6)
