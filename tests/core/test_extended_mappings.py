"""The event-space-partition baseline and the hotspot-adaptive wrapper."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import Event, EventSpace
from repro.core.mappings import (
    HotspotAdaptiveMapping,
    SelectiveAttributeMapping,
    make_mapping,
)
from repro.core.mappings.adaptive import SplitMode
from repro.core.mappings.base import Discretization
from repro.core.mappings.event_space_partition import EventSpacePartitionMapping
from repro.core.subscriptions import Constraint, Subscription
from repro.errors import MappingError
from repro.overlay.ids import KeySpace

SPACE = EventSpace.uniform(("a1", "a2", "a3"), 1000)
KS = KeySpace(10)


@st.composite
def matching_pairs(draw):
    constraints = []
    values = []
    for attribute in range(3):
        low = draw(st.integers(0, 999))
        high = draw(st.integers(low, min(999, low + 120)))
        constraints.append(Constraint(attribute=attribute, low=low, high=high))
        values.append(draw(st.integers(low, high)))
    return (
        Subscription(space=SPACE, constraints=tuple(constraints)),
        Event(space=SPACE, values=tuple(values)),
    )


# -- event-space partitioning ------------------------------------------------

def test_esp_event_maps_to_single_cell_key():
    mapping = EventSpacePartitionMapping(SPACE, KS, cells_per_dimension=8)
    event = SPACE.make_event(a1=5, a2=500, a3=999)
    assert len(mapping.event_keys(event)) == 1
    # Deterministic across calls.
    assert mapping.event_keys(event) == mapping.event_keys(event)


def test_esp_subscription_covers_overlapping_cells():
    mapping = EventSpacePartitionMapping(SPACE, KS, cells_per_dimension=10)
    # Cells are 100 wide: a range [50, 250] overlaps cells 0, 1, 2.
    sigma = Subscription.build(SPACE, a1=(50, 250), a2=(0, 99), a3=(0, 99))
    keys = mapping.subscription_keys(sigma)
    assert 1 <= len(keys) <= 3  # 3 cells, possibly colliding hashes


def test_esp_groups_are_singletons():
    """Hashed cells are scattered: no contiguous collecting ranges."""
    mapping = EventSpacePartitionMapping(SPACE, KS, cells_per_dimension=10)
    sigma = Subscription.build(SPACE, a1=(0, 500), a2=(0, 500), a3=(0, 500))
    for group in mapping.subscription_key_groups(sigma):
        assert len(group) == 1


def test_esp_validation():
    with pytest.raises(MappingError):
        EventSpacePartitionMapping(SPACE, KS, cells_per_dimension=0)
    with pytest.raises(MappingError):
        EventSpacePartitionMapping(
            SPACE, KS, discretization=Discretization.uniform(3, 5)
        )


def test_esp_factory():
    mapping = make_mapping("event-space-partition", SPACE, KS)
    assert isinstance(mapping, EventSpacePartitionMapping)


@settings(max_examples=150, deadline=None)
@given(matching_pairs(), st.integers(2, 20))
def test_property_esp_intersection_rule(pair, cells):
    sigma, event = pair
    mapping = EventSpacePartitionMapping(SPACE, KS, cells_per_dimension=cells)
    assert mapping.event_keys(event) & mapping.subscription_keys(sigma)


# -- hotspot-adaptive wrapper -------------------------------------------------

def base_mapping():
    return SelectiveAttributeMapping(SPACE, KS)


def test_adaptive_identity_before_rebalance():
    base = base_mapping()
    adaptive = HotspotAdaptiveMapping(base)
    sigma = Subscription.build(SPACE, a1=(10, 20))
    event = SPACE.make_event(a1=15, a2=0, a3=0)
    assert adaptive.subscription_keys(sigma) == base.subscription_keys(sigma)
    assert adaptive.event_keys(event) == base.event_keys(event)
    assert adaptive.epoch == 0


def test_rebalance_splits_hot_keys():
    adaptive = HotspotAdaptiveMapping(base_mapping(), fan_out=4)
    split = adaptive.rebalance({42: 100, 7: 1}, hot_fraction=0.5)
    assert split == 1
    assert adaptive.epoch == 1
    assert 42 in adaptive.overrides
    assert 7 not in adaptive.overrides
    assert len(adaptive.siblings_of(42)) >= 2
    assert adaptive.siblings_of(7) == ()


def test_rebalance_is_incremental():
    adaptive = HotspotAdaptiveMapping(base_mapping())
    adaptive.rebalance({42: 100}, hot_fraction=1.0)
    # Already-split keys are not re-split; with nothing new, no epoch.
    assert adaptive.rebalance({42: 100}, hot_fraction=1.0) == 0
    assert adaptive.epoch == 1


def test_rebalance_validation():
    adaptive = HotspotAdaptiveMapping(base_mapping())
    with pytest.raises(MappingError):
        adaptive.rebalance({1: 1}, hot_fraction=0.0)
    with pytest.raises(MappingError):
        HotspotAdaptiveMapping(base_mapping(), fan_out=1)


def test_matching_split_spreads_event_load():
    adaptive = HotspotAdaptiveMapping(base_mapping(), fan_out=4)
    sigma = Subscription.build(SPACE, a1=(0, 0))  # everything on h(0) = key 0
    hot_key = next(iter(base_mapping().subscription_keys(sigma)))
    adaptive.rebalance({hot_key: 1000}, hot_fraction=1.0, mode=SplitMode.MATCHING)
    # Subscriptions go to ALL siblings under a matching split.
    assert set(adaptive.siblings_of(hot_key)) <= adaptive.subscription_keys(sigma)
    rng = random.Random(1)
    siblings = set(adaptive.siblings_of(hot_key))
    chosen = Counter()
    for _ in range(300):
        event = SPACE.make_event(a1=0, a2=rng.randrange(1000), a3=rng.randrange(1000))
        picked = adaptive.event_keys(event) & siblings
        assert picked, "event lost its hot-key rendezvous"
        for key in picked:
            chosen[key] += 1
    # The hot key's matching load now spreads over several siblings.
    assert sum(1 for k in siblings if chosen.get(k, 0) > 0) >= 3


def test_storage_split_spreads_subscription_load():
    adaptive = HotspotAdaptiveMapping(base_mapping(), fan_out=4)
    hot_key = 0  # h(0) for equality subscriptions on value 0
    adaptive.rebalance({hot_key: 1000}, hot_fraction=1.0, mode=SplitMode.STORAGE)
    siblings = set(adaptive.siblings_of(hot_key))
    rng = random.Random(2)
    chosen = Counter()
    for _ in range(200):
        # Distinct subscriptions, all hashing to the same hot key.
        sigma = Subscription.build(
            SPACE, a1=(0, 0), a2=(rng.randrange(900), 999)
        )
        picked = adaptive.subscription_keys(sigma) & siblings
        assert len(picked) == 1  # each subscription stored on ONE sibling
        chosen[next(iter(picked))] += 1
        # Events must visit every sibling to find them all.
        event = SPACE.make_event(a1=0, a2=950, a3=0)
        assert siblings <= adaptive.event_keys(event)
    assert sum(1 for k in siblings if chosen.get(k, 0) > 0) >= 3


def test_storage_split_choice_stable_for_same_content():
    adaptive = HotspotAdaptiveMapping(base_mapping(), fan_out=4)
    adaptive.rebalance({0: 10}, hot_fraction=1.0, mode=SplitMode.STORAGE)
    first = Subscription.build(SPACE, a1=(0, 0), a2=(5, 10))
    second = Subscription.build(SPACE, a1=(0, 0), a2=(5, 10))  # same content
    assert adaptive.subscription_keys(first) == adaptive.subscription_keys(second)


@settings(max_examples=150, deadline=None)
@given(
    matching_pairs(),
    st.integers(2, 6),
    st.sampled_from([SplitMode.STORAGE, SplitMode.MATCHING]),
)
def test_property_adaptive_preserves_intersection_rule(pair, fan_out, mode):
    sigma, event = pair
    adaptive = HotspotAdaptiveMapping(base_mapping(), fan_out=fan_out)
    # Split whatever keys this very pair uses — the adversarial case.
    for key in adaptive.base.subscription_keys(sigma) | adaptive.base.event_keys(event):
        adaptive.rebalance({key: 10}, hot_fraction=1.0, mode=mode)
    assert adaptive.event_keys(event) & adaptive.subscription_keys(sigma)


@settings(max_examples=80, deadline=None)
@given(matching_pairs())
def test_property_adaptive_ek_deterministic(pair):
    _, event = pair
    adaptive = HotspotAdaptiveMapping(base_mapping())
    adaptive.rebalance({k: 5 for k in adaptive.base.event_keys(event)}, 1.0)
    assert adaptive.event_keys(event) == adaptive.event_keys(event)
