"""PubSubSystem behavior: the full CB-pub/sub layer over a small ring."""

import random

import pytest

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.errors import ConfigurationError
from repro.overlay.api import MessageKind
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)
KS = KeySpace(13)


def build_system(mapping="selective-attribute", config=None, n=120, seed=5):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=32)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim, overlay, make_mapping(mapping, SPACE, KS), config
    )
    return sim, system


def full_subscription(**overrides):
    ranges = {
        "a1": (1000, 30000),
        "a2": (500_000, 530_000),
        "a3": (0, 1_000_000),
        "a4": (0, 1_000_000),
    }
    ranges.update(overrides)
    return Subscription.build(SPACE, **ranges)


MATCHING = dict(a1=2000, a2=510_000, a3=5, a4=999_999)
NON_MATCHING = dict(a1=999_000, a2=10, a3=5, a4=0)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PubSubConfig(collecting=True, buffering=False)
    with pytest.raises(ConfigurationError):
        PubSubConfig(buffer_period=0)
    with pytest.raises(ConfigurationError):
        PubSubConfig(replication_factor=-1)


def test_mismatched_keyspaces_rejected():
    sim = Simulator()
    overlay = ChordOverlay(sim, KeySpace(13))
    overlay.build_ring([1, 2])
    mapping = make_mapping("selective-attribute", SPACE, KeySpace(10))
    with pytest.raises(ConfigurationError):
        PubSubSystem(sim, overlay, mapping)


def test_publish_notifies_matching_subscriber_only():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.append((nid, ns)))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    system.publish(nodes[50], SPACE.make_event(**NON_MATCHING))
    sim.run()
    assert len(received) == 1
    node_id, notifications = received[0]
    assert node_id == nodes[3]
    assert notifications[0].subscription_id == sigma.subscription_id


def test_per_node_notify_handler():
    sim, system = build_system()
    nodes = system.overlay.node_ids()
    mine, other = [], []
    system.set_notify_handler(nodes[3], lambda nid, ns: mine.extend(ns))
    system.set_notify_handler(nodes[4], lambda nid, ns: other.extend(ns))
    system.subscribe(nodes[3], full_subscription())
    sim.run()
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert len(mine) == 1 and other == []


def test_multiple_subscribers_all_notified():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.append(nid))
    nodes = system.overlay.node_ids()
    subscribers = nodes[:5]
    for node in subscribers:
        system.subscribe(node, full_subscription())
    sim.run()
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert sorted(received) == sorted(subscribers)


def test_subscriber_can_be_its_own_rendezvous_and_publisher():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    node = system.overlay.node_ids()[0]
    system.subscribe(node, full_subscription())
    sim.run()
    system.publish(node, SPACE.make_event(**MATCHING))
    sim.run()
    assert len(received) == 1


def test_unsubscribe_stops_notifications():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    system.unsubscribe(nodes[3], sigma)
    sim.run()
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert received == []


def test_expired_subscription_not_notified():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[3], full_subscription(), ttl=10.0)
    sim.run()
    sim.run_until(20.0)
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert received == []


def test_notifications_deduplicated_at_subscriber():
    """Selective-Attribute can match the same subscription at several
    rendezvous nodes of one event; the application sees it once."""
    sim, system = build_system(
        config=PubSubConfig(routing=RoutingMode.UNICAST, dedupe_notifications=True)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    # A subscription with two equally-selective tiny constraints whose
    # key images coincide maximizes duplicate-match chances; use many
    # publications to make the assertion about uniqueness meaningful.
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    for _ in range(5):
        system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    seen = [(n.event.event_id, n.subscription_id) for n in received]
    assert len(seen) == len(set(seen))
    assert len(seen) == 5


def test_storage_accounting():
    sim, system = build_system(mapping="attribute-split")
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[0], full_subscription())
    sim.run()
    counts = system.subscriptions_per_node()
    stored_somewhere = sum(1 for v in counts.values() if v > 0)
    assert stored_somewhere > 5  # attribute-split spreads widely
    system.snapshot_storage()
    assert system.recorder.storage.max_per_node() >= 1


def test_request_kinds_accounted():
    sim, system = build_system()
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[0], full_subscription())
    sim.run()
    system.publish(nodes[1], SPACE.make_event(**MATCHING))
    sim.run()
    messages = system.recorder.messages
    assert messages.total_sends(MessageKind.SUBSCRIPTION) > 0
    assert messages.total_sends(MessageKind.PUBLICATION) > 0
    # The notification request exists; its hop count may be zero when
    # the rendezvous node happens to be the subscriber itself.
    notify_requests = messages.requests_of_kind(MessageKind.NOTIFICATION)
    assert len(notify_requests) == 1
    assert notify_requests[0].delivery_count == 1


def test_buffering_batches_notifications():
    config = PubSubConfig(buffering=True, buffer_period=5.0)
    sim, system = build_system(config=config)
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.append(list(ns)))
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[3], full_subscription())
    sim.run_until(1.0)
    for i in range(4):
        event = dict(MATCHING)
        event["a3"] = i  # distinct events
        system.publish(nodes[50], SPACE.make_event(**event))
    sim.run_until(30.0)
    # All four matches arrive, in strictly fewer batches than matches.
    total = sum(len(batch) for batch in received)
    assert total == 4
    assert len(received) < 4
    # Nothing is delivered before the first flush.
    batches_messages = system.recorder.messages.total_sends(MessageKind.NOTIFICATION)
    assert batches_messages < 4 * 2  # fewer, longer messages


def test_collecting_delivers_through_agent():
    config = PubSubConfig(buffering=True, collecting=True, buffer_period=2.0)
    sim, system = build_system(config=config, mapping="selective-attribute")
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[3], full_subscription())
    sim.run_until(1.0)
    for i in range(6):
        event = dict(MATCHING)
        event["a4"] = i
        system.publish(nodes[40 + i], SPACE.make_event(**event))
    sim.run_until(60.0)
    assert len(received) == 6
    # Collecting funnels matches through neighbor COLLECT hops.
    assert system.recorder.messages.total_sends(MessageKind.COLLECT) >= 0


def test_sequential_routing_end_to_end():
    sim, system = build_system(
        config=PubSubConfig(routing=RoutingMode.SEQUENTIAL)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[3], full_subscription())
    sim.run()
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert len(received) == 1
