"""Replication and churn: Section 4.1's fault-tolerance machinery."""

import random

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)
KS = KeySpace(13)

MATCHING = dict(a1=2000, a2=510_000, a3=5, a4=999_999)


def full_subscription():
    return Subscription.build(
        SPACE,
        a1=(1000, 30000),
        a2=(500_000, 530_000),
        a3=(0, 1_000_000),
        a4=(0, 1_000_000),
    )


def build_system(config=None, n=120, seed=5):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=32)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", SPACE, KS), config
    )
    return sim, system


def rendezvous_nodes(system, sigma):
    """Nodes currently storing the subscription."""
    return [
        node_id
        for node_id in system.overlay.node_ids()
        if sigma.subscription_id in system.node(node_id).store
    ]


def test_replicas_stored_on_successors():
    sim, system = build_system(PubSubConfig(replication_factor=2))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    assert holders
    for holder in holders:
        succ1 = system.overlay.successor_of(holder)
        assert sigma.subscription_id in system.node(succ1).replicas.get(holder, {})
        # The chain forwards under the *original* owner id.
        succ2 = system.overlay.successor_of(succ1)
        assert sigma.subscription_id in system.node(succ2).replicas.get(holder, {})


def test_crash_recovery_restores_delivery():
    sim, system = build_system(
        PubSubConfig(replication_factor=2, failure_detection_delay=0.2)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    victim = next(h for h in holders if h != nodes[3])
    system.crash_node(victim)
    sim.run_until(sim.now + 5.0)
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert len(received) >= 1


def test_crash_without_replication_loses_state():
    sim, system = build_system(PubSubConfig(replication_factor=0))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    for victim in list(holders):
        if victim != nodes[3]:
            system.crash_node(victim)
    sim.run_until(sim.now + 5.0)
    remaining = rendezvous_nodes(system, sigma)
    assert len(remaining) < len(holders)


def test_graceful_leave_transfers_state():
    sim, system = build_system()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    # Every rendezvous node except the subscriber leaves gracefully.
    for victim in holders:
        if victim != nodes[3] and len(system.overlay) > 2:
            system.remove_node(victim)
    sim.run()
    # State moved to the new owners of the rendezvous keys.
    keys = system.mapping.subscription_keys(sigma)
    new_holders = {system.overlay.owner_of(k) for k in keys}
    stored_at = set(rendezvous_nodes(system, sigma))
    assert stored_at & new_holders
    system.publish(nodes[50], SPACE.make_event(**MATCHING))
    sim.run()
    assert len(received) >= 1


def test_join_pulls_state_from_successor():
    sim, system = build_system(n=60, seed=9)
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    holder = holders[0]
    entry = system.node(holder).store.get(sigma.subscription_id)
    # Join a node that takes over one of the holder's stored keys.
    stolen_key = min(entry.keys_here)
    new_id = stolen_key  # node id == key: it will cover that key exactly
    if system.overlay.is_alive(new_id):
        return  # unlucky layout; covered by other seeds
    system.add_node(new_id)
    sim.run()
    assert sigma.subscription_id in system.node(new_id).store
    new_entry = system.node(new_id).store.get(sigma.subscription_id)
    assert stolen_key in new_entry.keys_here
    # The old holder no longer claims the stolen key.
    old_entry = system.node(holder).store.get(sigma.subscription_id)
    if old_entry is not None:
        assert stolen_key not in old_entry.keys_here


def test_unsubscribe_cleans_replicas():
    sim, system = build_system(PubSubConfig(replication_factor=1))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    holders = rendezvous_nodes(system, sigma)
    system.unsubscribe(nodes[3], sigma)
    sim.run()
    for holder in holders:
        successor = system.overlay.successor_of(holder)
        replicas = system.node(successor).replicas.get(holder, {})
        assert sigma.subscription_id not in replicas
