"""Payload dataclasses: snapshots, replication chains, immutability."""

import dataclasses

import pytest

from repro.core.events import EventSpace
from repro.core.payloads import (
    Notification,
    NotifyPayload,
    ReplicaPayload,
    ReplicaRemovePayload,
    StoredEntrySnapshot,
    SubscribePayload,
)
from repro.core.subscriptions import Subscription

SPACE = EventSpace.uniform(("a1",), 100)


def make_subscribe(ttl=None):
    return SubscribePayload(
        subscription=Subscription.build(SPACE, a1=(1, 5)),
        subscriber=9,
        ttl=ttl,
        groups=((1, 2),),
    )


def test_payloads_are_frozen():
    payload = make_subscribe()
    with pytest.raises(dataclasses.FrozenInstanceError):
        payload.subscriber = 10  # type: ignore[misc]


def test_snapshot_is_self_contained():
    payload = make_subscribe(ttl=30.0)
    snapshot = StoredEntrySnapshot(
        payload=payload, keys_here=(2, 1), expire_at=42.0
    )
    assert snapshot.payload.subscriber == 9
    assert snapshot.expire_at == 42.0
    assert snapshot.keys_here == (2, 1)


def test_replica_chain_decrement_semantics():
    snapshot = StoredEntrySnapshot(
        payload=make_subscribe(), keys_here=(1,), expire_at=None
    )
    first = ReplicaPayload(owner=5, entries=(snapshot,), remaining=3)
    second = ReplicaPayload(
        owner=first.owner, entries=first.entries, remaining=first.remaining - 1
    )
    assert second.remaining == 2
    assert second.owner == 5  # chain keeps the original owner


def test_replica_remove_defaults():
    removal = ReplicaRemovePayload(owner=5, subscription_id=77)
    assert removal.remaining == 1


def test_notification_carries_publish_time():
    event = SPACE.make_event(a1=3)
    notification = Notification(
        event=event, subscription_id=1, matched_at=4, published_at=12.5
    )
    batch = NotifyPayload(subscriber=9, notifications=(notification,))
    assert batch.notifications[0].published_at == 12.5
    assert batch.notifications[0].matched_at == 4
