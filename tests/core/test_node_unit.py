"""PubSubNode unit behaviors: dedup windows, churn extraction edges."""

import random

from repro.core import EventSpace, PubSubSystem, Subscription
from repro.core.mappings import make_mapping
from repro.core.node import SEEN_PUBLICATIONS_LIMIT
from repro.core.payloads import Notification, SubscribePayload
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2"), 1000)


def build(n=20, seed=6):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim, overlay, make_mapping("keyspace-split", SPACE, KS)
    )
    return sim, system


def test_fresh_notifications_dedupes_and_bounds():
    sim, system = build()
    node = system.node(system.overlay.node_ids()[0])
    event = SPACE.make_event(a1=1, a2=2)
    first = Notification(event=event, subscription_id=9, matched_at=0)
    duplicate = Notification(event=event, subscription_id=9, matched_at=5)
    assert node.fresh_notifications((first,)) == [first]
    assert node.fresh_notifications((duplicate,)) == []
    other = Notification(event=event, subscription_id=10, matched_at=0)
    assert node.fresh_notifications((other,)) == [other]
    # The window is bounded: old entries eventually fall out.
    for index in range(SEEN_PUBLICATIONS_LIMIT + 10):
        filler = Notification(
            event=SPACE.make_event(a1=index % 1000, a2=0),
            subscription_id=index,
            matched_at=0,
        )
        node.fresh_notifications((filler,))
    # The original pair has been evicted and would deliver again.
    assert node.fresh_notifications((first,)) == [first]


def test_extract_entries_for_range_partial_and_total():
    sim, system = build()
    node = system.node(system.overlay.node_ids()[0])
    sigma = Subscription.build(SPACE, a1=(0, 10))
    payload = SubscribePayload(
        subscription=sigma, subscriber=3, ttl=None, groups=((5, 6, 7),)
    )
    node.store.put(payload, {5, 6, 7}, now=0.0)
    # Move keys 5 and 6 only: the entry stays with key 7.
    moved = node.extract_entries_for_range((4, 6))
    assert len(moved) == 1
    assert moved[0].keys_here == (5, 6)
    remaining = node.store.get(sigma.subscription_id)
    assert remaining is not None and remaining.keys_here == {7}
    # Move the rest: the entry leaves the store entirely.
    moved = node.extract_entries_for_range((6, 7))
    assert moved[0].keys_here == (7,)
    assert sigma.subscription_id not in node.store


def test_extract_entries_ignores_out_of_range():
    sim, system = build()
    node = system.node(system.overlay.node_ids()[0])
    sigma = Subscription.build(SPACE, a1=(0, 10))
    payload = SubscribePayload(
        subscription=sigma, subscriber=3, ttl=None, groups=((100,),)
    )
    node.store.put(payload, {100}, now=0.0)
    assert node.extract_entries_for_range((200, 300)) == []
    assert sigma.subscription_id in node.store


def test_promote_replicas_skips_expired():
    sim, system = build()
    sim.run_until(100.0)
    node = system.node(system.overlay.node_ids()[0])
    sigma_live = Subscription.build(SPACE, a1=(0, 10))
    sigma_dead = Subscription.build(SPACE, a1=(20, 30))
    from repro.core.payloads import StoredEntrySnapshot

    node.replicas[42] = {
        sigma_live.subscription_id: StoredEntrySnapshot(
            payload=SubscribePayload(
                subscription=sigma_live, subscriber=1, ttl=None, groups=((1,),)
            ),
            keys_here=(1,),
            expire_at=None,
        ),
        sigma_dead.subscription_id: StoredEntrySnapshot(
            payload=SubscribePayload(
                subscription=sigma_dead, subscriber=1, ttl=None, groups=((2,),)
            ),
            keys_here=(2,),
            expire_at=50.0,  # already past at t=100
        ),
    }
    promoted = node.promote_replicas(42)
    assert [s.payload.subscription.subscription_id for s in promoted] == [
        sigma_live.subscription_id
    ]
    assert sigma_live.subscription_id in node.store
    assert sigma_dead.subscription_id not in node.store
    assert 42 not in node.replicas
