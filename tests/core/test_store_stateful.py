"""Model-based (stateful) testing of the rendezvous subscription store.

Hypothesis drives random interleavings of put / refresh / remove /
remove_keys / purge / clock-advance against a simple reference model
and checks the store agrees after every step — the kind of interleaving
bugs (expiry vs refresh vs partial key removal) example-based tests
miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.events import EventSpace
from repro.core.payloads import SubscribePayload
from repro.core.rendezvous import SubscriptionStore
from repro.core.subscriptions import Subscription

SPACE = EventSpace.uniform(("a1",), 1000)


def make_payload(low, high, ttl):
    return SubscribePayload(
        subscription=Subscription.build(SPACE, a1=(low, high)),
        subscriber=1,
        ttl=ttl,
        groups=((0,),),
    )


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = SubscriptionStore(SPACE, matcher="grid")
        self.now = 0.0
        # Model: sid -> (payload, keys, expire_at or None)
        self.model: dict[int, tuple] = {}
        self.payloads: list = []

    def _sync_expiry(self):
        """Purge both sides at the same instant.

        The store purges expired entries *lazily* (on match/access);
        the model must not be allowed to drift ahead or behind, so
        every rule synchronizes explicitly before acting.
        """
        self.store.purge_expired(self.now)
        self._expire_model()

    @rule(
        low=st.integers(0, 900),
        span=st.integers(0, 99),
        ttl=st.one_of(st.none(), st.floats(1.0, 50.0)),
        keys=st.sets(st.integers(0, 20), min_size=1, max_size=4),
    )
    def put_new(self, low, span, ttl, keys):
        self._sync_expiry()
        payload = make_payload(low, low + span, ttl)
        self.payloads.append(payload)
        self.store.put(payload, set(keys), self.now)
        expire_at = None if ttl is None else self.now + ttl
        self.model[payload.subscription.subscription_id] = (
            payload, set(keys), expire_at,
        )

    @rule(
        index=st.integers(0, 10**6),
        keys=st.sets(st.integers(0, 20), min_size=1, max_size=4),
    )
    def refresh_existing(self, index, keys):
        self._sync_expiry()
        if not self.payloads:
            return
        payload = self.payloads[index % len(self.payloads)]
        sid = payload.subscription.subscription_id
        self.store.put(payload, set(keys), self.now)
        expire_at = None if payload.ttl is None else self.now + payload.ttl
        if sid in self.model:
            _, old_keys, _ = self.model[sid]
            self.model[sid] = (payload, old_keys | set(keys), expire_at)
        else:
            self.model[sid] = (payload, set(keys), expire_at)

    @rule(index=st.integers(0, 10**6))
    def remove_existing(self, index):
        self._sync_expiry()
        if not self.payloads:
            return
        payload = self.payloads[index % len(self.payloads)]
        sid = payload.subscription.subscription_id
        removed = self.store.remove(sid)
        assert removed == (sid in self.model)
        self.model.pop(sid, None)

    @rule(
        index=st.integers(0, 10**6),
        keys=st.sets(st.integers(0, 20), min_size=1, max_size=3),
    )
    def remove_keys(self, index, keys):
        self._sync_expiry()
        if not self.payloads:
            return
        payload = self.payloads[index % len(self.payloads)]
        sid = payload.subscription.subscription_id
        self.store.remove_keys(sid, set(keys))
        if sid in self.model:
            entry_payload, model_keys, expire_at = self.model[sid]
            model_keys -= set(keys)
            if not model_keys:
                del self.model[sid]
            else:
                self.model[sid] = (entry_payload, model_keys, expire_at)

    @rule(delta=st.floats(0.1, 30.0))
    def advance_clock(self, delta):
        self.now += delta

    @rule()
    def purge(self):
        self.store.purge_expired(self.now)
        self._expire_model()

    def _expire_model(self):
        for sid in [
            s for s, (_, _, exp) in self.model.items()
            if exp is not None and self.now >= exp
        ]:
            del self.model[sid]

    def _live_model(self):
        return {
            sid: entry
            for sid, entry in self.model.items()
            if entry[2] is None or self.now < entry[2]
        }

    @invariant()
    def matching_agrees_with_model(self):
        live = self._live_model()
        for value in (0, 250, 500, 750, 999):
            event = SPACE.make_event(a1=value)
            got = {
                e.subscription.subscription_id
                for e in self.store.match(event, self.now)
            }
            expected = {
                sid
                for sid, (payload, _, _) in live.items()
                if payload.subscription.matches(event)
            }
            assert got == expected, (value, got, expected)

    @invariant()
    def key_sets_agree(self):
        live = self._live_model()
        for sid, (_, keys, _) in live.items():
            entry = self.store.get(sid)
            assert entry is not None
            assert entry.keys_here == keys


TestStoreStateful = StoreMachine.TestCase
TestStoreStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
