"""The rendezvous subscription store: idempotence, expiry, key tracking."""

import pytest

from repro.core.events import EventSpace
from repro.core.payloads import SubscribePayload
from repro.core.rendezvous import SubscriptionStore
from repro.core.subscriptions import Subscription

SPACE = EventSpace.uniform(("a1", "a2"), 1000)


def make_payload(low=10, high=20, subscriber=7, ttl=None):
    sigma = Subscription.build(SPACE, a1=(low, high))
    return SubscribePayload(
        subscription=sigma,
        subscriber=subscriber,
        ttl=ttl,
        groups=((1, 2, 3),),
    )


def test_put_and_match():
    store = SubscriptionStore(SPACE)
    payload = make_payload(10, 20)
    store.put(payload, {1}, now=0.0)
    assert len(store) == 1
    matched = store.match(SPACE.make_event(a1=15, a2=0), now=1.0)
    assert [e.subscriber for e in matched] == [7]
    assert store.match(SPACE.make_event(a1=25, a2=0), now=1.0) == []


def test_put_is_idempotent_and_merges_keys():
    store = SubscriptionStore(SPACE)
    payload = make_payload()
    store.put(payload, {1}, now=0.0)
    store.put(payload, {2}, now=0.0)
    assert len(store) == 1
    entry = store.get(payload.subscription.subscription_id)
    assert entry is not None and entry.keys_here == {1, 2}


def test_ttl_sets_expiry_and_refresh_restarts_clock():
    store = SubscriptionStore(SPACE)
    payload = make_payload(ttl=10.0)
    store.put(payload, {1}, now=0.0)
    entry = store.get(payload.subscription.subscription_id)
    assert entry.expire_at == 10.0
    store.put(payload, {1}, now=5.0)
    assert entry.expire_at == 15.0


def test_expired_entries_not_matched_and_purged():
    store = SubscriptionStore(SPACE)
    payload = make_payload(10, 20, ttl=10.0)
    store.put(payload, {1}, now=0.0)
    event = SPACE.make_event(a1=15, a2=0)
    assert store.match(event, now=9.9)
    assert store.match(event, now=10.0) == []
    assert len(store) == 0  # purged on access


def test_purge_expired_bulk():
    store = SubscriptionStore(SPACE)
    for i in range(5):
        store.put(make_payload(ttl=float(i + 1)), {1}, now=0.0)
    store.put(make_payload(ttl=None), {1}, now=0.0)
    assert store.purge_expired(now=3.5) == 3
    assert store.live_count(now=100.0) == 1  # only the never-expiring one


def test_remove():
    store = SubscriptionStore(SPACE)
    payload = make_payload()
    store.put(payload, {1}, now=0.0)
    sid = payload.subscription.subscription_id
    assert store.remove(sid)
    assert not store.remove(sid)
    assert sid not in store


def test_remove_keys_partial_and_full():
    store = SubscriptionStore(SPACE)
    payload = make_payload()
    store.put(payload, {1, 2, 3}, now=0.0)
    sid = payload.subscription.subscription_id
    store.remove_keys(sid, {1})
    assert store.get(sid).keys_here == {2, 3}
    store.remove_keys(sid, {2, 3})
    assert sid not in store


def test_remove_keys_unknown_subscription():
    store = SubscriptionStore(SPACE)
    assert store.remove_keys(999_999_999, {1}) is None


def test_snapshot_restore_roundtrip_preserves_expiry():
    store = SubscriptionStore(SPACE)
    payload = make_payload(ttl=50.0)
    entry = store.put(payload, {4, 5}, now=10.0)
    snapshot = entry.snapshot()
    other = SubscriptionStore(SPACE)
    restored = other.restore(snapshot)
    assert restored.expire_at == 60.0
    assert restored.keys_here == {4, 5}
    assert restored.subscriber == 7


def test_grid_matcher_backend():
    store = SubscriptionStore(SPACE, matcher="grid")
    payload = make_payload(10, 20)
    store.put(payload, {1}, now=0.0)
    assert store.match(SPACE.make_event(a1=15, a2=0), now=0.0)


def test_unknown_matcher_rejected():
    with pytest.raises(ValueError):
        SubscriptionStore(SPACE, matcher="magic")
