"""The three ak-mappings: Fig. 3 examples, cardinality analysis,
and the mapping intersection rule as a property over random pairs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import Event, EventSpace
from repro.core.mappings import (
    AttributeSplitMapping,
    KeySpaceSplitMapping,
    SelectiveAttributeMapping,
    make_mapping,
)
from repro.core.mappings.base import Discretization
from repro.core.subscriptions import Constraint, Subscription
from repro.errors import MappingError
from repro.overlay.ids import KeySpace

# The paper's Fig. 3 example: 2 attributes, |Omega| = 8, m = 4.
FIG3_SPACE = EventSpace.uniform(("a1", "a2"), 8)
FIG3_KS = KeySpace(4)
FIG3_SIGMA = Subscription.build(FIG3_SPACE, a1=(0, 1), a2=(4, 6))
FIG3_EVENT = FIG3_SPACE.make_event(a1=1, a2=6)


def test_factory_names():
    space, ks = FIG3_SPACE, FIG3_KS
    assert isinstance(
        make_mapping("attribute-split", space, ks), AttributeSplitMapping
    )
    assert isinstance(
        make_mapping("keyspace-split", space, ks), KeySpaceSplitMapping
    )
    assert isinstance(
        make_mapping("selective-attribute", space, ks), SelectiveAttributeMapping
    )
    with pytest.raises(ValueError):
        make_mapping("nope", space, ks)


# -- Fig. 3 worked example ---------------------------------------------------

def test_fig3_keyspace_split_matches_paper_exactly():
    """The paper works Mapping 2 through: SK = {0010, 0011}, EK = 0011."""
    mapping = KeySpaceSplitMapping(FIG3_SPACE, FIG3_KS)
    assert mapping.bits_per_attribute == 2
    assert sorted(mapping.subscription_keys(FIG3_SIGMA)) == [0b0010, 0b0011]
    assert mapping.event_keys(FIG3_EVENT) == frozenset({0b0011})


def test_fig3_attribute_split_scaling_hash():
    """With the paper's scaling hash h(x) = x*2^l/|Omega|, l = m = 4:
    H(a1 in [0,1]) = {h(0), h(1)} = {0, 2} and
    H(a2 in [4,6]) = {h(4), h(5), h(6)} = {8, 10, 12} (per-value images,
    exactly the structure of Fig. 3(b))."""
    mapping = AttributeSplitMapping(FIG3_SPACE, FIG3_KS)
    groups = mapping.subscription_key_groups(FIG3_SIGMA)
    assert groups == ((0, 2), (8, 10, 12))
    assert mapping.event_keys(FIG3_EVENT) == frozenset({2})  # h(1) = 2


def test_fig3_selective_attribute():
    mapping = SelectiveAttributeMapping(FIG3_SPACE, FIG3_KS)
    # a1 spans 2/8, a2 spans 3/8: a1 is the most selective.
    assert sorted(mapping.subscription_keys(FIG3_SIGMA)) == [0, 2]
    # EK maps by every attribute: h(1) = 2 and h(6) = 12.
    assert mapping.event_keys(FIG3_EVENT) == frozenset({2, 12})


def test_fig3_intersection_rule_all_mappings():
    for name in ("attribute-split", "keyspace-split", "selective-attribute"):
        mapping = make_mapping(name, FIG3_SPACE, FIG3_KS)
        assert mapping.check_intersection_rule(FIG3_EVENT, FIG3_SIGMA)


# -- cardinality analysis (Section 4.2 / 5.2) --------------------------------

PAPER_SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)
PAPER_KS = KeySpace(13)


def paper_subscription(spans=(30000, 30000, 30000, 30000), starts=None):
    starts = starts or (0, 100_000, 200_000, 300_000)
    constraints = tuple(
        Constraint(attribute=i, low=start, high=start + span - 1)
        for i, (start, span) in enumerate(zip(starts, spans))
    )
    return Subscription(space=PAPER_SPACE, constraints=constraints)


def test_attribute_split_key_count_formula():
    """|SK| ~ sum_i ceil(r_i * 2^m / |Omega_i|)."""
    mapping = AttributeSplitMapping(PAPER_SPACE, PAPER_KS)
    sigma = paper_subscription()
    keys = mapping.subscription_keys(sigma)
    expected = sum((30000 * (1 << 13)) // 1_000_001 + 1 for _ in range(4))
    assert abs(len(keys) - expected) <= 4


def test_event_key_counts_per_mapping():
    event = PAPER_SPACE.make_event(a1=10, a2=500_000, a3=999_999, a4=123_456)
    assert len(AttributeSplitMapping(PAPER_SPACE, PAPER_KS).event_keys(event)) == 1
    assert len(KeySpaceSplitMapping(PAPER_SPACE, PAPER_KS).event_keys(event)) == 1
    # Mapping 3: one key per attribute (d = 4), modulo hash collisions.
    sa_keys = SelectiveAttributeMapping(PAPER_SPACE, PAPER_KS).event_keys(event)
    assert 1 <= len(sa_keys) <= 4


def test_selective_attribute_uses_min_selectivity():
    mapping = SelectiveAttributeMapping(PAPER_SPACE, PAPER_KS)
    sigma = paper_subscription(spans=(30000, 900, 30000, 30000))
    groups = mapping.subscription_key_groups(sigma)
    assert len(groups) == 1
    # 900-value range maps to about 900 * 8192 / 1e6 ~ 7 keys.
    assert 1 <= len(groups[0]) <= 9


def test_keyspace_split_slightly_over_one_key():
    """Section 5.2: under the paper's workload each subscription maps
    to 'slightly over one' key in Mapping 2."""
    mapping = KeySpaceSplitMapping(PAPER_SPACE, PAPER_KS)
    assert mapping.bits_per_attribute == 3
    sigma = paper_subscription()  # 3% ranges
    keys = mapping.subscription_keys(sigma)
    assert 1 <= len(keys) <= 4


def test_keyspace_split_keys_spread_with_shift():
    """Concatenations occupy the top bits: d*l = 12 of m = 13, so all
    keys are even — spread over the whole ring rather than packed into
    its bottom half."""
    mapping = KeySpaceSplitMapping(PAPER_SPACE, PAPER_KS)
    event = PAPER_SPACE.make_event(a1=999_999, a2=999_999, a3=999_999, a4=999_999)
    (key,) = mapping.event_keys(event)
    assert key % 2 == 0
    assert key >= PAPER_KS.size // 2  # high attribute values land high


def test_keyspace_split_rejects_too_many_dimensions():
    wide = EventSpace.uniform(tuple(f"a{i}" for i in range(20)), 100)
    with pytest.raises(MappingError):
        KeySpaceSplitMapping(wide, KeySpace(13))


def test_selective_attribute_rejects_empty_subscription():
    mapping = SelectiveAttributeMapping(PAPER_SPACE, PAPER_KS)
    with pytest.raises(MappingError):
        mapping.subscription_key_groups(
            Subscription(space=PAPER_SPACE, constraints=())
        )


def test_partial_subscription_costs():
    """Section 4.2: Selective-Attribute is least sensitive to partially
    defined subscriptions; the others must cover unconstrained
    attributes in full."""
    sigma = Subscription.build(PAPER_SPACE, a1=(0, 899))
    sa = SelectiveAttributeMapping(PAPER_SPACE, PAPER_KS)
    as_ = AttributeSplitMapping(PAPER_SPACE, PAPER_KS)
    assert len(sa.subscription_keys(sigma)) < 20
    # Attribute-split: three full-domain attributes => nearly all keys.
    assert len(as_.subscription_keys(sigma)) > PAPER_KS.size // 2


def test_event_attribute_configurable_for_attribute_split():
    mapping = AttributeSplitMapping(PAPER_SPACE, PAPER_KS, event_attribute=2)
    event = PAPER_SPACE.make_event(a1=0, a2=0, a3=500_000, a4=0)
    (key,) = mapping.event_keys(event)
    assert key == (500_000 << 13) // 1_000_001
    with pytest.raises(MappingError):
        AttributeSplitMapping(PAPER_SPACE, PAPER_KS, event_attribute=7)


# -- the mapping intersection rule as a property ------------------------------

PROP_SPACE = EventSpace.uniform(("a1", "a2", "a3"), 1000)
PROP_KS = KeySpace(10)


@st.composite
def matching_pairs(draw):
    """A (subscription, event) pair with e in sigma by construction."""
    constraints = []
    values = []
    for attribute in range(3):
        constrained = draw(st.booleans())
        low = draw(st.integers(0, 999))
        high = draw(st.integers(low, min(999, low + draw(st.integers(0, 120)))))
        if constrained:
            constraints.append(Constraint(attribute=attribute, low=low, high=high))
            values.append(draw(st.integers(low, high)))
        else:
            values.append(draw(st.integers(0, 999)))
    if not constraints:
        constraints.append(Constraint(attribute=0, low=0, high=999))
    sigma = Subscription(space=PROP_SPACE, constraints=tuple(constraints))
    event = Event(space=PROP_SPACE, values=tuple(values))
    return sigma, event


@settings(max_examples=200, deadline=None)
@given(matching_pairs(), st.sampled_from(
    ["attribute-split", "keyspace-split", "selective-attribute"]
))
def test_property_intersection_rule(pair, name):
    sigma, event = pair
    mapping = make_mapping(name, PROP_SPACE, PROP_KS)
    assert sigma.matches(event)
    assert mapping.event_keys(event) & mapping.subscription_keys(sigma)


@settings(max_examples=100, deadline=None)
@given(
    matching_pairs(),
    st.sampled_from(["attribute-split", "keyspace-split", "selective-attribute"]),
    st.integers(1, 50),
)
def test_property_intersection_rule_with_discretization(pair, name, width):
    """Section 4.3.3: discretization preserves the intersection rule for
    any interval width because events and ranges quantize identically."""
    sigma, event = pair
    mapping = make_mapping(
        name, PROP_SPACE, PROP_KS, discretization=Discretization.uniform(3, width)
    )
    assert mapping.event_keys(event) & mapping.subscription_keys(sigma)


@settings(max_examples=100, deadline=None)
@given(matching_pairs())
def test_property_keys_within_keyspace(pair):
    sigma, event = pair
    for name in ("attribute-split", "keyspace-split", "selective-attribute"):
        mapping = make_mapping(name, PROP_SPACE, PROP_KS)
        for key in mapping.subscription_keys(sigma) | mapping.event_keys(event):
            assert 0 <= key < PROP_KS.size


@settings(max_examples=60, deadline=None)
@given(matching_pairs(), st.integers(2, 100))
def test_property_discretization_never_increases_keys(pair, width):
    sigma, _ = pair
    for name in ("attribute-split", "selective-attribute"):
        plain = make_mapping(name, PROP_SPACE, PROP_KS)
        coarse = make_mapping(
            name,
            PROP_SPACE,
            PROP_KS,
            discretization=Discretization.uniform(3, width),
        )
        assert len(coarse.subscription_keys(sigma)) <= len(
            plain.subscription_keys(sigma)
        )
