"""String attributes (paper footnote 2): hashed equality end to end."""

import random

import pytest

from repro.core import (
    Attribute,
    EventSpace,
    PubSubSystem,
    Subscription,
)
from repro.core.events import hash_string_value
from repro.core.mappings import make_mapping
from repro.errors import DataModelError
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

DOMAIN = 1_000_001
SPACE = EventSpace(
    (
        Attribute("topic", DOMAIN, kind="string"),
        Attribute("price", DOMAIN),
    )
)


def test_attribute_kind_validation():
    with pytest.raises(DataModelError):
        Attribute("x", 10, kind="float")
    assert Attribute("t", 10, kind="string").is_string
    assert not Attribute("n", 10).is_string


def test_coerce_string_and_int():
    topic = SPACE.attributes[0]
    hashed = topic.coerce("sports")
    assert hashed == hash_string_value("sports", DOMAIN)
    assert topic.coerce(hashed) == hashed  # numeric form passes through
    price = SPACE.attributes[1]
    with pytest.raises(DataModelError):
        price.coerce("not-a-number")


def test_validate_rejects_non_int():
    with pytest.raises(DataModelError):
        SPACE.attributes[1].validate_value(3.5)  # type: ignore[arg-type]
    with pytest.raises(DataModelError):
        SPACE.attributes[1].validate_value(True)  # bools are not values


def test_make_event_with_string_value():
    event = SPACE.make_event(topic="sports", price=100)
    assert event.value("topic") == hash_string_value("sports", DOMAIN)
    assert event.value("price") == 100


def test_build_equality_on_string():
    sigma = Subscription.build(SPACE, topic="sports")
    assert sigma.matches(SPACE.make_event(topic="sports", price=5))
    assert not sigma.matches(SPACE.make_event(topic="politics", price=5))


def test_range_on_string_rejected():
    with pytest.raises(DataModelError):
        Subscription.build(SPACE, topic=("a", "z"))  # type: ignore[arg-type]
    with pytest.raises(DataModelError):
        Subscription.build(SPACE, topic=(0, 10))


def test_string_topic_end_to_end():
    """A topic-style subscription over the full stack: exactly the
    'topic' selective-equality case Section 4.2 motivates Mapping 3 with."""
    sim = Simulator()
    keyspace = KeySpace(13)
    overlay = ChordOverlay(sim, keyspace)
    overlay.build_ring(random.Random(3).sample(range(keyspace.size), 100))
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", SPACE, keyspace)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = overlay.node_ids()
    sigma = Subscription.build(SPACE, topic="sports", price=(0, DOMAIN - 1))
    system.subscribe(nodes[2], sigma)
    sim.run()
    # An equality constraint maps the subscription to a single key.
    assert len(system.mapping.subscription_keys(sigma)) == 1
    system.publish(nodes[50], SPACE.make_event(topic="sports", price=123))
    system.publish(nodes[50], SPACE.make_event(topic="weather", price=123))
    sim.run()
    assert len(received) == 1
    assert received[0].subscription_id == sigma.subscription_id
