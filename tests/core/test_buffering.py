"""Notification buffer and collecting-agent helpers."""

from repro.core.buffering import NotificationBuffer, agent_key_for
from repro.core.events import EventSpace
from repro.core.payloads import Notification

SPACE = EventSpace.uniform(("a1",), 100)


def note(sid=1):
    return Notification(
        event=SPACE.make_event(a1=5), subscription_id=sid, matched_at=0
    )


def test_add_and_drain():
    buffer = NotificationBuffer()
    buffer.add(7, 1, None, [note(1)])
    buffer.add(7, 1, None, [note(1)])
    buffer.add(8, 2, None, [note(2)])
    assert buffer.pending_notifications == 3
    batches = buffer.drain()
    assert len(batches) == 2
    by_key = {(b.subscriber, b.subscription_id): b for b in batches}
    assert len(by_key[(7, 1)].notifications) == 2
    assert len(by_key[(8, 2)].notifications) == 1
    assert buffer.drain() == []
    assert len(buffer) == 0


def test_batches_keyed_per_subscriber_and_subscription():
    buffer = NotificationBuffer()
    buffer.add(7, 1, None, [note(1)])
    buffer.add(7, 2, None, [note(2)])
    assert len(buffer) == 2


def test_agent_key_upgrades_from_none():
    buffer = NotificationBuffer()
    buffer.add(7, 1, None, [note()])
    buffer.add(7, 1, 42, [note()])
    (batch,) = buffer.drain()
    assert batch.agent_key == 42


def test_agent_key_for_middle_of_group():
    groups = ((10, 11, 12, 13, 14), (50, 51))
    assert agent_key_for(groups, 11) == 12
    assert agent_key_for(groups, 14) == 12
    assert agent_key_for(groups, 50) == 51


def test_agent_key_for_missing_key_falls_back():
    assert agent_key_for(((1, 2),), 99) == 99


def test_empty_batches_not_drained():
    buffer = NotificationBuffer()
    buffer.add(7, 1, None, [])
    assert buffer.drain() == []
