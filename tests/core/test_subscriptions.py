"""Unit + property tests for subscriptions and matching semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.events import EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.errors import DataModelError

SPACE = EventSpace.uniform(("a1", "a2", "a3"), 100)


def test_constraint_validation():
    c = Constraint(attribute=0, low=5, high=10)
    assert c.span == 6
    assert c.satisfies(5) and c.satisfies(10) and c.satisfies(7)
    assert not c.satisfies(4) and not c.satisfies(11)
    with pytest.raises(DataModelError):
        Constraint(attribute=0, low=10, high=5)
    with pytest.raises(DataModelError):
        Constraint(attribute=0, low=-1, high=5)


def test_equality_constraint():
    c = Constraint(attribute=0, low=7, high=7)
    assert c.span == 1
    assert c.satisfies(7) and not c.satisfies(8)


def test_selectivity():
    c = Constraint(attribute=0, low=0, high=9)
    assert c.selectivity(100) == 0.1


def test_build_convenience():
    sigma = Subscription.build(SPACE, a1=(0, 10), a3=55)
    assert len(sigma.constraints) == 2
    equality = sigma.constraint_on(2)
    assert equality is not None and equality.low == equality.high == 55
    assert sigma.is_partial


def test_constraint_outside_space_rejected():
    with pytest.raises(DataModelError):
        Subscription(space=SPACE, constraints=(Constraint(attribute=5, low=0, high=1),))


def test_constraint_value_outside_domain_rejected():
    with pytest.raises(DataModelError):
        Subscription.build(SPACE, a1=(0, 100))


def test_duplicate_constraints_rejected():
    with pytest.raises(DataModelError):
        Subscription(
            space=SPACE,
            constraints=(
                Constraint(attribute=0, low=0, high=1),
                Constraint(attribute=0, low=2, high=3),
            ),
        )


def test_effective_constraint_defaults_to_full_domain():
    sigma = Subscription.build(SPACE, a1=(10, 20))
    effective = sigma.effective_constraint(1)
    assert (effective.low, effective.high) == (0, 99)
    explicit = sigma.effective_constraint(0)
    assert (explicit.low, explicit.high) == (10, 20)


def test_most_selective_attribute():
    sigma = Subscription.build(SPACE, a1=(0, 50), a2=(10, 12), a3=(0, 99))
    assert sigma.most_selective_attribute() == 1


def test_most_selective_tie_breaks_low_index():
    sigma = Subscription.build(SPACE, a1=(0, 4), a2=(10, 14))
    assert sigma.most_selective_attribute() == 0


def test_most_selective_requires_constraints():
    sigma = Subscription(space=SPACE, constraints=())
    with pytest.raises(DataModelError):
        sigma.most_selective_attribute()


def test_matching_conjunction():
    sigma = Subscription.build(SPACE, a1=(0, 10), a2=(50, 60))
    assert sigma.matches(SPACE.make_event(a1=5, a2=55, a3=0))
    assert not sigma.matches(SPACE.make_event(a1=5, a2=61, a3=0))
    assert not sigma.matches(SPACE.make_event(a1=11, a2=55, a3=0))


def test_partial_subscription_ignores_unconstrained():
    sigma = Subscription.build(SPACE, a2=(50, 60))
    assert sigma.matches(SPACE.make_event(a1=99, a2=55, a3=99))


def test_empty_subscription_matches_everything():
    sigma = Subscription(space=SPACE, constraints=())
    assert sigma.matches(SPACE.make_event(a1=1, a2=2, a3=3))


def test_subscription_ids_unique():
    s1 = Subscription.build(SPACE, a1=(0, 1))
    s2 = Subscription.build(SPACE, a1=(0, 1))
    assert s1.subscription_id != s2.subscription_id


# -- properties -------------------------------------------------------------

values = st.integers(0, 99)


@st.composite
def subscriptions(draw):
    constraints = []
    for attribute in range(3):
        if draw(st.booleans()):
            low = draw(values)
            high = draw(st.integers(low, 99))
            constraints.append(Constraint(attribute=attribute, low=low, high=high))
    return Subscription(space=SPACE, constraints=tuple(constraints))


@given(subscriptions(), values, values, values)
def test_property_matching_is_per_attribute_conjunction(sigma, v1, v2, v3):
    event = SPACE.make_event(a1=v1, a2=v2, a3=v3)
    expected = all(
        c.satisfies(event.values[c.attribute]) for c in sigma.constraints
    )
    assert sigma.matches(event) == expected


@given(subscriptions())
def test_property_event_inside_ranges_always_matches(sigma):
    event_values = []
    for attribute in range(3):
        constraint = sigma.constraint_on(attribute)
        event_values.append(constraint.low if constraint else 0)
    event = SPACE.make_event(
        a1=event_values[0], a2=event_values[1], a3=event_values[2]
    )
    assert sigma.matches(event)
