"""Smoke-run the fast examples (the slow ones are exercised manually;
all example outputs are recorded in the repository discussion docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "message accounting" in out
    assert "notified" in out


@pytest.mark.skipif(sys.platform == "win32", reason="posix-only timing")
def test_news_alerts_runs(capsys):
    run_example("news_alerts.py")
    out = capsys.readouterr().out
    assert "disjunction dedup" in out
    assert "lease lapsed" in out
