"""Acceptance tests for the unified telemetry layer.

The headline property (from the PR's acceptance criteria): a traced run
produces a span graph from which every publication's m-cast tree can be
reconstructed end to end — each application delivery walks back to the
request's root span.  Also pinned here: enabling telemetry must not
perturb the simulation itself (recorder metrics identical bit for bit).
"""

from repro.cli import main
from repro.core.system import RoutingMode
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.overlay.api import MessageKind
from repro.telemetry import Telemetry
from repro.telemetry.export import load_jsonl, write_jsonl
from repro.telemetry.tracing import ROOT, delivery_coverage, request_tree
from repro.workload.spec import WorkloadSpec


def small_config(**overrides):
    defaults = dict(
        mapping="selective-attribute",
        routing=RoutingMode.MCAST,
        nodes=80,
        subscriptions=30,
        publications=30,
        workload=WorkloadSpec(subscription_ttl=None),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_every_delivery_reachable_from_its_root():
    telemetry = Telemetry()
    run_experiment(small_config(), telemetry=telemetry)
    tracer = telemetry.tracer
    assert tracer.spans, "traced run recorded no spans"
    assert tracer.deliveries, "traced run recorded no deliveries"
    coverage = delivery_coverage(tracer.spans, tracer.deliveries)
    assert coverage, "no request had deliveries"
    incomplete = [rid for rid, ok in coverage.items() if not ok]
    assert not incomplete, f"orphaned deliveries in requests {incomplete}"


def test_publication_mcast_tree_reconstructs():
    # At least one publication must fan out to several rendezvous nodes
    # (selective-attribute maps each event to d=4 keys) and its whole
    # tree must hang off the single root span.
    telemetry = Telemetry()
    run_experiment(small_config(), telemetry=telemetry)
    tracer = telemetry.tracer
    pub_requests = {
        s.request_id for s in tracer.spans if s.kind == "publication"
    }
    fanned_out = 0
    for request_id in pub_requests:
        roots, reachable = request_tree(tracer.spans, request_id)
        assert len(roots) == 1, "publication must have exactly one root"
        delivered = [d for d in tracer.deliveries if d[1] == request_id]
        if len(delivered) >= 2:
            fanned_out += 1
            for span_id, _, _, _ in delivered:
                assert span_id in reachable
    assert fanned_out > 0, "no publication reached multiple nodes"


def test_notification_roots_chain_to_publication_hops():
    telemetry = Telemetry()
    run_experiment(small_config(), telemetry=telemetry)
    spans = telemetry.tracer.spans
    by_id = {s.id: s for s in spans}
    notify_roots = [
        s for s in spans if s.kind == "notification" and s.status == ROOT
    ]
    assert notify_roots, "run produced no notifications"
    chained = [s for s in notify_roots if s.parent != 0]
    assert chained, "no notification chained to its publication"
    for span in chained:
        parent = by_id[span.parent]
        assert parent.kind == "publication"


def test_enabled_telemetry_does_not_perturb_the_run():
    baseline = run_experiment(small_config(seed=11))
    traced = run_experiment(small_config(seed=11), telemetry=Telemetry())
    assert baseline.sub_hops == traced.sub_hops
    assert baseline.pub_hops == traced.pub_hops
    assert baseline.notify_hops == traced.notify_hops
    assert baseline.notification_messages == traced.notification_messages
    assert (
        baseline.max_subscriptions_per_node
        == traced.max_subscriptions_per_node
    )
    assert baseline.notification_delay == traced.notification_delay
    base_msgs = baseline.recorder.messages
    traced_msgs = traced.recorder.messages
    for kind in MessageKind:
        assert base_msgs.total_sends(kind) == traced_msgs.total_sends(kind)


def test_span_counts_match_recorder_sends():
    # Every recorded one-hop send must have exactly one non-root span.
    telemetry = Telemetry()
    result = run_experiment(small_config(), telemetry=telemetry)
    hop_spans = [s for s in telemetry.tracer.spans if s.status != ROOT]
    assert len(hop_spans) == result.recorder.messages.total_sends()


def test_registry_samples_carry_sim_time_axis():
    telemetry = Telemetry()
    run_experiment(small_config(), telemetry=telemetry)
    times = [t for t, _ in telemetry.samples]
    assert times == sorted(times)
    assert times[0] == 0.0
    assert times[-1] > 0.0
    # Kernel gauges appear in samples without touching the hot loops.
    assert "sim.events_processed" in telemetry.samples[-1][1]
    final = telemetry.samples[-1][1]
    assert final["sim.events_processed"] > 0


def test_cli_run_telemetry_export_round_trips(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    perfetto = tmp_path / "run.trace.json"
    code = main([
        "run", "--nodes", "60", "--subscriptions", "20",
        "--publications", "20",
        "--telemetry", str(out), "--perfetto", str(perfetto),
    ])
    assert code == 0
    assert out.exists() and perfetto.exists()
    dump = load_jsonl(out)
    assert dump.spans and dump.deliveries
    coverage = delivery_coverage(dump.spans, dump.deliveries)
    assert coverage and all(coverage.values())
    # The stats subcommand reads the same file and exits 0 (full trees).
    capsys.readouterr()
    assert main(["stats", str(out)]) == 0
    shown = capsys.readouterr().out
    assert "complete causal trees" in shown


def test_jsonl_export_of_experiment_round_trips(tmp_path):
    telemetry = Telemetry()
    run_experiment(small_config(), telemetry=telemetry)
    path = tmp_path / "exp.jsonl"
    write_jsonl(telemetry, path)
    dump = load_jsonl(path)
    assert len(dump.spans) == len(telemetry.tracer.spans)
    assert len(dump.deliveries) == len(telemetry.tracer.deliveries)
    assert len(dump.samples) == len(telemetry.samples)
