"""Overlay portability (the paper's footnote 1): the identical pub/sub
stack runs over Chord, the Pastry-style prefix router, and the
CAN-style zone overlay."""

import random

import pytest

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.can import CanOverlay
from repro.overlay.pastry import PastryOverlay
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def run_over(overlay_cls, mapping, routing, seed=21):
    sim = Simulator()
    overlay = overlay_cls(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 80))
    spec = WorkloadSpec(matching_probability=1.0)
    space = spec.make_space()
    system = PubSubSystem(
        sim, overlay, make_mapping(mapping, space, KS), PubSubConfig(routing=routing)
    )
    notifications = []
    system.set_global_notify_handler(lambda nid, ns: notifications.extend(ns))
    driver = WorkloadDriver(
        system, spec, random.Random(seed + 1),
        max_subscriptions=20, max_publications=30,
    )
    driver.run_to_completion()
    # Subscription/event ids are process-global counters, so express
    # matches as injection-index pairs for cross-run comparability.
    event_index = {e.event_id: i for i, e in enumerate(driver.injected_events)}
    sub_index = {
        s.subscription_id: i for i, s in enumerate(driver.injected_subscriptions)
    }
    got = {
        (event_index[n.event.event_id], sub_index[n.subscription_id])
        for n in notifications
    }
    expected = {
        (event_index[e.event_id], sub_index[s.subscription_id])
        for e in driver.injected_events
        for s in driver.injected_subscriptions
        if s.matches(e)
    }
    return got, expected


@pytest.mark.parametrize("overlay_cls", [ChordOverlay, PastryOverlay, CanOverlay])
@pytest.mark.parametrize(
    "mapping", ["attribute-split", "keyspace-split", "selective-attribute"]
)
def test_full_stack_over_every_overlay(overlay_cls, mapping):
    got, expected = run_over(overlay_cls, mapping, RoutingMode.MCAST)
    assert got >= expected


@pytest.mark.parametrize("overlay_cls", [ChordOverlay, PastryOverlay, CanOverlay])
def test_unicast_and_sequential_modes_portable(overlay_cls):
    for routing in (RoutingMode.UNICAST, RoutingMode.SEQUENTIAL):
        got, expected = run_over(overlay_cls, "selective-attribute", routing)
        assert got >= expected


@pytest.mark.parametrize("overlay_cls", [ChordOverlay, PastryOverlay, CanOverlay])
def test_churn_state_transfer_portable(overlay_cls):
    """The Section 4.1 churn contract holds on every overlay: state
    follows the KN-mapping through joins and graceful leaves."""
    sim = Simulator()
    overlay = overlay_cls(sim, KS)
    overlay.build_ring(random.Random(41).sample(range(KS.size), 60))
    spec = WorkloadSpec(matching_probability=1.0)
    space = spec.make_space()
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", space, KS)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    from repro.workload.generator import SubscriptionGenerator

    rng = random.Random(42)
    generator = SubscriptionGenerator(spec, rng)
    sigma = generator.generate()
    subscriber = overlay.node_ids()[0]
    system.subscribe(subscriber, sigma)
    sim.run()
    # Churn away half the ring (never the subscriber).
    for victim in [n for n in overlay.node_ids() if n != subscriber][:30]:
        system.remove_node(victim)
    candidate = next(
        k for k in range(KS.size) if not overlay.is_alive(k)
    )
    system.add_node(candidate)
    sim.run()
    # An event inside sigma must still be delivered.
    values = {}
    for index, attribute in enumerate(space.attributes):
        constraint = sigma.constraint_on(index)
        values[attribute.name] = constraint.low if constraint else 0
    system.publish(
        random.Random(43).choice(overlay.node_ids()), space.make_event(**values)
    )
    sim.run()
    assert received


def test_same_workload_same_matches_across_overlays():
    """The delivered match set is overlay-independent (only the message
    paths differ)."""
    chord_got, expected = run_over(ChordOverlay, "keyspace-split", RoutingMode.MCAST)
    pastry_got, expected2 = run_over(PastryOverlay, "keyspace-split", RoutingMode.MCAST)
    assert expected == expected2
    assert chord_got == pastry_got
