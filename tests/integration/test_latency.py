"""Delivery-latency semantics: hops x 50 ms, plus the buffering delay."""

import random

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.network import FixedDelay, Network
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)


def build(config=None, delay=0.05, seed=5):
    sim = Simulator()
    network = Network(sim, FixedDelay(delay))
    overlay = ChordOverlay(sim, KS, network=network, cache_capacity=0)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), 120))
    system = PubSubSystem(
        sim, overlay, make_mapping("keyspace-split", SPACE, KS), config
    )
    return sim, system


def full_subscription():
    return Subscription.build(
        SPACE, a1=(0, 30000), a2=(0, 1_000_000),
        a3=(0, 1_000_000), a4=(0, 1_000_000),
    )


MATCHING = dict(a1=2000, a2=5, a3=5, a4=5)


def run_one(config, publications=10):
    sim, system = build(config)
    nodes = system.overlay.node_ids()
    system.subscribe(nodes[3], full_subscription())
    sim.run_until(5.0)
    rng = random.Random(9)
    t = sim.now
    for _ in range(publications):
        t += 2.0
        event = dict(MATCHING)
        event["a2"] = rng.randrange(1_000_001)
        sim.schedule_at(t, system.publish, nodes[50], SPACE.make_event(**event))
    sim.run_until(t + 120.0)
    return system.recorder.notification_delay_summary()


def test_unbuffered_delay_is_hops_times_link_delay():
    summary = run_one(None)
    assert summary.count == 10
    # Publication routing + notification routing, each a handful of
    # 50 ms hops: single-digit multiples of the link delay.
    assert 0.05 <= summary.mean <= 0.05 * 30
    # Every delay is an exact multiple of the fixed link delay.
    assert abs(summary.minimum / 0.05 - round(summary.minimum / 0.05)) < 1e-9


def test_buffering_adds_up_to_one_period():
    unbuffered = run_one(None)
    buffered = run_one(
        PubSubConfig(routing=RoutingMode.MCAST, buffering=True, buffer_period=10.0)
    )
    assert buffered.count == unbuffered.count
    # Expected extra delay ~ period/2 on average, bounded by the period.
    extra = buffered.mean - unbuffered.mean
    assert 0.0 < extra <= 10.0 + 0.05 * 30


def test_longer_period_longer_delay():
    short = run_one(
        PubSubConfig(routing=RoutingMode.MCAST, buffering=True, buffer_period=4.0)
    )
    long = run_one(
        PubSubConfig(routing=RoutingMode.MCAST, buffering=True, buffer_period=16.0)
    )
    assert long.mean > short.mean
