"""End-to-end delivery across every mapping x routing-mode combination,
driven by the paper's synthetic workload."""

import random

import pytest

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.overlay.api import MessageKind
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)
MAPPINGS = ["attribute-split", "keyspace-split", "selective-attribute"]


def run_workload(mapping, routing, n=80, subs=25, pubs=40, seed=11, config=None):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=32)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    spec = WorkloadSpec(matching_probability=1.0)
    space = spec.make_space()
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping(mapping, space, KS),
        config or PubSubConfig(routing=routing),
    )
    notifications = []
    system.set_global_notify_handler(lambda nid, ns: notifications.extend(ns))
    driver = WorkloadDriver(
        system,
        spec,
        random.Random(seed + 1),
        max_subscriptions=subs,
        max_publications=pubs,
    )
    driver.run_to_completion()
    return system, driver, notifications


@pytest.mark.parametrize("mapping", MAPPINGS)
@pytest.mark.parametrize(
    "routing", [RoutingMode.UNICAST, RoutingMode.MCAST, RoutingMode.SEQUENTIAL]
)
def test_no_false_negatives(mapping, routing):
    """Every (publication, live matching subscription) pair must be
    notified: the mapping intersection rule end to end.

    Publications arriving before their matching subscription finished
    propagating are exempt (in-flight races are inherent to the
    asynchronous system, not a correctness bug)."""
    system, driver, notifications = run_workload(mapping, routing)
    got = {(n.event.event_id, n.subscription_id) for n in notifications}
    subs = driver.injected_subscriptions
    missing = []
    for event in driver.injected_events:
        for sigma in subs:
            if sigma.matches(event):
                if (event.event_id, sigma.subscription_id) not in got:
                    missing.append((event.event_id, sigma.subscription_id))
    # The workload interleaves injections 5 s apart with 0.05 s hops, so
    # in-flight races are essentially impossible here: demand zero loss.
    assert missing == []


@pytest.mark.parametrize("mapping", MAPPINGS)
def test_no_false_positives(mapping):
    """Nothing is delivered for (event, subscription) pairs that do not
    match — matching happens at rendezvous, not at the subscriber."""
    system, driver, notifications = run_workload(mapping, RoutingMode.MCAST)
    subs = {s.subscription_id: s for s in driver.injected_subscriptions}
    events = {e.event_id: e for e in driver.injected_events}
    for notification in notifications:
        sigma = subs[notification.subscription_id]
        event = events[notification.event.event_id]
        assert sigma.matches(event)


def test_mcast_strictly_cheaper_for_fanout_mappings():
    results = {}
    for routing in (RoutingMode.UNICAST, RoutingMode.MCAST):
        system, _, _ = run_workload("attribute-split", routing, pubs=0, subs=20)
        results[routing] = system.recorder.messages.mean_hops_per_request(
            MessageKind.SUBSCRIPTION
        )
    assert results[RoutingMode.MCAST] < 0.2 * results[RoutingMode.UNICAST]


def test_buffered_run_delivers_everything():
    config = PubSubConfig(
        routing=RoutingMode.MCAST, buffering=True, collecting=True,
        buffer_period=5.0,
    )
    system, driver, notifications = run_workload(
        "selective-attribute", RoutingMode.MCAST, config=config
    )
    got = {(n.event.event_id, n.subscription_id) for n in notifications}
    expected = {
        (event.event_id, sigma.subscription_id)
        for event in driver.injected_events
        for sigma in driver.injected_subscriptions
        if sigma.matches(event)
    }
    assert got >= expected


def test_notification_count_matches_match_count():
    system, driver, notifications = run_workload(
        "keyspace-split", RoutingMode.MCAST
    )
    expected = sum(
        1
        for event in driver.injected_events
        for sigma in driver.injected_subscriptions
        if sigma.matches(event)
    )
    assert len(notifications) == expected
