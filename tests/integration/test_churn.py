"""Continuous churn under live traffic: the self-configuration story
of Section 4.1 (state follows the KN-mapping automatically)."""

import random

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.generator import SubscriptionGenerator
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def build(seed=31, replication=0, n=100):
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=16)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    spec = WorkloadSpec(matching_probability=1.0)
    space = spec.make_space()
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping("selective-attribute", space, KS),
        PubSubConfig(
            routing=RoutingMode.MCAST,
            replication_factor=replication,
            failure_detection_delay=0.2,
        ),
    )
    return sim, system, spec, space


def event_inside(space, sigma, rng):
    values = []
    for attribute in range(space.dimensions):
        constraint = sigma.constraint_on(attribute)
        if constraint is None:
            values.append(rng.randrange(space.attributes[attribute].size))
        else:
            values.append(rng.randint(constraint.low, constraint.high))
    return space.make_event(
        **{space.attributes[i].name: v for i, v in enumerate(values)}
    )


def test_delivery_survives_joins_and_leaves():
    sim, system, spec, space = build()
    rng = random.Random(32)
    notifications = []
    system.set_global_notify_handler(lambda nid, ns: notifications.extend(ns))
    generator = SubscriptionGenerator(spec, rng)
    subs = []
    nodes = system.overlay.node_ids()
    for _ in range(10):
        sigma = generator.generate()
        subs.append(sigma)
        system.subscribe(rng.choice(nodes), sigma)
    sim.run()

    # Churn: alternate joins and graceful leaves while publishing.
    for round_number in range(12):
        alive = system.overlay.node_ids()
        if round_number % 2 == 0:
            candidate = rng.randrange(KS.size)
            if not system.overlay.is_alive(candidate):
                system.add_node(candidate)
        else:
            victim = rng.choice(alive)
            if len(alive) > 3:
                system.remove_node(victim)
        sim.run()
        sigma = rng.choice(subs)
        publisher = rng.choice(system.overlay.node_ids())
        system.publish(publisher, event_inside(space, sigma, rng))
        sim.run()

    # Every published event targeted a live subscription: all rounds
    # must have produced at least one notification each.
    assert len(notifications) >= 12


def test_mass_leave_keeps_state_available():
    sim, system, spec, space = build(n=60)
    rng = random.Random(33)
    notifications = []
    system.set_global_notify_handler(lambda nid, ns: notifications.extend(ns))
    generator = SubscriptionGenerator(spec, rng)
    sigma = generator.generate()
    subscriber = system.overlay.node_ids()[0]
    system.subscribe(subscriber, sigma)
    sim.run()
    # Remove half the ring gracefully (never the subscriber).
    victims = [n for n in system.overlay.node_ids() if n != subscriber]
    for victim in victims[: len(victims) // 2]:
        system.remove_node(victim)
    sim.run()
    system.publish(
        rng.choice(system.overlay.node_ids()), event_inside(space, sigma, rng)
    )
    sim.run()
    assert notifications


def test_crash_storm_with_replication():
    sim, system, spec, space = build(replication=2, n=80)
    rng = random.Random(34)
    notifications = []
    system.set_global_notify_handler(lambda nid, ns: notifications.extend(ns))
    generator = SubscriptionGenerator(spec, rng)
    sigma = generator.generate()
    subscriber = system.overlay.node_ids()[0]
    system.subscribe(subscriber, sigma)
    sim.run()
    holders = [
        node_id
        for node_id in system.overlay.node_ids()
        if sigma.subscription_id in system.node(node_id).store
    ]
    # Crash every rendezvous node (but not the subscriber).
    for victim in holders:
        if victim != subscriber and len(system.overlay) > 3:
            system.crash_node(victim)
            sim.run_until(sim.now + 1.0)  # let promotion complete
    system.publish(
        rng.choice(system.overlay.node_ids()), event_inside(space, sigma, rng)
    )
    sim.run()
    assert notifications
