"""The pub/sub stack over the *protocol-maintained* Chord ring.

The strongest form of the paper's self-configuration claim: the overlay
under the pub/sub layer is not an oracle-converged ring but the actual
Chord maintenance protocol — nodes join through routed lookups, pointers
heal by stabilization, and the Section 4.1 state transfer fires when a
node's believed coverage shrinks.  These tests subscribe, publish and
churn over that substrate.
"""

import random

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.overlay.chord.protocol import ProtocolChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)

MATCHING = dict(a1=2000, a2=510_000, a3=5, a4=999_999)


def full_subscription():
    return Subscription.build(
        SPACE,
        a1=(1000, 30000),
        a2=(500_000, 530_000),
        a3=(0, 1_000_000),
        a4=(0, 1_000_000),
    )


def build(n=40, seed=15, config=None):
    sim = Simulator()
    overlay = ProtocolChordOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim, overlay, make_mapping("selective-attribute", SPACE, KS), config
    )
    return sim, overlay, system


def settle(sim, overlay, seconds=None):
    """Run long enough for fix_fingers to cycle every entry."""
    horizon = seconds or 3 * KS.bits * overlay.fix_fingers_period
    sim.run_until(sim.now + horizon)


def test_end_to_end_over_protocol_ring():
    sim, overlay, system = build()
    settle(sim, overlay)
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    settle(sim, overlay, 20.0)
    system.publish(nodes[20], SPACE.make_event(**MATCHING))
    system.publish(nodes[21], SPACE.make_event(a1=900_000, a2=0, a3=0, a4=0))
    settle(sim, overlay, 20.0)
    assert len(received) == 1
    assert received[0].subscription_id == sigma.subscription_id


def test_all_routing_modes_over_protocol_ring():
    for routing in RoutingMode:
        sim, overlay, system = build(config=PubSubConfig(routing=routing))
        settle(sim, overlay)
        received = []
        system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
        nodes = overlay.node_ids()
        system.subscribe(nodes[5], full_subscription())
        settle(sim, overlay, 60.0)
        system.publish(nodes[25], SPACE.make_event(**MATCHING))
        settle(sim, overlay, 30.0)
        assert len(received) == 1, routing


def test_join_state_transfer_moves_subscriptions():
    """A node joining *after* a subscription was installed pulls the
    inherited rendezvous state through the stabilization-driven hook."""
    sim, overlay, system = build(n=25, seed=16)
    settle(sim, overlay)
    nodes = overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    settle(sim, overlay, 20.0)
    holders = [
        node_id
        for node_id in overlay.node_ids()
        if sigma.subscription_id in system.node(node_id).store
    ]
    assert holders
    # Join a node right at one of the stored rendezvous keys: the hook
    # must hand it the subscription when stabilization cedes coverage.
    holder = holders[0]
    entry = system.node(holder).store.get(sigma.subscription_id)
    target_key = min(entry.keys_here)
    if overlay.is_alive(target_key):
        return  # degenerate layout for this seed; other tests cover it
    system.add_node(target_key)
    settle(sim, overlay, 120.0)
    assert sigma.subscription_id in system.node(target_key).store
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    system.publish(overlay.node_ids()[10], SPACE.make_event(**MATCHING))
    settle(sim, overlay, 30.0)
    assert received


def test_delivery_survives_protocol_churn_with_replication():
    sim, overlay, system = build(
        n=30,
        seed=17,
        config=PubSubConfig(
            routing=RoutingMode.MCAST,
            replication_factor=2,
            failure_detection_delay=1.0,
        ),
    )
    settle(sim, overlay)
    rng = random.Random(18)
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    subscriber = overlay.node_ids()[0]
    sigma = full_subscription()
    system.subscribe(subscriber, sigma)
    settle(sim, overlay, 30.0)
    # Churn: a protocol join and a crash, letting stabilization heal.
    for round_number in range(4):
        candidate = rng.randrange(KS.size)
        if not overlay.is_alive(candidate):
            system.add_node(candidate)
        settle(sim, overlay, 40.0)
        victims = [n for n in overlay.node_ids() if n != subscriber]
        system.crash_node(rng.choice(victims))
        settle(sim, overlay, 40.0)
        system.publish(
            rng.choice(overlay.node_ids()), SPACE.make_event(**MATCHING)
        )
        settle(sim, overlay, 30.0)
    # Most rounds deliver; replication covers crashed rendezvous.
    assert len(received) >= 3
