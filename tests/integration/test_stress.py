"""Larger-scale smoke runs (kept modest so CI stays fast; the real
scale knobs live in the benchmark suite's REPRO_BENCH_SCALE)."""

import random

from repro.core import PubSubConfig, PubSubSystem, RoutingMode
from repro.core.mappings import make_mapping
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator
from repro.workload.driver import WorkloadDriver
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def test_two_thousand_node_ring_end_to_end():
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    overlay.build_ring(random.Random(1).sample(range(KS.size), 2000))
    spec = WorkloadSpec(matching_probability=1.0)
    space = spec.make_space()
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping("selective-attribute", space, KS),
        PubSubConfig(routing=RoutingMode.MCAST),
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    driver = WorkloadDriver(
        system, spec, random.Random(2),
        max_subscriptions=40, max_publications=60,
    )
    driver.run_to_completion()
    expected = sum(
        1
        for event in driver.injected_events
        for sigma in driver.injected_subscriptions
        if sigma.matches(event)
    )
    assert len(received) == expected
    assert expected >= 40  # matching probability 1.0


def test_mid_multicast_crash_is_safe():
    """A node crashing while an m-cast is in flight loses only the
    branches addressed to it; everything else still delivers and the
    simulation never wedges."""
    sim = Simulator()
    overlay = ChordOverlay(sim, KS, cache_capacity=0)
    overlay.build_ring(random.Random(3).sample(range(KS.size), 300))
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    from repro.overlay.api import MessageKind, OverlayMessage, next_request_id

    src = overlay.node_ids()[0]
    keys = list(range(1000, 3000))
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION, payload=None,
        request_id=next_request_id(), origin=src,
    )
    overlay.mcast(src, keys, message)
    # Let the first wave of branches fly, then crash a covering node.
    sim.run_until(sim.now + 0.06)
    victims = [n for n in overlay.node_ids() if 1000 <= n <= 3000][:3]
    for victim in victims:
        if victim != src:
            overlay.crash(victim)
    sim.run()
    survivors = {overlay.owner_of(k) for k in keys} - set(victims)
    # Every surviving expected node that was reached is unique, and a
    # substantial majority of the range was still covered.
    assert len(set(delivered)) >= 0.7 * len(survivors)
    assert overlay.network.dropped >= 0  # no exception paths
