"""Crash recovery over CAN: replicas must live at the *heir* (the
absorbing zone's owner), which on CAN is the Morton-predecessor — the
opposite direction from Chord's successor chain."""

import random

from repro.core import (
    EventSpace,
    PubSubConfig,
    PubSubSystem,
    RoutingMode,
    Subscription,
)
from repro.core.mappings import make_mapping
from repro.overlay.can import CanOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)

MATCHING = dict(a1=2000, a2=510_000, a3=5, a4=999_999)


def full_subscription():
    return Subscription.build(
        SPACE,
        a1=(1000, 30000),
        a2=(500_000, 530_000),
        a3=(0, 1_000_000),
        a4=(0, 1_000_000),
    )


def build(replication=2, n=100, seed=8):
    sim = Simulator()
    overlay = CanOverlay(sim, KS)
    overlay.build_ring(random.Random(seed).sample(range(KS.size), n))
    system = PubSubSystem(
        sim,
        overlay,
        make_mapping("selective-attribute", SPACE, KS),
        PubSubConfig(
            routing=RoutingMode.MCAST,
            replication_factor=replication,
            failure_detection_delay=0.2,
        ),
    )
    return sim, system


def holders(system, sigma):
    return [
        node_id
        for node_id in system.overlay.node_ids()
        if sigma.subscription_id in system.node(node_id).store
    ]


def test_replicas_flow_toward_heir():
    sim, system = build()
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    for holder in holders(system, sigma):
        heir = system.overlay.heir_of(holder)
        assert sigma.subscription_id in system.node(heir).replicas.get(holder, {})


def test_crash_recovery_over_can():
    sim, system = build()
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    for victim in holders(system, sigma):
        if victim != nodes[3] and len(system.overlay) > 3:
            system.crash_node(victim)
            sim.run_until(sim.now + 1.0)
    system.publish(
        random.Random(9).choice(system.overlay.node_ids()),
        SPACE.make_event(**MATCHING),
    )
    sim.run()
    assert received


def test_crash_without_replication_loses_state_on_can():
    sim, system = build(replication=0)
    nodes = system.overlay.node_ids()
    sigma = full_subscription()
    system.subscribe(nodes[3], sigma)
    sim.run()
    before = holders(system, sigma)
    for victim in before:
        if victim != nodes[3] and len(system.overlay) > 3:
            system.crash_node(victim)
    sim.run_until(sim.now + 2.0)
    assert len(holders(system, sigma)) < len(before)
