"""Fault injection: lossy links under the pub/sub workload.

The paper's simulation model is loss-free; these tests document how the
architecture degrades when transmissions are silently lost — deliveries
drop roughly in proportion to the per-path loss probability, and
nothing crashes, deadlocks or misroutes.
"""

import random

import pytest

from repro.core import EventSpace, PubSubSystem, RoutingMode, Subscription
from repro.core.mappings import make_mapping
from repro.errors import OverlayError
from repro.overlay.api import MessageKind, OverlayMessage, next_request_id
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.sim import Simulator

KS = KeySpace(13)


def test_loss_rate_validation():
    sim = Simulator()
    with pytest.raises(OverlayError):
        Network(sim, loss_rate=1.5, loss_rng=random.Random(0))
    with pytest.raises(OverlayError):
        Network(sim, loss_rate=0.5)  # rng required


def test_total_loss_delivers_nothing_remote():
    sim = Simulator()
    network = Network(sim, loss_rate=1.0, loss_rng=random.Random(0))
    overlay = ChordOverlay(sim, KS, network=network, cache_capacity=0)
    overlay.build_ring([100, 4000])
    delivered = []
    overlay.set_deliver(lambda nid, m: delivered.append(nid))
    message = OverlayMessage(
        kind=MessageKind.PUBLICATION, payload=None,
        request_id=next_request_id(), origin=100,
    )
    overlay.send(100, 4000, message)  # remote: must cross the network
    sim.run()
    assert delivered == []
    assert network.lost == 1
    # Local coverage needs no network and still works.
    overlay.send(100, 100, message)
    sim.run()
    assert delivered == [100]


def test_partial_loss_degrades_gracefully():
    rng = random.Random(7)

    def run(loss):
        sim = Simulator()
        network = Network(sim, loss_rate=loss, loss_rng=random.Random(1))
        overlay = ChordOverlay(sim, KS, network=network, cache_capacity=0)
        overlay.build_ring(random.Random(2).sample(range(KS.size), 150))
        space = EventSpace.uniform(("a1", "a2", "a3", "a4"), 1_000_001)
        system = PubSubSystem(
            sim, overlay, make_mapping("keyspace-split", space, KS)
        )
        received = []
        system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
        nodes = overlay.node_ids()
        sigma = Subscription.build(
            space, a1=(0, 30000), a2=(0, 1_000_000),
            a3=(0, 1_000_000), a4=(0, 1_000_000),
        )
        system.subscribe(nodes[3], sigma)
        sim.run()
        for index in range(60):
            system.publish(
                nodes[(index * 7) % len(nodes)],
                space.make_event(
                    a1=rng.randint(0, 30000),
                    a2=rng.randrange(1_000_001),
                    a3=rng.randrange(1_000_001),
                    a4=rng.randrange(1_000_001),
                ),
            )
        sim.run()
        return len(received), network.lost

    clean, lost0 = run(0.0)
    lossy, lost = run(0.10)
    assert lost0 == 0
    assert lost > 0
    # Some deliveries survive, some are lost — graceful degradation.
    assert 0 < lossy < clean


def test_lossy_mcast_degrades_without_hanging():
    """Losing m-cast branches costs coverage, never liveness."""
    sim = Simulator()
    network = Network(sim, loss_rate=0.15, loss_rng=random.Random(5))
    overlay = ChordOverlay(sim, KS, network=network, cache_capacity=0)
    overlay.build_ring(random.Random(6).sample(range(KS.size), 200))
    got = []
    overlay.set_deliver(lambda nid, m: got.append(nid))
    src = overlay.node_ids()[0]
    keys = list(range(1000, 3000))
    message = OverlayMessage(
        kind=MessageKind.SUBSCRIPTION, payload=None,
        request_id=next_request_id(), origin=src,
    )
    overlay.mcast(src, keys, message)
    sim.run()  # terminates: lost branches simply vanish
    expected = {overlay.owner_of(k) for k in keys}
    assert 0 < len(set(got)) < len(expected)
    assert network.lost > 0
