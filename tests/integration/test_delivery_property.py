"""System-level property: for ANY matching (subscription, event) pair
and ANY ring layout, the notification arrives — the mapping
intersection rule composed with overlay routing, rendezvous matching
and notification delivery, end to end."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import EventSpace, PubSubSystem, Subscription
from repro.core.events import Event
from repro.core.mappings import make_mapping
from repro.core.subscriptions import Constraint
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

KS = KeySpace(13)
SPACE = EventSpace.uniform(("a1", "a2", "a3"), 100_000)


@st.composite
def matching_pair(draw):
    constraints = []
    values = []
    for attribute in range(3):
        if draw(st.booleans()):
            low = draw(st.integers(0, 99_999))
            high = draw(st.integers(low, min(99_999, low + 5000)))
            constraints.append(Constraint(attribute=attribute, low=low, high=high))
            values.append(draw(st.integers(low, high)))
        else:
            values.append(draw(st.integers(0, 99_999)))
    if not constraints:
        constraints.append(Constraint(attribute=0, low=0, high=99_999))
    return (
        Subscription(space=SPACE, constraints=tuple(constraints)),
        Event(space=SPACE, values=tuple(values)),
    )


@settings(max_examples=40, deadline=None)
@given(
    pair=matching_pair(),
    mapping_name=st.sampled_from(
        ["attribute-split", "keyspace-split", "selective-attribute",
         "event-space-partition"]
    ),
    ring_seed=st.integers(0, 10**6),
)
def test_property_matching_pair_always_delivered(pair, mapping_name, ring_seed):
    sigma, event = pair
    sim = Simulator()
    overlay = ChordOverlay(sim, KS)
    rng = random.Random(ring_seed)
    overlay.build_ring(rng.sample(range(KS.size), rng.randint(2, 60)))
    system = PubSubSystem(
        sim, overlay, make_mapping(mapping_name, SPACE, KS)
    )
    received = []
    system.set_global_notify_handler(lambda nid, ns: received.extend(ns))
    nodes = overlay.node_ids()
    subscriber = nodes[ring_seed % len(nodes)]
    publisher = nodes[(ring_seed // 7) % len(nodes)]
    system.subscribe(subscriber, sigma)
    sim.run()
    system.publish(publisher, event)
    sim.run()
    assert any(
        n.subscription_id == sigma.subscription_id
        and n.event.event_id == event.event_id
        for n in received
    ), (mapping_name, len(nodes))
