"""The ASCII table renderer."""

from repro.experiments.report import render_table


def test_basic_alignment():
    table = render_table(
        ["name", "value"],
        [["alpha", 1], ["b", 22.5]],
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("name")
    assert set(lines[2]) <= {"-", " "}
    # All rows have equal width.
    assert len({len(line) for line in lines[1:]}) == 1


def test_floats_two_decimals():
    table = render_table(["x"], [[3.14159]])
    assert "3.14" in table and "3.1416" not in table


def test_empty_rows():
    table = render_table(["a", "b"], [])
    lines = table.splitlines()
    assert len(lines) == 2  # header + rule, no crash


def test_wide_cell_wins_column_width():
    table = render_table(["h"], [["very-long-cell-value"]])
    header_line, rule, row = table.splitlines()
    assert len(rule) == len("very-long-cell-value")


def test_none_and_bool_cells():
    table = render_table(["v"], [[None], [True]])
    assert "None" in table and "True" in table
