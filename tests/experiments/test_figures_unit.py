"""Direct unit tests of the figure-harness plumbing (tiny scales)."""

from repro.experiments import figures
from repro.experiments.figures import BufferingVariant, MAPPING_LABEL, MAPPINGS


def test_mapping_labels_cover_all_mappings():
    assert set(MAPPING_LABEL) == set(MAPPINGS)
    assert all("Mapping" in label for label in MAPPING_LABEL.values())


def test_figure5_row_schema():
    rows = figures.figure5(subscriptions=10, publications=10, nodes=60)
    assert len(rows) == 6  # 3 mappings x 2 routings
    for row in rows:
        assert set(row) == {
            "mapping", "routing", "sub_hops", "pub_hops", "notify_hops",
            "keys_per_sub", "keys_per_pub",
        }


def test_figure6_expiration_none_supported():
    rows = figures.figure6(
        subscriptions=30, nodes=50,
        expiration_fractions=(None,), selective_counts=(0,),
    )
    assert len(rows) == 3
    assert all(row["expiration"] is None for row in rows)


def test_figure7_includes_reference_curve():
    rows = figures.figure7(node_counts=(50, 100), publications=20)
    assert [row["nodes"] for row in rows] == [50, 100]
    assert rows[1]["log2_n"] > rows[0]["log2_n"]


def test_figure9a_variant_labels_unique():
    labels = [v.label for v in figures.FIGURE9A_VARIANTS]
    assert len(set(labels)) == len(labels)
    custom = BufferingVariant("just buffering", True, False, 3.0)
    rows = figures.figure9a(
        matching_probabilities=(0.5,),
        subscriptions=20, publications=30, nodes=60,
        variants=(custom,),
    )
    assert rows[0]["variant"] == "just buffering"
    assert "mean_delay" in rows[0]


def test_figure9b_width_fraction_zero_means_no_discretization():
    rows = figures.figure9b(width_fractions=(0.0,), subscriptions=15, nodes=50)
    assert rows[0]["interval_width"] == 1


def test_baseline_routing_schema():
    rows = figures.baseline_routing(
        nodes=60, publications=40, cache_capacities=(0,)
    )
    assert rows[0]["cache_capacity"] == 0
    assert rows[0]["pub_hops"] > 0
