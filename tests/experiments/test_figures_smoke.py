"""Tiny-scale smoke runs of every figure harness, asserting the paper's
qualitative shapes (orderings and trends, not absolute values)."""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def fig5_rows():
    return figures.figure5(subscriptions=60, publications=60, nodes=200)


def _row(rows, **criteria):
    for row in rows:
        if all(row[k] == v for k, v in criteria.items()):
            return row
    raise AssertionError(f"no row matching {criteria}")


def test_figure5_mcast_saves_on_fanout_mappings(fig5_rows):
    for mapping in ("attribute-split", "selective-attribute"):
        unicast = _row(fig5_rows, mapping=mapping, routing="unicast")
        mcast = _row(fig5_rows, mapping=mapping, routing="mcast")
        assert mcast["sub_hops"] < 0.5 * unicast["sub_hops"]


def test_figure5_subscription_cost_ordering(fig5_rows):
    """Under unicast: Mapping 1 >> Mapping 3 >> Mapping 2."""
    m1 = _row(fig5_rows, mapping="attribute-split", routing="unicast")
    m2 = _row(fig5_rows, mapping="keyspace-split", routing="unicast")
    m3 = _row(fig5_rows, mapping="selective-attribute", routing="unicast")
    assert m1["sub_hops"] > m3["sub_hops"] > m2["sub_hops"]


def test_figure5_publication_key_counts(fig5_rows):
    for mapping, expected in (
        ("attribute-split", 1.0),
        ("keyspace-split", 1.0),
    ):
        row = _row(fig5_rows, mapping=mapping, routing="unicast")
        assert row["keys_per_pub"] == expected
    m3 = _row(fig5_rows, mapping="selective-attribute", routing="unicast")
    assert m3["keys_per_pub"] > 3.5


def test_figure6_storage_grows_with_expiration():
    rows = figures.figure6(
        subscriptions=400,
        nodes=100,
        expiration_fractions=(0.2, None),
        selective_counts=(0,),
    )
    for mapping in ("attribute-split", "keyspace-split", "selective-attribute"):
        short = _row(rows, mapping=mapping, expiration=0.2 * 400 * 5.0)
        never = _row(rows, mapping=mapping, expiration=None)
        assert short["max_subs_per_node"] <= never["max_subs_per_node"]


def test_figure7_hops_grow_with_n():
    rows = figures.figure7(node_counts=(50, 200, 800), publications=80)
    hops = [row["pub_hops"] for row in rows]
    assert hops[0] < hops[-1]


def test_figure8_mapping2_flattest():
    rows = figures.figure8(
        node_counts=(100, 800), subscriptions=400, selective_counts=(0,)
    )

    def growth(mapping):
        small = _row(rows, mapping=mapping, nodes=100)
        large = _row(rows, mapping=mapping, nodes=800)
        return large["mean_subs_per_node"] / max(small["mean_subs_per_node"], 1e-9)

    # Mapping 2's per-node storage shrinks ~1/n (constant total);
    # mappings 1 and 3 fall much slower because total copies grow with n.
    assert growth("keyspace-split") < growth("attribute-split")
    assert growth("keyspace-split") < growth("selective-attribute")


def test_figure9a_buffering_reduces_notification_traffic():
    rows = figures.figure9a(
        matching_probabilities=(0.8,),
        subscriptions=200,
        publications=400,
        nodes=300,
        variants=(
            figures.FIGURE9A_VARIANTS[0],  # none
            figures.FIGURE9A_VARIANTS[3],  # buffering + collecting 5x
            figures.FIGURE9A_VARIANTS[4],  # buffering only 1x
        ),
    )
    none = _row(rows, variant="no buffering, no collecting")
    buffered = _row(rows, variant="buffering only (1x)")
    collected = _row(rows, variant="buffering + collecting (5x)")
    assert buffered["notify_hops_per_pub"] < none["notify_hops_per_pub"]
    assert collected["notify_hops_per_pub"] < none["notify_hops_per_pub"]
    # Batching delivers the same matches in fewer, longer messages.
    assert buffered["notification_batches"] < none["notification_batches"]
    assert (
        buffered["matched_notifications"] == none["matched_notifications"]
        or abs(buffered["matched_notifications"] - none["matched_notifications"])
        <= 0.1 * none["matched_notifications"]
    )


def test_figure9b_discretization_reduces_subscription_hops():
    rows = figures.figure9b(
        width_fractions=(0.0, 0.1, 0.2), subscriptions=80, nodes=100
    )
    hops = [row["sub_hops"] for row in rows]
    keys = [row["keys_per_sub"] for row in rows]
    assert hops[0] > hops[1] > hops[2]
    assert keys[0] > keys[1] > keys[2]


def test_baseline_routing_cache_sweep():
    rows = figures.baseline_routing(
        nodes=200, publications=300, cache_capacities=(0, 128)
    )
    cold = _row(rows, cache_capacity=0)
    warm = _row(rows, cache_capacity=128)
    assert warm["pub_hops"] < cold["pub_hops"]
