"""The all-figures suite runner (tiny subset for speed)."""

import pytest

from repro.experiments.suite import QUICK, SCALES, SuiteScale, run_suite


def test_scales_registered():
    assert set(SCALES) == {"quick", "default", "paper"}
    assert SCALES["paper"].memory_subscriptions == 25000


def test_run_subset_writes_csv_and_summary(tmp_path):
    tiny = SuiteScale("tiny", 15, 15, 50, (50, 100))
    progress = []
    results = run_suite(
        tmp_path, scale=tiny, only=("fig9b", "fig7"), progress=progress.append
    )
    assert set(results) == {"fig9b", "fig7"}
    assert (tmp_path / "fig9b.csv").exists()
    assert (tmp_path / "fig7.csv").exists()
    summary = (tmp_path / "SUMMARY.txt").read_text()
    assert "fig9b" in summary and "fig7" in summary
    assert any("fig7" in line for line in progress)


def test_unknown_figure_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_suite(tmp_path, scale=QUICK, only=("nope",))


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    # Patch in a tiny scale through the quick path by running only the
    # cheapest figure.
    code = main([
        "report", "--out-dir", str(tmp_path), "--scale", "quick",
        "--only", "fig9b",
    ])
    assert code == 0
    assert (tmp_path / "fig9b.csv").exists()
    assert "SUMMARY.txt" in {p.name for p in tmp_path.iterdir()}
