"""CSV export round-trips."""

from repro.experiments.export import csv_to_rows, rows_to_csv


def test_roundtrip(tmp_path):
    rows = [
        {"mapping": "keyspace-split", "sub_hops": 6.1},
        {"mapping": "attribute-split", "sub_hops": 65.7, "extra": "x"},
    ]
    path = tmp_path / "fig.csv"
    assert rows_to_csv(rows, path) == 2
    back = csv_to_rows(path)
    assert back[0]["mapping"] == "keyspace-split"
    assert float(back[1]["sub_hops"]) == 65.7
    assert back[0]["extra"] == ""  # union of columns, missing cells empty


def test_empty(tmp_path):
    path = tmp_path / "empty.csv"
    assert rows_to_csv([], path) == 0
    assert csv_to_rows(path) == []


def test_column_order_first_seen(tmp_path):
    rows = [{"b": 1, "a": 2}, {"c": 3}]
    path = tmp_path / "cols.csv"
    rows_to_csv(rows, path)
    header = path.read_text().splitlines()[0]
    assert header == "b,a,c"
