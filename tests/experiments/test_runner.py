"""The experiment runner: determinism and result plumbing."""

from repro.core.system import RoutingMode
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.workload.spec import WorkloadSpec


def small_config(**overrides):
    defaults = dict(
        mapping="selective-attribute",
        routing=RoutingMode.MCAST,
        nodes=100,
        subscriptions=40,
        publications=40,
        workload=WorkloadSpec(subscription_ttl=None),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_run_produces_complete_result():
    result = run_experiment(small_config())
    assert result.subscriptions_sent == 40
    assert result.publications_sent == 40
    assert result.sub_hops.count == 40
    assert result.pub_hops.count == 40
    assert result.keys_per_subscription > 1
    assert result.keys_per_publication == 4.0  # selective-attribute: d keys
    assert result.max_subscriptions_per_node >= 1
    assert result.mean_subscriptions_per_node > 0


def test_same_seed_same_results():
    a = run_experiment(small_config(seed=7))
    b = run_experiment(small_config(seed=7))
    assert a.sub_hops == b.sub_hops
    assert a.pub_hops == b.pub_hops
    assert a.max_subscriptions_per_node == b.max_subscriptions_per_node
    assert a.notification_messages == b.notification_messages


def test_different_seed_different_results():
    a = run_experiment(small_config(seed=7))
    b = run_experiment(small_config(seed=8))
    assert (
        a.sub_hops != b.sub_hops
        or a.max_subscriptions_per_node != b.max_subscriptions_per_node
    )


def test_notification_hops_per_publication():
    result = run_experiment(small_config())
    assert result.notification_hops_per_publication >= 0.0


def test_zero_publications():
    result = run_experiment(small_config(publications=0))
    assert result.publications_sent == 0
    assert result.notification_hops_per_publication == 0.0
    assert result.keys_per_publication == 0.0
