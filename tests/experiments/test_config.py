"""Experiment configuration validation and derivation."""

import pytest

from repro.core.system import RoutingMode
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.workload.spec import WorkloadSpec


def test_paper_defaults():
    config = ExperimentConfig()
    assert config.nodes == 500
    assert config.key_bits == 13
    assert config.message_delay == 0.05
    assert config.workload.matching_probability == 0.5


def test_pubsub_config_derivation():
    config = ExperimentConfig(
        routing=RoutingMode.UNICAST,
        buffering=True,
        collecting=True,
        buffer_period=10.0,
        replication_factor=2,
        workload=WorkloadSpec(subscription_ttl=99.0),
    )
    derived = config.pubsub_config()
    assert derived.routing is RoutingMode.UNICAST
    assert derived.buffering and derived.collecting
    assert derived.buffer_period == 10.0
    assert derived.default_ttl == 99.0
    assert derived.replication_factor == 2


def test_too_many_nodes_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(nodes=10_000, key_bits=13)


def test_discretization_sizing_rule():
    """Section 4.3.3: the event space's total interval count (the
    d-dimensional product) must exceed the node count."""
    # One interval per attribute -> 1 total interval < 500 nodes.
    with pytest.raises(ConfigurationError):
        ExperimentConfig(discretization_width=1_000_001, nodes=500)
    # 100 intervals per attribute -> 100^4 total: plenty.
    ExperimentConfig(discretization_width=10_000, nodes=500)
    # The paper's own Fig. 9(b) point: 20% of the average range.
    ExperimentConfig(discretization_width=3000, nodes=500)


def test_invalid_widths_rejected():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(discretization_width=0)
