"""Section 5.2's narrative numbers about |SK| and |EK| under the paper
workload — the textual claims accompanying Fig. 5."""

import random

from repro.core.mappings import make_mapping
from repro.overlay.ids import KeySpace
from repro.workload.generator import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec

KS = KeySpace(13)


def generated(spec, count=300, seed=1):
    rng = random.Random(seed)
    generator = SubscriptionGenerator(spec, rng)
    subs = [generator.generate() for _ in range(count)]
    return generator.space, subs


def mean_keys(mapping, subs):
    return sum(len(mapping.subscription_keys(s)) for s in subs) / len(subs)


def test_mapping1_about_ten_times_mapping3():
    """'The number of mapped keys per subscription was about ten times
    higher for mapping 1 compared with mapping 3.'"""
    space, subs = generated(WorkloadSpec())
    m1 = mean_keys(make_mapping("attribute-split", space, KS), subs)
    m3 = mean_keys(make_mapping("selective-attribute", space, KS), subs)
    assert 6 < m1 / m3 < 14


def test_mapping2_slightly_over_one_key():
    """'Each subscription was mapped to slightly over one key in
    mapping 2.'"""
    space, subs = generated(WorkloadSpec())
    m2 = mean_keys(make_mapping("keyspace-split", space, KS), subs)
    assert 1.0 <= m2 < 2.5


def test_event_key_cardinalities():
    """'Each publication was mapped to one key in mappings 1 and 2 and
    to four keys in mapping 3.'"""
    spec = WorkloadSpec()
    rng = random.Random(2)
    sub_generator = SubscriptionGenerator(spec, rng)
    event_generator = EventGenerator(spec, sub_generator.space, rng)
    for _ in range(30):
        event_generator.register(sub_generator.generate(), None)
    space = sub_generator.space
    m1 = make_mapping("attribute-split", space, KS)
    m2 = make_mapping("keyspace-split", space, KS)
    m3 = make_mapping("selective-attribute", space, KS)
    counts3 = []
    for _ in range(100):
        event = event_generator.generate(now=0.0)
        assert len(m1.event_keys(event)) == 1
        assert len(m2.event_keys(event)) == 1
        counts3.append(len(m3.event_keys(event)))
    # d = 4 keys, barring rare hash collisions between attributes.
    assert sum(counts3) / len(counts3) > 3.8


def test_selective_attribute_single_key_with_equality_like_constraint():
    """Section 4.2: with a selective constraint, Mapping 3 maps a
    subscription to a single key or a few keys."""
    space, subs = generated(WorkloadSpec(selective_attributes=(0,)))
    m3 = make_mapping("selective-attribute", space, KS)
    counts = [len(m3.subscription_keys(s)) for s in subs]
    assert sum(counts) / len(counts) < 6
