"""Run the doctests embedded in module and class docstrings."""

import doctest

import pytest

import repro.core.events
import repro.core.subscriptions
import repro.core.system
import repro.metrics.stats
import repro.overlay.ids
import repro.sim.kernel
import repro.sim.rng

MODULES = [
    repro.core.events,
    repro.core.subscriptions,
    repro.core.system,
    repro.metrics.stats,
    repro.overlay.ids,
    repro.sim.kernel,
    repro.sim.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0
