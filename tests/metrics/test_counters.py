"""Message and storage counters."""

from repro.metrics.counters import MessageStats, StorageStats
from repro.overlay.api import MessageKind

SUB = MessageKind.SUBSCRIPTION
PUB = MessageKind.PUBLICATION


def test_begin_and_record_sends():
    stats = MessageStats()
    stats.begin_request(SUB, 1, time=0.0)
    stats.record_send(SUB, 1, time=0.1)
    stats.record_send(SUB, 1, time=0.2)
    stats.begin_request(SUB, 2, time=0.0)
    stats.record_send(SUB, 2, time=0.1)
    assert stats.total_sends(SUB) == 3
    assert stats.total_sends() == 3
    assert stats.hops_per_request(SUB) == [2, 1]
    assert stats.mean_hops_per_request(SUB) == 1.5


def test_zero_hop_requests_counted():
    """A request whose only delivery is local costs zero messages but
    must still appear in the per-request means (Fig. 5 averages)."""
    stats = MessageStats()
    stats.begin_request(PUB, 5, time=0.0)
    assert stats.hops_per_request(PUB) == [0]
    assert stats.mean_hops_per_request(PUB) == 0.0


def test_send_without_begin_creates_trace():
    stats = MessageStats()
    stats.record_send(PUB, 9, time=1.0)
    assert stats.traces[9].kind is PUB
    assert stats.traces[9].one_hop_messages == 1


def test_deliveries_and_dilation():
    stats = MessageStats()
    stats.begin_request(SUB, 1, time=0.0)
    stats.record_delivery(1, node_id=10, time=0.5, path_hops=3)
    stats.record_delivery(1, node_id=20, time=0.7, path_hops=5)
    trace = stats.traces[1]
    assert trace.delivery_count == 2
    assert trace.max_path_hops == 5
    assert trace.last_delivery_time == 0.7
    assert stats.mean_dilation(SUB) == 5.0


def test_delivery_for_unknown_request_ignored():
    stats = MessageStats()
    stats.record_delivery(99, node_id=1, time=0.0, path_hops=1)
    assert 99 not in stats.traces


def test_empty_means_are_zero():
    stats = MessageStats()
    assert stats.mean_hops_per_request(SUB) == 0.0
    assert stats.mean_dilation(SUB) == 0.0


def test_storage_snapshots():
    storage = StorageStats()
    assert storage.latest() == {}
    assert storage.max_per_node() == 0
    storage.snapshot(1.0, {10: 3, 20: 7})
    storage.snapshot(2.0, {10: 5, 20: 2})
    assert storage.max_per_node() == 5
    assert storage.mean_per_node() == 3.5
    assert storage.peak_max_per_node() == 7
    assert len(storage.snapshots) == 2


def test_notification_delay_recording():
    from repro.metrics.recorder import MetricsRecorder

    recorder = MetricsRecorder()
    assert recorder.notification_delay_summary().count == 0
    recorder.record_notification_delay(0.5)
    recorder.record_notification_delay(1.5)
    summary = recorder.notification_delay_summary()
    assert summary.count == 2
    assert summary.mean == 1.0
    assert summary.minimum == 0.5 and summary.maximum == 1.5


def test_notification_batch_accounting():
    from repro.metrics.recorder import MetricsRecorder

    recorder = MetricsRecorder()
    recorder.record_notification_batch(3)
    recorder.record_notification_batch(1)
    assert recorder.notification_batches == 2
    assert recorder.matched_notifications == 4
