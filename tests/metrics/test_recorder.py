"""Edge cases of the run-level recorder aggregates.

``notification_delay_summary`` and the ``StorageStats`` peak views are
read by every figure harness at the end of a run; these tests pin their
behavior for the degenerate runs (no notifications, no snapshots,
snapshots with no live nodes) where a naive max()/mean() would raise.
"""

from repro.metrics.counters import StorageStats
from repro.metrics.recorder import MetricsRecorder


def test_notification_delay_summary_empty():
    recorder = MetricsRecorder()
    summary = recorder.notification_delay_summary()
    assert summary.count == 0
    assert summary.mean == 0.0
    assert summary.maximum == 0.0


def test_notification_delay_summary_values():
    recorder = MetricsRecorder()
    for delay in (0.1, 0.3, 0.2):
        recorder.record_notification_delay(delay)
    summary = recorder.notification_delay_summary()
    assert summary.count == 3
    assert abs(summary.mean - 0.2) < 1e-12
    assert summary.minimum == 0.1
    assert summary.maximum == 0.3


def test_storage_peaks_with_no_snapshots():
    storage = StorageStats()
    assert storage.peak_max_per_node() == 0
    assert storage.peak_mean_per_node() == 0.0
    assert storage.latest() == {}
    assert storage.max_per_node() == 0
    assert storage.mean_per_node() == 0.0


def test_storage_peaks_with_all_empty_counts():
    storage = StorageStats()
    storage.snapshot(1.0, {})
    storage.snapshot(2.0, {})
    assert storage.peak_max_per_node() == 0
    assert storage.peak_mean_per_node() == 0.0


def test_storage_peaks_track_maximum_across_snapshots():
    storage = StorageStats()
    storage.snapshot(1.0, {1: 4, 2: 2})  # mean 3.0, max 4
    storage.snapshot(2.0, {1: 1, 2: 1})  # decayed (e.g. TTL expiry)
    storage.snapshot(3.0, {})  # everyone gone
    assert storage.peak_max_per_node() == 4
    assert storage.peak_mean_per_node() == 3.0
    # latest() reflects the final (empty) state, not the peak.
    assert storage.max_per_node() == 0


def test_storage_peak_mean_ignores_empty_snapshots_in_denominator():
    storage = StorageStats()
    storage.snapshot(1.0, {})
    storage.snapshot(2.0, {1: 2})
    assert storage.peak_mean_per_node() == 2.0
