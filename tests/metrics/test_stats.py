"""Descriptive-statistics helpers."""

from hypothesis import given, strategies as st

from repro.metrics.stats import summarize


def test_empty_sample():
    summary = summarize([])
    assert summary.count == 0
    assert summary.mean == summary.maximum == summary.p95 == 0.0


def test_single_value():
    summary = summarize([7.0])
    assert summary.count == 1
    assert summary.mean == summary.minimum == summary.maximum == 7.0
    assert summary.stdev == 0.0
    assert summary.p50 == summary.p95 == 7.0


def test_known_sample():
    summary = summarize([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
    assert summary.mean == 5.5
    assert summary.minimum == 1 and summary.maximum == 10
    assert summary.p50 == 5
    assert summary.p95 == 10
    assert summary.p99 == 10


def test_p99_separates_from_p95():
    values = list(range(1, 201))  # 1..200: p95 -> 190, p99 -> 198
    summary = summarize(values)
    assert summary.p95 == 190
    assert summary.p99 == 198


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_property_bounds_and_order(values):
    summary = summarize(values)
    assert summary.minimum <= summary.p50 <= summary.p95 <= summary.p99
    assert summary.p99 <= summary.maximum
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.count == len(values)
    assert summary.stdev >= 0
