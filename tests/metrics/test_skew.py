"""Skew analytics: known-answer distributions and detector edge cases."""

import pytest

from repro.metrics.skew import (
    OverloadDetector,
    gini,
    p99_mean_ratio,
    skew_summary,
    top_k,
)


class TestGini:
    def test_empty_and_singleton_are_zero(self):
        assert gini([]) == 0.0
        assert gini([42.0]) == 0.0

    def test_all_equal_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_all_zero_is_zero(self):
        assert gini([0, 0, 0]) == 0.0

    def test_total_concentration_approaches_one(self):
        # One of n entities carries everything: G = (n - 1) / n.
        assert gini([0, 0, 0, 100]) == pytest.approx(3 / 4)
        assert gini([0] * 99 + [1]) == pytest.approx(99 / 100)

    def test_known_hand_computed_value(self):
        # Sorted [1, 2, 3, 4]: Σ i·xᵢ = 1+4+9+16 = 30, total = 10.
        # G = 2·30 / (4·10) - 5/4 = 1.5 - 1.25 = 0.25.
        assert gini([3, 1, 4, 2]) == pytest.approx(0.25)

    def test_order_invariant(self):
        assert gini([9, 1, 5]) == gini([1, 5, 9])


class TestTopK:
    def test_hottest_first(self):
        loads = {1: 5.0, 2: 9.0, 3: 1.0}
        assert top_k(loads, 2) == [(2, 9.0), (1, 5.0)]

    def test_ties_break_toward_smaller_id(self):
        loads = {7: 3.0, 2: 3.0, 5: 3.0}
        assert top_k(loads, 3) == [(2, 3.0), (5, 3.0), (7, 3.0)]

    def test_k_larger_than_population(self):
        assert top_k({1: 1.0}, 10) == [(1, 1.0)]

    def test_nonpositive_k_is_empty(self):
        assert top_k({1: 1.0}, 0) == []


class TestP99MeanRatio:
    def test_empty_is_zero(self):
        assert p99_mean_ratio([]) == 0.0

    def test_zero_mean_is_zero(self):
        assert p99_mean_ratio([0, 0]) == 0.0

    def test_uniform_is_one(self):
        assert p99_mean_ratio([4, 4, 4, 4]) == pytest.approx(1.0)

    def test_skewed_tail(self):
        # 98 ones + two 100s: mean = 2.98; nearest-rank p99 over 100
        # values is the 99th sorted value (index 98) = 100.
        values = [1.0] * 98 + [100.0, 100.0]
        ratio = p99_mean_ratio(values)
        assert ratio == pytest.approx(100.0 / 2.98)


class TestSkewSummary:
    def test_summary_fields(self):
        loads = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        summary = skew_summary(loads, k=2)
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.gini == pytest.approx(0.25)
        assert summary.top == ((4, 4.0), (3, 3.0))

    def test_as_dict_is_json_shaped(self):
        record = skew_summary({1: 2.0}, k=1).as_dict()
        assert record["count"] == 1
        assert record["top"] == [[1, 2.0]]


class TestOverloadDetector:
    def test_empty_window_emits_nothing(self):
        detector = OverloadDetector()
        assert detector.observe(1.0, {}) == []
        assert detector.events == []

    def test_single_node_is_its_own_median(self):
        # One node's delta IS the median, so ratio == 1 < threshold.
        detector = OverloadDetector(threshold=4.0)
        assert detector.observe(1.0, {7: 100.0}) == []

    def test_hot_node_above_median_multiple_fires(self):
        detector = OverloadDetector(threshold=4.0)
        loads = {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 50.0}
        events = detector.observe(1.0, loads)
        assert [event.node for event in events] == [5]
        event = events[0]
        assert event.window_load == 50.0
        assert event.median == 1.0
        assert event.ratio == pytest.approx(50.0)
        assert event.t == 1.0

    def test_windowed_deltas_not_cumulative(self):
        # A node hot in window 1 but idle in window 2 only fires once.
        detector = OverloadDetector(threshold=4.0)
        first = detector.observe(1.0, {1: 1.0, 2: 1.0, 3: 50.0})
        assert [event.node for event in first] == [3]
        # Cumulative loads unchanged for 3 => zero delta this window.
        second = detector.observe(2.0, {1: 2.0, 2: 2.0, 3: 50.0})
        assert second == []

    def test_quiet_window_uses_min_median_floor(self):
        # All-zero median falls back to min_median=1.0, so a lone
        # worker must clear threshold * 1.0, not threshold * 0.
        detector = OverloadDetector(threshold=4.0, min_median=1.0)
        loads = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0, 5: 3.0}
        assert detector.observe(1.0, loads) == []
        loads_hot = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0, 5: 3.0 + 4.5}
        events = detector.observe(2.0, loads_hot)
        assert [event.node for event in events] == [5]

    def test_tied_hot_nodes_fire_in_id_order(self):
        detector = OverloadDetector(threshold=2.0)
        loads = {9: 50.0, 1: 50.0, 2: 1.0, 3: 1.0, 4: 1.0}
        events = detector.observe(1.0, loads)
        assert [event.node for event in events] == [1, 9]

    def test_at_cutoff_does_not_fire(self):
        # Strictly-above semantics: exactly threshold x median is OK.
        detector = OverloadDetector(threshold=4.0)
        loads = {1: 2.0, 2: 2.0, 3: 2.0, 4: 8.0}
        assert detector.observe(1.0, loads) == []

    def test_even_count_median_averages_middle_two(self):
        detector = OverloadDetector(threshold=4.0)
        # Deltas [1, 3, 5, 100]: median = (3 + 5) / 2 = 4; cutoff 16.
        events = detector.observe(1.0, {1: 1.0, 2: 3.0, 3: 5.0, 4: 100.0})
        assert [event.node for event in events] == [4]
        assert events[0].median == pytest.approx(4.0)

    def test_node_absent_from_sample_keeps_its_history(self):
        detector = OverloadDetector(threshold=2.0)
        detector.observe(1.0, {1: 10.0, 2: 10.0, 3: 10.0})
        # Node 3 absent now: loads dict omits idle nodes; its previous
        # cumulative value is simply dropped from the new window.
        events = detector.observe(2.0, {1: 11.0, 2: 11.0})
        assert events == []

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            OverloadDetector(threshold=0.0)
        with pytest.raises(ValueError):
            OverloadDetector(min_median=0.0)

    def test_events_accumulate_across_windows(self):
        detector = OverloadDetector(threshold=2.0)
        detector.observe(1.0, {1: 1.0, 2: 1.0, 3: 30.0})
        detector.observe(2.0, {1: 2.0, 2: 2.0, 3: 60.0})
        assert [event.t for event in detector.events] == [1.0, 2.0]
        assert {event.node for event in detector.events} == {3}
