"""Audit records survive the JSONL export/load round trip (format v2)."""

from __future__ import annotations

import json

from repro.audit.records import (
    CHORD_FINGER_MISMATCH,
    VIOLATION_TYPES,
    ProbeRecord,
    Violation,
)
from repro.telemetry import Telemetry
from repro.telemetry.export import FORMAT_VERSION, load_jsonl, write_jsonl


class _FakeAudit:
    def __init__(self, violations, probes):
        self.violations = violations
        self.probes = probes


def test_violation_and_probe_round_trip(tmp_path):
    violation = Violation(
        CHORD_FINGER_MISMATCH, 3.5, node=42, mapping="keyspace-split",
        detail="slot 0 diverged",
    )
    probe = ProbeRecord(
        t=4.0, overlay="chord", nodes_total=10, nodes_checked=6,
        nodes_stale=3, nodes_cold=1, max_staleness=2, violations=1,
    )
    telemetry = Telemetry()
    telemetry.registry.histogram("audit.notification_latency").observe(0.25)
    telemetry.audit = _FakeAudit([violation], [probe])
    path = tmp_path / "audited.jsonl"
    write_jsonl(telemetry, path)

    dump = load_jsonl(path)
    assert dump.meta["version"] == FORMAT_VERSION
    assert dump.violations == [violation]
    assert dump.probes == [probe]
    histogram = dump.histograms[0]
    assert histogram["p99"] == 0.25  # v2 histogram records carry p99


def test_unaudited_export_has_no_audit_records(tmp_path):
    telemetry = Telemetry()
    path = tmp_path / "plain.jsonl"
    write_jsonl(telemetry, path)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert all(r["type"] not in ("violation", "probe") for r in records)
    dump = load_jsonl(path)
    assert dump.violations == [] and dump.probes == []


def test_violation_types_are_distinct():
    assert len(set(VIOLATION_TYPES)) == len(VIOLATION_TYPES)
