"""A healthy run must audit clean for every overlay × mapping pair.

This is the auditor's false-positive gate: real subscribe/publish
traffic over each overlay family and each ak-mapping, with structural
probes and the delivery oracle running, must end with zero violations
and a non-trivial amount of audited, correctly-delivered traffic.
"""

from __future__ import annotations

import pytest

from tests.audit.conftest import build_audited_system

from repro.core.subscriptions import Subscription
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.pastry import PastryOverlay

OVERLAYS = {
    "chord": ChordOverlay,
    "pastry": PastryOverlay,
    "can": CanOverlay,
}
MAPPINGS = ("attribute-split", "keyspace-split", "selective-attribute")


@pytest.mark.parametrize("overlay_name", sorted(OVERLAYS))
@pytest.mark.parametrize("mapping_name", MAPPINGS)
def test_clean_run_reports_zero_violations(overlay_name, mapping_name):
    sim, system, auditor, space = build_audited_system(
        OVERLAYS[overlay_name], mapping_name=mapping_name, nodes=24
    )
    nodes = sorted(system.overlay.node_ids())
    subscriptions = [
        Subscription.build(space, a1=(lo, lo + 400)) for lo in (0, 200, 500)
    ]
    for node, sigma in zip(nodes, subscriptions):
        system.subscribe(node, sigma)
    sim.run()

    # Publish well past the install-grace window; both events match at
    # least one stored subscription.
    t0 = sim.now + 10.0
    for offset, a1 in enumerate((100, 600)):
        sim.call_at(
            t0 + offset,
            lambda value=a1: system.publish(
                nodes[-1], space.make_event(a1=value, a2=3)
            ),
        )
    auditor.schedule_probes(5.0, horizon=t0 + 5.0)
    sim.run()

    report = auditor.finalize()
    assert report.ok, [v.as_dict() for v in report.violations]
    assert report.publications_audited == 2
    assert report.publications_indeterminate == 0
    assert report.deliveries_true >= 2
    assert report.deliveries_false == 0
    assert report.probes and all(p.violations == 0 for p in report.probes)
