"""Each injected corruption class must raise its distinct violation type.

Every test corrupts exactly one piece of state *after* forcing the
touched nodes current (the probes only verify nodes whose version
matches the membership version), then asserts the auditor reports the
matching violation type — and that the pre-corruption probe was clean.
"""

from __future__ import annotations

from tests.audit.conftest import build_audited_system

from repro.audit import AuditConfig
from repro.audit.records import (
    CAN_EXPRESS_MISMATCH,
    CAN_ZONE_OVERLAP,
    CHORD_FINGER_MISMATCH,
    MAPPING_INTERSECTION,
    NOTIFICATION_FALSE_POSITIVE,
    NOTIFICATION_MISSED,
    NOTIFICATION_UNKNOWN,
    PASTRY_LEAF_ASYMMETRY,
)
from repro.core.payloads import Notification, NotifyPayload
from repro.core.subscriptions import Subscription
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.pastry import PastryOverlay


def vtypes(auditor) -> set[str]:
    return {violation.vtype for violation in auditor.violations}


def test_corrupt_finger_slot_detected():
    sim, system, auditor, _ = build_audited_system(ChordOverlay)
    overlay = system.overlay
    node_id = sorted(overlay.node_ids())[0]
    node = overlay.node(node_id)
    node.fingers()  # materialize at the current ring version
    clean = auditor.run_probe()
    assert clean.violations == 0

    truth = overlay.compute_finger_slots(node_id)
    wrong = next(n for n in sorted(overlay.node_ids()) if n != truth[0])
    node._finger_slots[0] = wrong
    record = auditor.run_probe()
    assert record.violations >= 1
    assert CHORD_FINGER_MISMATCH in vtypes(auditor)


def test_desymmetrized_leaf_set_detected():
    sim, system, auditor, _ = build_audited_system(PastryOverlay)
    overlay = system.overlay
    node_id = sorted(overlay.node_ids())[0]
    node = overlay.node(node_id)
    node.leaf_set()
    node.routing_table()
    leaf_id = node.leaf_set()[0]
    leaf = overlay.node(leaf_id)
    leaf.leaf_set()
    leaf.routing_table()
    clean = auditor.run_probe()
    assert clean.violations == 0

    # Ground-truth leaf sets are symmetric; drop one side of the pair.
    leaf._leaf_set.remove(node_id)
    auditor.run_probe()
    assert PASTRY_LEAF_ASYMMETRY in vtypes(auditor)


def test_overlapping_can_zones_detected():
    sim, system, auditor, _ = build_audited_system(CanOverlay)
    overlay = system.overlay
    first, second = sorted(overlay.node_ids())[:2]
    overlay.node(first).cells()
    overlay.node(second).cells()
    clean = auditor.run_probe()
    assert clean.violations == 0

    overlay.node(second)._cells = list(overlay.node(first).cells())
    auditor.run_probe()
    assert CAN_ZONE_OVERLAP in vtypes(auditor)


def test_corrupt_can_express_link_detected():
    sim, system, auditor, _ = build_audited_system(CanOverlay)
    overlay = system.overlay
    node_id = sorted(overlay.node_ids())[0]
    node = overlay.node(node_id)
    node._express_table()  # materialize at the current zone version
    clean = auditor.run_probe()
    assert clean.violations == 0

    truth = overlay.compute_express_links(node_id)
    wrong = next(n for n in sorted(overlay.node_ids()) if n != truth[-1])
    node._express[-1] = wrong
    record = auditor.run_probe()
    assert record.violations >= 1
    assert CAN_EXPRESS_MISMATCH in vtypes(auditor)


def test_suppressed_notification_detected():
    sim, system, auditor, space = build_audited_system(
        ChordOverlay, audit=AuditConfig(delivery_deadline=5.0)
    )
    nodes = sorted(system.overlay.node_ids())
    sigma = Subscription.build(space, a1=(0, 999))
    system.subscribe(nodes[0], sigma)
    sim.run()

    # Swallow every rendezvous-to-subscriber unicast, then publish a
    # matching event well clear of the install-grace window.
    system.send_notification = lambda *args, **kwargs: None
    sim.call_at(
        sim.now + 10.0,
        lambda: system.publish(nodes[1], space.make_event(a1=500, a2=7)),
    )
    sim.run()
    report = auditor.finalize()
    assert NOTIFICATION_MISSED in vtypes(auditor)
    assert report.publications_audited == 1
    assert not report.ok


def test_false_positive_notification_detected():
    sim, system, auditor, space = build_audited_system(ChordOverlay)
    nodes = sorted(system.overlay.node_ids())
    sigma = Subscription.build(space, a1=(0, 100))
    system.subscribe(nodes[0], sigma)
    sim.run()

    # Hand-deliver an event the stored subscription does not match.
    bogus = Notification(
        event=space.make_event(a1=900, a2=1),
        subscription_id=sigma.subscription_id,
        matched_at=nodes[2],
        published_at=sim.now,
    )
    system.deliver_notifications(
        nodes[0], NotifyPayload(subscriber=nodes[0], notifications=(bogus,))
    )
    assert NOTIFICATION_FALSE_POSITIVE in vtypes(auditor)

    unknown = Notification(
        event=space.make_event(a1=1, a2=1),
        subscription_id=999_999_999,
        matched_at=nodes[2],
        published_at=sim.now,
    )
    system.deliver_notifications(
        nodes[0], NotifyPayload(subscriber=nodes[0], notifications=(unknown,))
    )
    assert NOTIFICATION_UNKNOWN in vtypes(auditor)


def test_broken_mapping_intersection_detected():
    sim, system, auditor, space = build_audited_system(ChordOverlay)
    nodes = sorted(system.overlay.node_ids())
    sigma = Subscription.build(space, a1=(0, 999))
    system.subscribe(nodes[0], sigma)
    sim.run()

    # Break EK(e) so it cannot intersect SK(σ): the auditor must flag
    # the mapping contract (§3) at publish time, not a downstream miss.
    sk = system.mapping.subscription_keys(sigma)
    free_key = next(k for k in range(system.overlay.keyspace.size) if k not in sk)
    system.mapping.event_keys = lambda event: frozenset({free_key})
    sim.call_at(
        sim.now + 10.0,
        lambda: system.publish(nodes[1], space.make_event(a1=500, a2=7)),
    )
    sim.run()
    auditor.finalize()
    assert MAPPING_INTERSECTION in vtypes(auditor)
