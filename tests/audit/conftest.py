"""Shared builders for the audit suite.

The auditor must work against every overlay family, so these helpers
build a full stack (sim + overlay + system + auditor) for a given
overlay class and ak-mapping, unlike the Chord-only experiment runner.
"""

from __future__ import annotations

import random

from repro.audit import AuditConfig, Auditor
from repro.core.events import EventSpace
from repro.core.mappings import make_mapping
from repro.core.system import PubSubConfig, PubSubSystem
from repro.overlay.ids import KeySpace
from repro.sim import Simulator

BITS = 13


def build_audited_system(
    overlay_cls,
    mapping_name: str = "selective-attribute",
    nodes: int = 32,
    seed: int = 3,
    audit: AuditConfig | None = None,
    config: PubSubConfig | None = None,
):
    """A converged overlay of ``overlay_cls`` with an attached auditor."""
    sim = Simulator()
    keyspace = KeySpace(BITS)
    overlay = overlay_cls(sim, keyspace)
    overlay.build_ring(random.Random(seed).sample(range(keyspace.size), nodes))
    space = EventSpace.uniform(("a1", "a2"), 1000)
    mapping = make_mapping(mapping_name, space, keyspace)
    system = PubSubSystem(sim, overlay, mapping, config)
    auditor = Auditor(system, audit or AuditConfig())
    return sim, system, auditor, space
