"""Seeded brute-vs-grid matcher parity (the grid's correctness oracle).

The grid index is the default rendezvous matcher, so it must agree with
the brute-force reference *exactly* — on every event, for any mix of
narrow, wide, boundary, equality, partial and empty-constraint
subscriptions.  This is a seeded property test: ≥500 random
subscriptions × ≥200 random events (plus adversarial boundary probes),
several grid resolutions, and add/remove churn in the middle.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.matching import BruteForceMatcher, GridIndexMatcher

DOMAIN = 10_000
SPACE = EventSpace.uniform(("a1", "a2", "a3", "a4"), DOMAIN)


def random_subscription(rng: random.Random) -> Subscription:
    """A subscription stressing every indexing case."""
    kind = rng.random()
    if kind < 0.04:
        # Empty constraint set: must land in the grid's catch-all.
        return Subscription(space=SPACE, constraints=())
    constraints = []
    dims = rng.sample(range(SPACE.dimensions), rng.randint(1, SPACE.dimensions))
    for attribute in dims:
        style = rng.random()
        if style < 0.15:
            low = high = rng.randrange(DOMAIN)  # equality
        elif style < 0.25:
            # Boundary-hugging range at a domain edge.
            if rng.random() < 0.5:
                low, high = 0, rng.randrange(DOMAIN // 50 + 1)
            else:
                low, high = DOMAIN - 1 - rng.randrange(DOMAIN // 50 + 1), DOMAIN - 1
        elif style < 0.35:
            # Wide range spanning many buckets.
            low = rng.randrange(DOMAIN // 2)
            high = min(DOMAIN - 1, low + rng.randrange(DOMAIN // 2))
        else:
            # The paper's narrow range (≤ 3% of the domain).
            low = rng.randrange(DOMAIN)
            high = min(DOMAIN - 1, low + rng.randrange(max(1, DOMAIN // 33)))
        constraints.append(Constraint(attribute=attribute, low=low, high=high))
    return Subscription(space=SPACE, constraints=tuple(constraints))


def random_event(rng: random.Random, subscriptions: list[Subscription]):
    """Uniform draws plus draws aimed at stored-range boundaries."""
    if subscriptions and rng.random() < 0.5:
        target = rng.choice(subscriptions)
        values = []
        for attribute in range(SPACE.dimensions):
            constraint = target.constraint_on(attribute)
            if constraint is None or rng.random() < 0.2:
                values.append(rng.randrange(DOMAIN))
            else:
                # Probe exactly at / next to the constraint boundaries,
                # where off-by-one bucket registration bugs live.
                pick = rng.choice(
                    (
                        constraint.low,
                        constraint.high,
                        max(0, constraint.low - 1),
                        min(DOMAIN - 1, constraint.high + 1),
                    )
                )
                values.append(pick)
        return SPACE.make_event(**dict(zip(("a1", "a2", "a3", "a4"), values)))
    values = {name: rng.randrange(DOMAIN) for name in ("a1", "a2", "a3", "a4")}
    return SPACE.make_event(**values)


@pytest.mark.parametrize("buckets", [7, 64, 256])
def test_grid_matches_brute_exactly(buckets):
    rng = random.Random(f"parity:{buckets}")
    brute = BruteForceMatcher()
    grid = GridIndexMatcher(SPACE, buckets_per_attribute=buckets)

    subscriptions = [random_subscription(rng) for _ in range(500)]
    for subscription in subscriptions:
        brute.add(subscription)
        grid.add(subscription)
    assert len(brute) == len(grid) == len(subscriptions)

    def assert_parity(event):
        expected = sorted(s.subscription_id for s in brute.match(event))
        got = [s.subscription_id for s in grid.match(event)]
        assert got == sorted(got), "grid output must be sorted by id"
        assert got == expected

    for _ in range(120):
        assert_parity(random_event(rng, subscriptions))

    # Churn: remove a third, then keep matching.
    removed = rng.sample(subscriptions, len(subscriptions) // 3)
    for subscription in removed:
        assert brute.remove(subscription.subscription_id)
        assert grid.remove(subscription.subscription_id)
    survivors = [s for s in subscriptions if s not in removed]
    for _ in range(80):
        assert_parity(random_event(rng, survivors))

    # Corner events of the whole domain.
    for corner in (0, DOMAIN - 1):
        assert_parity(
            SPACE.make_event(a1=corner, a2=corner, a3=corner, a4=corner)
        )


def test_grid_skips_attributes_with_empty_grids():
    """All subscriptions anchored on one attribute: other grids stay empty."""
    rng = random.Random("anchor")
    brute = BruteForceMatcher()
    grid = GridIndexMatcher(SPACE, buckets_per_attribute=32)
    for _ in range(50):
        low = rng.randrange(DOMAIN - 10)
        subscription = Subscription(
            space=SPACE,
            constraints=(Constraint(attribute=2, low=low, high=low + 10),),
        )
        brute.add(subscription)
        grid.add(subscription)
    assert sum(1 for buckets in grid._grid if buckets) == 1
    for _ in range(60):
        event = SPACE.make_event(
            a1=rng.randrange(DOMAIN),
            a2=rng.randrange(DOMAIN),
            a3=rng.randrange(DOMAIN),
            a4=rng.randrange(DOMAIN),
        )
        assert [s.subscription_id for s in grid.match(event)] == sorted(
            s.subscription_id for s in brute.match(event)
        )
