"""Covering semantics: order laws, index surgery, store parity.

Three layers, all pinning the tentpole guarantee that collapsing
covered subscriptions is invisible to delivery:

1. hypothesis property tests for ``Subscription.covers`` — reflexive,
   transitive, antisymmetric up to predicate equality, and *exactly*
   the semantic relation (σ₁ covers σ₂ ⟺ every event matching σ₂
   matches σ₁, checked exhaustively over a small event space);
2. unit tests for :class:`~repro.matching.covering.CoveringIndex`
   surgery — collapse, root demotion, leaf splice, root-death
   promotion, and the counters the LoadMeter exports;
3. a hypothesis state machine driving a covering grid store and an
   uncollapsed brute store through random install / refresh / expire /
   unsubscribe / churn interleavings, asserting both match the exact
   same subscriber set at every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.events import EventSpace
from repro.core.payloads import SubscribePayload
from repro.core.rendezvous import SubscriptionStore
from repro.core.subscriptions import Constraint, Subscription
from repro.matching.covering import CoveringIndex

SPACE = EventSpace.uniform(("a1", "a2"), 6)


def build(ranges):
    """Subscription from {attribute: (low, high)} over SPACE."""
    return Subscription(
        space=SPACE,
        constraints=tuple(
            Constraint(attribute=attribute, low=low, high=high)
            for attribute, (low, high) in sorted(ranges.items())
        ),
    )


@st.composite
def subscriptions(draw):
    """Random (possibly partial, possibly full-domain) subscriptions."""
    ranges = {}
    for attribute in range(SPACE.dimensions):
        if draw(st.booleans()):
            low = draw(st.integers(0, 5))
            high = draw(st.integers(low, 5))
            ranges[attribute] = (low, high)
    if not ranges:
        low = draw(st.integers(0, 5))
        ranges[0] = (low, draw(st.integers(low, 5)))
    return build(ranges)


def semantic_covers(a: Subscription, b: Subscription) -> bool:
    """Ground truth by exhaustion: every event in b is in a."""
    for v1 in range(6):
        for v2 in range(6):
            event = SPACE.make_event(a1=v1, a2=v2)
            if b.matches(event) and not a.matches(event):
                return False
    return True


class TestCoversLaws:
    @given(subscriptions())
    @settings(max_examples=100, deadline=None)
    def test_reflexive(self, sub):
        assert sub.covers(sub)

    @given(subscriptions(), subscriptions(), subscriptions())
    @settings(max_examples=200, deadline=None)
    def test_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(subscriptions(), subscriptions())
    @settings(max_examples=200, deadline=None)
    def test_antisymmetric_up_to_equality(self, a, b):
        if a.covers(b) and b.covers(a):
            for attribute in range(SPACE.dimensions):
                ca = a.effective_constraint(attribute)
                cb = b.effective_constraint(attribute)
                assert (ca.low, ca.high) == (cb.low, cb.high)

    @given(subscriptions(), subscriptions())
    @settings(max_examples=200, deadline=None)
    def test_exactly_the_semantic_relation(self, a, b):
        # Interval containment per attribute is sound *and* complete
        # for conjunctions of non-empty ranges, so covers() must agree
        # with the exhaustive event-set definition in both directions
        # — including the fast-path rejection on attribute-set
        # mismatch and the full-domain-constraint-as-no-op cases.
        assert a.covers(b) == semantic_covers(a, b)

    def test_fast_path_attribute_mismatch(self):
        narrow = build({0: (2, 3)})
        other_attr = build({1: (2, 3)})
        assert not narrow.covers(other_attr)
        assert not other_attr.covers(narrow)

    def test_full_domain_constraint_is_no_op(self):
        everything = build({0: (0, 5)})
        partial = build({1: (1, 4)})
        assert everything.covers(partial)
        assert partial.covers(partial)


class TestCoveringIndexSurgery:
    def test_collapse_under_deepest_coverer(self):
        index = CoveringIndex()
        wide = build({0: (0, 5)})
        mid = build({0: (1, 4)})
        narrow = build({0: (2, 3)})
        assert index.add(wide) == (True, [])
        assert index.add(mid) == (False, [])
        assert index.add(narrow) == (False, [])
        assert index.root_count == 1
        assert index.collapsed_count == 2
        assert index.collapsed_total == 2

    def test_new_root_demotes_covered_roots(self):
        index = CoveringIndex()
        a = build({0: (1, 2)})
        b = build({0: (3, 4)})
        index.add(a)
        index.add(b)
        wide = build({0: (0, 5)})
        became_root, demoted = index.add(wide)
        assert became_root
        assert sorted(demoted) == sorted(
            [a.subscription_id, b.subscription_id]
        )
        assert index.root_count == 1
        assert index.collapsed_total == 2

    def test_removing_leaf_splices_children_to_parent(self):
        index = CoveringIndex()
        wide = build({0: (0, 5)})
        mid = build({0: (1, 4)})
        narrow = build({0: (2, 3)})
        for sub in (wide, mid, narrow):
            index.add(sub)
        was_root, promoted = index.remove(mid.subscription_id)
        assert not was_root and promoted == []
        assert index.root_count == 1
        assert index.collapsed_count == 1
        # narrow now hangs directly under wide; removing wide promotes it.
        was_root, promoted = index.remove(wide.subscription_id)
        assert was_root
        assert [s.subscription_id for s in promoted] == [
            narrow.subscription_id
        ]
        assert index.promotions_total == 1
        assert index.is_root(narrow.subscription_id)

    def test_expand_prunes_failed_subtrees(self):
        index = CoveringIndex()
        wide = build({0: (0, 5)})
        left = build({0: (0, 2)})
        right = build({0: (3, 5)})
        leftmost = build({0: (0, 1)})
        for sub in (wide, left, right, leftmost):
            index.add(sub)
        event = SPACE.make_event(a1=4, a2=0)
        matched, tested, hit = index.expand([wide], event)
        assert set(matched) == {wide.subscription_id, right.subscription_id}
        # left fails and prunes leftmost without testing it.
        assert tested == 2
        assert hit == 1


def _payload(sub, ttl=None):
    return SubscribePayload(
        subscription=sub, subscriber=1, ttl=ttl, groups=((0,),)
    )


class CoveringParityMachine(RuleBasedStateMachine):
    """Covering grid store vs uncollapsed brute oracle, step for step."""

    def __init__(self):
        super().__init__()
        self.covering_store = SubscriptionStore(
            SPACE, matcher="grid", covering=True
        )
        self.oracle = SubscriptionStore(SPACE, matcher="brute", covering=False)
        self.now = 0.0
        self.payloads: list = []

    @rule(
        sub=subscriptions(),
        ttl=st.one_of(st.none(), st.floats(1.0, 20.0)),
        keys=st.sets(st.integers(0, 6), min_size=1, max_size=3),
    )
    def install(self, sub, ttl, keys):
        payload = _payload(sub, ttl)
        self.payloads.append(payload)
        self.covering_store.put(payload, set(keys), self.now)
        self.oracle.put(payload, set(keys), self.now)

    @rule(index=st.integers(0, 10**6), keys=st.sets(st.integers(0, 6), min_size=1, max_size=3))
    def refresh(self, index, keys):
        if not self.payloads:
            return
        payload = self.payloads[index % len(self.payloads)]
        self.covering_store.put(payload, set(keys), self.now)
        self.oracle.put(payload, set(keys), self.now)

    @rule(index=st.integers(0, 10**6))
    def unsubscribe(self, index):
        if not self.payloads:
            return
        sid = self.payloads[index % len(self.payloads)].subscription.subscription_id
        assert self.covering_store.remove(sid) == self.oracle.remove(sid)

    @rule(
        index=st.integers(0, 10**6),
        keys=st.sets(st.integers(0, 6), min_size=1, max_size=2),
    )
    def churn_keys_away(self, index, keys):
        if not self.payloads:
            return
        sid = self.payloads[index % len(self.payloads)].subscription.subscription_id
        self.covering_store.remove_keys(sid, set(keys))
        self.oracle.remove_keys(sid, set(keys))

    @rule(delta=st.floats(0.1, 10.0))
    def advance_clock(self, delta):
        self.now += delta

    @rule()
    def purge(self):
        # Purge order differs between the stores internally (covering
        # may promote mid-purge); the *surviving* set must not.
        self.covering_store.purge_expired(self.now)
        self.oracle.purge_expired(self.now)

    @invariant()
    def matches_agree_everywhere(self):
        for v1 in (0, 2, 5):
            for v2 in (0, 3, 5):
                event = SPACE.make_event(a1=v1, a2=v2)
                got = sorted(
                    e.subscription.subscription_id
                    for e in self.covering_store.match(event, self.now)
                )
                expected = sorted(
                    e.subscription.subscription_id
                    for e in self.oracle.match(event, self.now)
                )
                assert got == expected, (v1, v2, got, expected)

    @invariant()
    def forest_partitions_the_store(self):
        index = self.covering_store.covering
        assert index is not None
        assert index.root_count + index.collapsed_count == len(
            self.covering_store
        )


TestCoveringParity = CoveringParityMachine.TestCase
TestCoveringParity.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
