"""Vectorized grid matcher: unit behavior + parity with grid and brute.

The vector engine inherits the grid's candidate generation, so any
divergence can only come from the vectorized verify — the parity sweep
therefore reuses the adversarial subscription/event mix of the
grid-vs-brute property suite, including add/remove churn (row reuse)
and growth past the initial matrix capacity.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.matching import (
    HAVE_NUMPY,
    BruteForceMatcher,
    GridIndexMatcher,
    make_vector_matcher,
)
from tests.matching.test_parity_property import (
    SPACE,
    random_event,
    random_subscription,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def sids(matched):
    return [s.subscription_id for s in matched]


def test_basic_match_and_remove():
    from repro.matching import VectorizedGridMatcher

    space = EventSpace.uniform(("a1", "a2"), 1000)
    matcher = VectorizedGridMatcher(space)
    s1 = Subscription.build(space, a1=(10, 20))
    s2 = Subscription.build(space, a1=(15, 30), a2=(0, 100))
    empty = Subscription(space=space, constraints=())  # catch-all row
    for subscription in (s1, s2, empty):
        matcher.add(subscription)
        matcher.add(subscription)  # idempotent re-add
    assert len(matcher) == 3
    both = space.make_event(a1=16, a2=50)
    assert sids(matcher.match(both)) == sorted(
        [s1.subscription_id, s2.subscription_id, empty.subscription_id]
    )
    assert matcher.remove(s1.subscription_id)
    assert not matcher.remove(s1.subscription_id)
    assert sids(matcher.match(both)) == sorted(
        [s2.subscription_id, empty.subscription_id]
    )


def test_rows_grow_past_initial_capacity():
    from repro.matching import VectorizedGridMatcher
    from repro.matching.vector import _INITIAL_ROWS

    space = EventSpace.uniform(("a1",), 10_000)
    matcher = VectorizedGridMatcher(space)
    stored = [
        Subscription.build(space, a1=(i, i)) for i in range(_INITIAL_ROWS * 2 + 5)
    ]
    for subscription in stored:
        matcher.add(subscription)
    probe = space.make_event(a1=_INITIAL_ROWS + 3)
    assert sids(matcher.match(probe)) == [
        stored[_INITIAL_ROWS + 3].subscription_id
    ]


def test_fallback_factory_returns_grid_when_numpy_missing(monkeypatch):
    import repro.matching.vector as vector

    monkeypatch.setattr(vector, "numpy", None)
    matcher = vector.make_vector_matcher(SPACE)
    assert type(matcher) is GridIndexMatcher


def test_parity_with_grid_and_brute_under_churn():
    rng = random.Random(20260808)
    vector = make_vector_matcher(SPACE)
    grid = GridIndexMatcher(SPACE)
    brute = BruteForceMatcher()
    stored: list[Subscription] = []
    for round_ in range(6):
        for _ in range(120):
            subscription = random_subscription(rng)
            stored.append(subscription)
            for matcher in (vector, grid, brute):
                matcher.add(subscription)
        if round_ % 2 == 1:
            rng.shuffle(stored)
            for victim in stored[: len(stored) // 3]:
                for matcher in (vector, grid, brute):
                    matcher.remove(victim.subscription_id)
            del stored[: len(stored) // 3]
        for _ in range(60):
            event = random_event(rng, stored)
            expected = sids(grid.match(event))
            assert sids(vector.match(event)) == expected
            assert sids(brute.match(event)) == expected
