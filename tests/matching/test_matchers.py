"""Matching engines: unit tests + brute-force equivalence property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.errors import DataModelError
from repro.matching import BruteForceMatcher, GridIndexMatcher

SPACE = EventSpace.uniform(("a1", "a2", "a3"), 1000)


def sigma(**ranges):
    return Subscription.build(SPACE, **ranges)


@pytest.mark.parametrize("engine", ["brute", "grid"])
def test_basic_add_match_remove(engine):
    matcher = (
        BruteForceMatcher() if engine == "brute" else GridIndexMatcher(SPACE)
    )
    s1 = sigma(a1=(10, 20))
    s2 = sigma(a1=(15, 30), a2=(0, 100))
    matcher.add(s1)
    matcher.add(s2)
    assert len(matcher) == 2
    assert s1.subscription_id in matcher

    hit_both = SPACE.make_event(a1=16, a2=50, a3=0)
    assert {s.subscription_id for s in matcher.match(hit_both)} == {
        s1.subscription_id,
        s2.subscription_id,
    }
    hit_one = SPACE.make_event(a1=11, a2=500, a3=0)
    assert [s.subscription_id for s in matcher.match(hit_one)] == [
        s1.subscription_id
    ]
    assert matcher.match(SPACE.make_event(a1=500, a2=50, a3=0)) == []

    assert matcher.remove(s1.subscription_id)
    assert not matcher.remove(s1.subscription_id)
    assert matcher.match(hit_one) == []


@pytest.mark.parametrize("engine", ["brute", "grid"])
def test_add_is_idempotent(engine):
    matcher = (
        BruteForceMatcher() if engine == "brute" else GridIndexMatcher(SPACE)
    )
    s = sigma(a1=(10, 20))
    matcher.add(s)
    matcher.add(s)
    assert len(matcher) == 1
    assert len(matcher.match(SPACE.make_event(a1=15, a2=0, a3=0))) == 1


def test_grid_handles_empty_subscription():
    matcher = GridIndexMatcher(SPACE)
    empty = Subscription(space=SPACE, constraints=())
    matcher.add(empty)
    assert matcher.match(SPACE.make_event(a1=1, a2=2, a3=3))
    assert matcher.remove(empty.subscription_id)
    assert not matcher.match(SPACE.make_event(a1=1, a2=2, a3=3))


def test_grid_rejects_wrong_space():
    other = EventSpace.uniform(("x",), 10)
    matcher = GridIndexMatcher(SPACE)
    with pytest.raises(DataModelError):
        matcher.add(Subscription.build(other, x=(0, 1)))


def test_grid_bucket_count_validation():
    with pytest.raises(DataModelError):
        GridIndexMatcher(SPACE, buckets_per_attribute=0)


def test_grid_range_spanning_many_buckets():
    matcher = GridIndexMatcher(SPACE, buckets_per_attribute=16)
    wide = sigma(a1=(0, 999))
    matcher.add(wide)
    for value in (0, 500, 999):
        assert matcher.match(SPACE.make_event(a1=value, a2=0, a3=0))
    matcher.remove(wide.subscription_id)
    assert not matcher.match(SPACE.make_event(a1=500, a2=0, a3=0))


@st.composite
def random_subscriptions(draw):
    constraints = []
    for attribute in range(3):
        if draw(st.booleans()):
            low = draw(st.integers(0, 999))
            high = draw(st.integers(low, min(999, low + 200)))
            constraints.append(Constraint(attribute=attribute, low=low, high=high))
    return Subscription(space=SPACE, constraints=tuple(constraints))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(random_subscriptions(), min_size=0, max_size=25),
    st.lists(
        st.tuples(st.integers(0, 999), st.integers(0, 999), st.integers(0, 999)),
        min_size=1,
        max_size=10,
    ),
)
def test_property_grid_equals_brute_force(subs, events):
    brute = BruteForceMatcher()
    grid = GridIndexMatcher(SPACE, buckets_per_attribute=32)
    for s in subs:
        brute.add(s)
        grid.add(s)
    for values in events:
        event = Event(space=SPACE, values=values)
        expected = sorted(s.subscription_id for s in brute.match(event))
        actual = sorted(s.subscription_id for s in grid.match(event))
        assert actual == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(random_subscriptions(), min_size=2, max_size=20),
    st.data(),
)
def test_property_equivalence_after_removals(subs, data):
    brute = BruteForceMatcher()
    grid = GridIndexMatcher(SPACE, buckets_per_attribute=32)
    for s in subs:
        brute.add(s)
        grid.add(s)
    to_remove = data.draw(
        st.lists(st.sampled_from(subs), min_size=1, max_size=len(subs), unique=True)
    )
    for s in to_remove:
        assert brute.remove(s.subscription_id) == grid.remove(s.subscription_id)
    event = SPACE.make_event(a1=500, a2=500, a3=500)
    assert sorted(s.subscription_id for s in brute.match(event)) == sorted(
        s.subscription_id for s in grid.match(event)
    )
