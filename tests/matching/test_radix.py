"""Radix/bitmap matcher: block decomposition and brute-force parity.

The radix matcher targets equality-dense subscription populations but
must agree with the brute-force oracle *exactly* on any mix — the same
bar the grid index is held to.  Alongside the seeded parity runs, the
decomposition itself is pinned: canonical radix blocks are disjoint,
aligned, maximal, and cover the range exactly; and the occupied-level
bitmap collapses to {0} for equality-only stores (the one-probe fast
path the matcher exists for).
"""

from __future__ import annotations

import random

from repro.core.events import EventSpace
from repro.core.subscriptions import Constraint, Subscription
from repro.matching import BruteForceMatcher, RadixBitmapMatcher
from repro.matching.radix import radix_blocks

from tests.matching.test_parity_property import (
    DOMAIN,
    SPACE,
    random_event,
    random_subscription,
)


# -- the block decomposition -----------------------------------------------


def covered(blocks):
    values = set()
    for prefix, level in blocks:
        start = prefix << level
        values.update(range(start, start + (1 << level)))
    return values


def test_blocks_cover_ranges_exactly():
    rng = random.Random("blocks")
    cases = [(0, 0), (0, 255), (1, 1), (5, 9), (0, 99), (37, 99)]
    cases += [
        tuple(sorted((rng.randrange(1024), rng.randrange(1024))))
        for _ in range(200)
    ]
    for low, high in cases:
        blocks = radix_blocks(low, high)
        assert covered(blocks) == set(range(low, high + 1))
        # Disjoint and aligned: total size equals the range width.
        assert sum(1 << level for _, level in blocks) == high - low + 1
        for prefix, level in blocks:
            assert (prefix << level) % (1 << level) == 0
        # Canonical bound: at most 2 blocks per bit of the domain.
        assert len(blocks) <= 2 * (1024).bit_length()


def test_equality_is_a_single_level_zero_block():
    assert radix_blocks(42, 42) == [(42, 0)]
    assert radix_blocks(0, 0) == [(0, 0)]


# -- parity with the brute-force oracle ------------------------------------


def assert_parity(brute, radix, event):
    expected = sorted(s.subscription_id for s in brute.match(event))
    got = [s.subscription_id for s in radix.match(event)]
    assert got == sorted(got), "radix output must be sorted by id"
    assert got == expected


def test_radix_matches_brute_exactly():
    rng = random.Random("radix-parity")
    brute = BruteForceMatcher()
    radix = RadixBitmapMatcher(SPACE)

    subscriptions = [random_subscription(rng) for _ in range(500)]
    for subscription in subscriptions:
        brute.add(subscription)
        radix.add(subscription)
    assert len(brute) == len(radix) == len(subscriptions)

    for _ in range(120):
        assert_parity(brute, radix, random_event(rng, subscriptions))

    # Churn: remove a third, then keep matching.
    removed = rng.sample(subscriptions, len(subscriptions) // 3)
    for subscription in removed:
        assert brute.remove(subscription.subscription_id)
        assert radix.remove(subscription.subscription_id)
    survivors = [s for s in subscriptions if s not in removed]
    for _ in range(80):
        assert_parity(brute, radix, random_event(rng, survivors))

    for corner in (0, DOMAIN - 1):
        assert_parity(
            brute,
            radix,
            SPACE.make_event(a1=corner, a2=corner, a3=corner, a4=corner),
        )


def test_equality_dense_store_probes_one_level():
    """The target workload: equality anchors keep the bitmap at {0}."""
    rng = random.Random("dense")
    brute = BruteForceMatcher()
    radix = RadixBitmapMatcher(SPACE)
    subscriptions = []
    for _ in range(300):
        values = {
            attribute: rng.randrange(DOMAIN)
            for attribute in rng.sample(
                range(SPACE.dimensions), rng.randint(1, SPACE.dimensions)
            )
        }
        subscription = Subscription(
            space=SPACE,
            constraints=tuple(
                Constraint(attribute=a, low=v, high=v)
                for a, v in sorted(values.items())
            ),
        )
        subscriptions.append(subscription)
        brute.add(subscription)
        radix.add(subscription)
    # Every anchor is an equality: only level 0 is occupied anywhere.
    assert all(bits in (0, 1) for bits in radix._level_bits)
    assert any(bits == 1 for bits in radix._level_bits)
    for _ in range(100):
        assert_parity(brute, radix, random_event(rng, subscriptions))


def test_removal_clears_the_level_bitmap():
    radix = RadixBitmapMatcher(SPACE)
    wide = Subscription(
        space=SPACE, constraints=(Constraint(attribute=1, low=16, high=4095),)
    )
    narrow = Subscription(
        space=SPACE, constraints=(Constraint(attribute=1, low=7, high=7),)
    )
    radix.add(wide)
    radix.add(narrow)
    assert radix._level_bits[1] & 1  # narrow sits at level 0
    assert radix._level_bits[1] & ~1  # wide occupies higher levels
    assert radix.remove(wide.subscription_id)
    assert radix._level_bits[1] == 1  # only the equality remains
    assert radix.remove(narrow.subscription_id)
    assert radix._level_bits == [0] * SPACE.dimensions
    assert not radix.remove(narrow.subscription_id)  # already gone


def test_store_accepts_radix_matcher():
    from repro.core.payloads import SubscribePayload
    from repro.core.rendezvous import SubscriptionStore

    store = SubscriptionStore(SPACE, matcher="radix")
    subscription = Subscription.build(SPACE, a1=17)
    store.put(
        SubscribePayload(
            subscription=subscription, subscriber=3, ttl=None, groups=()
        ),
        {17},
        now=0.0,
    )
    event = SPACE.make_event(a1=17, a2=0, a3=0, a4=0)
    assert [e.subscription.subscription_id for e in store.match(event, 0.0)] == [
        subscription.subscription_id
    ]
