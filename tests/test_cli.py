"""CLI smoke tests (direct main() invocation, captured stdout)."""

import pytest

from repro.cli import main


def test_run_command(capsys):
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "80",
        "--subscriptions", "15", "--publications", "15",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "keys per subscription" in out
    assert "hops per publication" in out


def test_run_with_optimizations(capsys):
    code = main([
        "run", "--mapping", "selective-attribute", "--nodes", "80",
        "--subscriptions", "10", "--publications", "10",
        "--collecting", "--buffer-period", "5",
        "--discretization", "1000", "--replication", "1",
    ])
    assert code == 0
    assert "notification" in capsys.readouterr().out


def test_run_event_space_partition(capsys):
    code = main([
        "run", "--mapping", "event-space-partition", "--nodes", "80",
        "--subscriptions", "10", "--publications", "10",
    ])
    assert code == 0


def test_figure_command_small(capsys):
    code = main([
        "figure", "fig9b", "--subscriptions", "20", "--nodes", "100",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "sub_hops" in out


def test_figure_routing(capsys):
    code = main(["figure", "routing", "--publications", "100", "--nodes", "100"])
    assert code == 0
    assert "cache_capacity" in capsys.readouterr().out


def test_trace_roundtrip(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main([
        "trace", "generate", "--out", str(path),
        "--subscriptions", "10", "--publications", "10", "--nodes", "60",
    ]) == 0
    assert path.exists()
    assert main(["trace", "replay", str(path), "--nodes", "60"]) == 0
    out = capsys.readouterr().out
    assert "operations replayed" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_trace_replay_missing_file():
    with pytest.raises(FileNotFoundError):
        main(["trace", "replay", "/nonexistent/trace.json"])


def test_run_rejects_bad_mapping():
    with pytest.raises(SystemExit):
        main(["run", "--mapping", "no-such-mapping"])


def test_run_rejects_bad_routing():
    with pytest.raises(SystemExit):
        main(["run", "--routing", "teleport"])


def test_run_with_temporal_locality(capsys):
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "60",
        "--subscriptions", "10", "--publications", "10",
        "--temporal-locality", "0.9",
    ])
    assert code == 0


def test_run_audit_then_audit_command(tmp_path, capsys):
    export = tmp_path / "audited.jsonl"
    report = tmp_path / "health.txt"
    code = main([
        "run", "--mapping", "selective-attribute", "--nodes", "60",
        "--subscriptions", "20", "--publications", "30",
        "--audit", "--telemetry", str(export),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "audit: publications audited" in out
    assert "audit: violations" in out

    code = main(["audit", str(export), "--report", str(report)])
    out = capsys.readouterr().out
    assert code == 0  # clean run: no violations
    assert "VERDICT: healthy" in out
    assert "VERDICT: healthy" in report.read_text()


def test_audit_command_rejects_unaudited_export(tmp_path, capsys):
    export = tmp_path / "plain.jsonl"
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "60",
        "--subscriptions", "10", "--publications", "10",
        "--telemetry", str(export),
    ])
    assert code == 0
    capsys.readouterr()
    assert main(["audit", str(export)]) == 2


def test_stats_reports_slo_percentiles(tmp_path, capsys):
    export = tmp_path / "audited.jsonl"
    assert main([
        "run", "--mapping", "selective-attribute", "--nodes", "60",
        "--subscriptions", "20", "--publications", "30",
        "--audit", "--telemetry", str(export),
    ]) == 0
    capsys.readouterr()
    assert main(["stats", str(export)]) == 0
    out = capsys.readouterr().out
    assert "audit violations" in out
    assert "audit.notification_latency p50/p95/p99" in out
