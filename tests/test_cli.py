"""CLI smoke tests (direct main() invocation, captured stdout)."""

import pytest

from repro.cli import main


def test_run_command(capsys):
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "80",
        "--subscriptions", "15", "--publications", "15",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "keys per subscription" in out
    assert "hops per publication" in out


def test_run_with_optimizations(capsys):
    code = main([
        "run", "--mapping", "selective-attribute", "--nodes", "80",
        "--subscriptions", "10", "--publications", "10",
        "--collecting", "--buffer-period", "5",
        "--discretization", "1000", "--replication", "1",
    ])
    assert code == 0
    assert "notification" in capsys.readouterr().out


def test_run_event_space_partition(capsys):
    code = main([
        "run", "--mapping", "event-space-partition", "--nodes", "80",
        "--subscriptions", "10", "--publications", "10",
    ])
    assert code == 0


def test_figure_command_small(capsys):
    code = main([
        "figure", "fig9b", "--subscriptions", "20", "--nodes", "100",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "sub_hops" in out


def test_figure_routing(capsys):
    code = main(["figure", "routing", "--publications", "100", "--nodes", "100"])
    assert code == 0
    assert "cache_capacity" in capsys.readouterr().out


def test_trace_roundtrip(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main([
        "trace", "generate", "--out", str(path),
        "--subscriptions", "10", "--publications", "10", "--nodes", "60",
    ]) == 0
    assert path.exists()
    assert main(["trace", "replay", str(path), "--nodes", "60"]) == 0
    out = capsys.readouterr().out
    assert "operations replayed" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_trace_replay_missing_file():
    with pytest.raises(FileNotFoundError):
        main(["trace", "replay", "/nonexistent/trace.json"])


def test_run_rejects_bad_mapping():
    with pytest.raises(SystemExit):
        main(["run", "--mapping", "no-such-mapping"])


def test_run_rejects_bad_routing():
    with pytest.raises(SystemExit):
        main(["run", "--routing", "teleport"])


def test_run_with_temporal_locality(capsys):
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "60",
        "--subscriptions", "10", "--publications", "10",
        "--temporal-locality", "0.9",
    ])
    assert code == 0


def test_run_audit_then_audit_command(tmp_path, capsys):
    export = tmp_path / "audited.jsonl"
    report = tmp_path / "health.txt"
    code = main([
        "run", "--mapping", "selective-attribute", "--nodes", "60",
        "--subscriptions", "20", "--publications", "30",
        "--audit", "--telemetry", str(export),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "audit: publications audited" in out
    assert "audit: violations" in out

    code = main(["audit", str(export), "--report", str(report)])
    out = capsys.readouterr().out
    assert code == 0  # clean run: no violations
    assert "VERDICT: healthy" in out
    assert "VERDICT: healthy" in report.read_text()


def test_audit_command_rejects_unaudited_export(tmp_path, capsys):
    export = tmp_path / "plain.jsonl"
    code = main([
        "run", "--mapping", "keyspace-split", "--nodes", "60",
        "--subscriptions", "10", "--publications", "10",
        "--telemetry", str(export),
    ])
    assert code == 0
    capsys.readouterr()
    assert main(["audit", str(export)]) == 2


def test_stats_reports_slo_percentiles(tmp_path, capsys):
    export = tmp_path / "audited.jsonl"
    assert main([
        "run", "--mapping", "selective-attribute", "--nodes", "60",
        "--subscriptions", "20", "--publications", "30",
        "--audit", "--telemetry", str(export),
    ]) == 0
    capsys.readouterr()
    assert main(["stats", str(export)]) == 0
    out = capsys.readouterr().out
    assert "audit violations" in out
    assert "audit.notification_latency p50/p95/p99" in out


# -- shard execution profiler ------------------------------------------------


def _profiled_export(tmp_path, capsys):
    export = tmp_path / "sharded.jsonl"
    assert main([
        "run", "--nodes", "120", "--subscriptions", "30",
        "--publications", "30", "--shards", "2", "--shard-profile",
        "--telemetry", str(export),
    ]) == 0
    capsys.readouterr()
    return export


def test_run_shard_profile_prints_report_and_exports_v4(tmp_path, capsys):
    export = tmp_path / "sharded.jsonl"
    code = main([
        "run", "--nodes", "120", "--subscriptions", "30",
        "--publications", "30", "--shards", "2", "--shard-profile",
        "--telemetry", str(export),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "shard execution profile" in out
    assert "stall attribution" in out
    assert "rebalance advisor" in out

    assert main(["report", str(export), "--mode", "shard"]) == 0
    out = capsys.readouterr().out
    assert "shard execution profile" in out

    assert main(["stats", str(export)]) == 0
    out = capsys.readouterr().out
    assert "shard profile rounds" in out
    assert "shard critical path" in out


def test_report_mode_shard_rejects_unprofiled_export(tmp_path, capsys):
    export = tmp_path / "plain.jsonl"
    assert main([
        "run", "--nodes", "60", "--subscriptions", "10",
        "--publications", "10", "--telemetry", str(export),
    ]) == 0
    capsys.readouterr()
    assert main(["report", str(export), "--mode", "shard"]) == 2
    err = capsys.readouterr().err
    assert "no shard profile records" in err


def test_report_and_stats_degrade_gracefully_on_v2_export(tmp_path, capsys):
    # A v2-era export: no load, overload, or profile records, and a
    # meta line claiming version 2.  Both commands must say *why* the
    # newer reports are unavailable instead of crashing.
    import json

    export = _profiled_export(tmp_path, capsys)
    downgraded = tmp_path / "v2.jsonl"
    with open(export) as src, open(downgraded, "w") as dst:
        for line in src:
            record = json.loads(line)
            kind = record.get("type")
            if kind in ("load", "skew", "overload", "profile"):
                continue
            if kind == "meta":
                record["version"] = 2
            dst.write(json.dumps(record) + "\n")

    assert main(["stats", str(downgraded)]) == 0
    out = capsys.readouterr().out
    assert "predates load records" in out

    assert main(["report", str(downgraded), "--mode", "shard"]) == 2
    err = capsys.readouterr().err
    assert "format v2" in err and "predates profile records" in err

    assert main(["report", str(downgraded)]) == 2
    err = capsys.readouterr().err
    assert "predates load records" in err


def test_run_shard_profile_requires_shards(capsys):
    code = main([
        "run", "--nodes", "60", "--subscriptions", "10",
        "--publications", "10", "--shard-profile",
    ])
    assert code == 2
    assert "shard" in capsys.readouterr().err


def test_run_shard_cuts_happy_path_and_parse_error(tmp_path, capsys):
    code = main([
        "run", "--nodes", "120", "--subscriptions", "20",
        "--publications", "20", "--shards", "2",
        "--shard-cuts", "0,40",
    ])
    assert code == 0
    capsys.readouterr()
    code = main([
        "run", "--nodes", "120", "--subscriptions", "20",
        "--publications", "20", "--shards", "2",
        "--shard-cuts", "0,forty",
    ])
    assert code == 2
    assert "--shard-cuts" in capsys.readouterr().err
