"""The exception hierarchy and public API surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DataModelError,
    MappingError,
    OverlayError,
    ReproError,
)


def test_hierarchy():
    for exc in (ConfigurationError, OverlayError, MappingError, DataModelError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_catch_all_base():
    with pytest.raises(ReproError):
        raise MappingError("boom")


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_string():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))
