"""Build and execute one simulation run."""

from __future__ import annotations

import dataclasses

from repro.audit import AuditConfig, Auditor, AuditReport
from repro.core.mappings import make_mapping
from repro.core.mappings.base import Discretization
from repro.core.system import PubSubSystem
from repro.experiments.config import ExperimentConfig
from repro.metrics.recorder import MetricsRecorder
from repro.metrics.stats import Summary, summarize
from repro.overlay.api import MessageKind
from repro.overlay.can import CanOverlay
from repro.overlay.chord import ChordOverlay
from repro.overlay.ids import KeySpace
from repro.overlay.pastry import PastryOverlay
from repro.overlay.network import FixedDelay, Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.shard import (
    ShardRunReport,
    build_shard_mapping,
    ring_node_ids,
    run_sharded,
)
from repro.telemetry import Telemetry
from repro.telemetry.profile import ShardProfiler
from repro.workload.driver import WorkloadDriver
from repro.workload.trace import Trace

#: Periodic storage samples per run (steady-state occupancy, Figs. 6/8).
STORAGE_SAMPLES = 24

#: Periodic telemetry registry samples per traced run (sim-time series).
TELEMETRY_SAMPLES = 24

#: Structural probes per audited run when no probe period is given.
AUDIT_PROBES = 12


@dataclasses.dataclass
class RunResult:
    """Everything a figure harness needs from one run.

    Attributes:
        config: The configuration that produced this run.
        recorder: Full metrics (message traces, storage snapshots).
        subscriptions_sent / publications_sent: Injected counts.
        sub_hops / pub_hops / notify_hops: Per-request one-hop message
            summaries by request kind.
        notification_messages: Total notification one-hop messages
            (including COLLECT aggregation traffic).
        max_subscriptions_per_node / mean_subscriptions_per_node:
            Peak storage distribution sampled during the run (Figs. 6, 8).
        notification_delay: Publish-to-delivery latency summary (the
            buffering delay trade-off of Section 4.3.2).
        keys_per_subscription / keys_per_publication: Mean |SK| / |EK|
            observed over the injected workload (Section 5.2 narrative).
        audit: Invariant/delivery audit report, when the run was audited.
        shard: The sharded kernel's merged run report (barrier stats,
            per-shard loads, and — when ``config.shard_profile`` — the
            execution profiler); None for serial runs.
    """

    config: ExperimentConfig
    recorder: MetricsRecorder
    subscriptions_sent: int
    publications_sent: int
    sub_hops: Summary
    pub_hops: Summary
    notify_hops: Summary
    notification_messages: int
    max_subscriptions_per_node: int
    mean_subscriptions_per_node: float
    keys_per_subscription: float
    keys_per_publication: float
    notification_delay: Summary
    audit: AuditReport | None = None
    shard: ShardRunReport | None = None

    @property
    def notification_hops_per_publication(self) -> float:
        """Fig. 9(a)'s y-axis: notification+collect hops per publication."""
        if self.publications_sent == 0:
            return 0.0
        return self.notification_messages / self.publications_sent


def build_system(
    config: ExperimentConfig,
    streams: RandomStreams,
    telemetry: Telemetry | None = None,
) -> tuple[Simulator, PubSubSystem]:
    """Construct the full stack for a configuration (ring pre-built).

    Args:
        config: The experiment configuration.
        streams: Seeded random substreams for the run.
        telemetry: Optional observability sink; when omitted the stack
            uses the ambient (by default disabled, free) telemetry.
    """
    sim = Simulator()
    keyspace = KeySpace(config.key_bits)
    network = Network(sim, FixedDelay(config.message_delay), telemetry=telemetry)
    if telemetry is not None and telemetry.enabled:
        sim.attach_telemetry(telemetry)
    if config.overlay == "pastry":
        overlay = PastryOverlay(sim, keyspace, network=network)
    elif config.overlay == "can":
        overlay = CanOverlay(sim, keyspace, network=network)
    else:
        overlay = ChordOverlay(
            sim, keyspace, network=network, cache_capacity=config.cache_capacity
        )
    ring_rng = streams.stream("ring")
    node_ids = ring_rng.sample(range(keyspace.size), config.nodes)
    overlay.build_ring(node_ids)

    space = config.workload.make_space()
    discretization = Discretization.uniform(
        space.dimensions, config.discretization_width
    )
    mapping_kwargs = {"discretization": discretization}
    if config.mapping == "attribute-split":
        mapping_kwargs["event_attribute"] = config.event_attribute
    mapping = make_mapping(config.mapping, space, keyspace, **mapping_kwargs)
    system = PubSubSystem(sim, overlay, mapping, config.pubsub_config())
    return sim, system


def run_sharded_experiment(
    config: ExperimentConfig,
    telemetry: Telemetry | None = None,
    audit: AuditConfig | None = None,
    shard_mode: str = "fork",
) -> RunResult:
    """Run one configuration on the sharded kernel (``config.shards``).

    The workload is pre-generated as a :class:`Trace` from the
    ``workload`` substream (same content model as the serial driver,
    materialized up front so every shard schedules its slice
    identically) and executed by :func:`repro.sim.shard.run_sharded`.
    Structural audit probes are replaced by the post-hoc delivery
    oracle replay; everything else in the result mirrors
    :func:`run_experiment`.
    """
    streams = RandomStreams(config.seed)
    node_ids = ring_node_ids(config)
    trace = Trace.generate(
        config.workload,
        streams.stream("workload"),
        node_ids,
        config.subscriptions,
        config.publications,
    )
    profiler = (
        ShardProfiler(config.shards) if config.shard_profile else None
    )
    outcome = run_sharded(
        config,
        trace,
        config.shards,
        mode=shard_mode,
        telemetry=telemetry,
        audit=audit,
        storage_samples=STORAGE_SAMPLES,
        profile=profiler,
        cuts=config.shard_cuts,
    )
    recorder = outcome.recorder
    mapping = build_shard_mapping(config)
    subscriptions = [
        op.subscription for op in trace.ops if op.kind == "sub"
    ]
    events = [op.event for op in trace.ops if op.kind == "pub"]
    sub_key_counts = [len(mapping.subscription_keys(s)) for s in subscriptions]
    pub_key_counts = [len(mapping.event_keys(e)) for e in events]
    notify_total = recorder.messages.total_sends(
        MessageKind.NOTIFICATION
    ) + recorder.messages.total_sends(MessageKind.COLLECT)
    return RunResult(
        config=config,
        recorder=recorder,
        subscriptions_sent=len(subscriptions),
        publications_sent=len(events),
        sub_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.SUBSCRIPTION)
        ),
        pub_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.PUBLICATION)
        ),
        notify_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.NOTIFICATION)
        ),
        notification_messages=notify_total,
        max_subscriptions_per_node=recorder.storage.peak_max_per_node(),
        mean_subscriptions_per_node=recorder.storage.peak_mean_per_node(),
        keys_per_subscription=(
            sum(sub_key_counts) / len(sub_key_counts) if sub_key_counts else 0.0
        ),
        keys_per_publication=(
            sum(pub_key_counts) / len(pub_key_counts) if pub_key_counts else 0.0
        ),
        notification_delay=recorder.notification_delay_summary(),
        audit=outcome.audit,
        shard=outcome,
    )


def run_experiment(
    config: ExperimentConfig,
    telemetry: Telemetry | None = None,
    audit: AuditConfig | None = None,
) -> RunResult:
    """Run one full simulation and summarize it.

    Deterministic in ``config`` (including the seed): the ring layout,
    the workload content and all arrival times derive from named
    substreams of the root seed.  Passing an enabled ``telemetry``
    additionally records spans for every one-hop message and periodic
    registry samples on the simulated clock; the workload itself is
    unchanged (sampling callbacks read state, never mutate it).
    Passing an ``audit`` config additionally runs the online invariant
    auditor: periodic structural probes plus a shadow-ledger delivery
    oracle, with findings in ``RunResult.audit`` (and in the telemetry
    JSONL export, when telemetry is also enabled).

    With ``config.shards > 1`` the run is dispatched to the sharded
    kernel (see :func:`run_sharded_experiment`).
    """
    if config.shards > 1:
        return run_sharded_experiment(config, telemetry=telemetry, audit=audit)
    streams = RandomStreams(config.seed)
    sim, system = build_system(config, streams, telemetry=telemetry)
    auditor = Auditor(system, audit) if audit is not None else None
    driver = WorkloadDriver(
        system,
        config.workload,
        streams.stream("workload"),
        max_subscriptions=config.subscriptions,
        max_publications=config.publications,
    )
    # Sample the storage distribution periodically: with subscription
    # expiration, the figures' quantity is the steady-state occupancy
    # during the run (Figs. 6, 8), not the post-horizon residue.
    horizon = driver.estimated_duration()
    for sample in range(1, STORAGE_SAMPLES + 1):
        sim.schedule_at(horizon * sample / STORAGE_SAMPLES, system.snapshot_storage)
    if telemetry is not None and telemetry.enabled:
        telemetry.sample(sim.now)  # t=0 baseline
        for sample in range(1, TELEMETRY_SAMPLES + 1):
            sim.schedule_at(
                horizon * sample / TELEMETRY_SAMPLES,
                telemetry.sample,
                horizon * sample / TELEMETRY_SAMPLES,
            )
    if auditor is not None:
        period = audit.probe_period or horizon / AUDIT_PROBES
        auditor.schedule_probes(period, horizon=horizon)
    driver.run_to_completion(horizon=horizon)
    system.snapshot_storage()
    if telemetry is not None and telemetry.enabled:
        telemetry.sample(sim.now)  # final state after the horizon
    audit_report = auditor.finalize() if auditor is not None else None

    recorder = system.recorder
    mapping = system.mapping
    sub_key_counts = [
        len(mapping.subscription_keys(s)) for s in driver.injected_subscriptions
    ]
    pub_key_counts = [len(mapping.event_keys(e)) for e in driver.injected_events]
    keys_per_pub = (
        sum(pub_key_counts) / len(pub_key_counts) if pub_key_counts else 0.0
    )

    notify_total = recorder.messages.total_sends(
        MessageKind.NOTIFICATION
    ) + recorder.messages.total_sends(MessageKind.COLLECT)
    return RunResult(
        config=config,
        recorder=recorder,
        subscriptions_sent=driver.subscriptions_sent,
        publications_sent=driver.publications_sent,
        sub_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.SUBSCRIPTION)
        ),
        pub_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.PUBLICATION)
        ),
        notify_hops=summarize(
            recorder.messages.hops_per_request(MessageKind.NOTIFICATION)
        ),
        notification_messages=notify_total,
        max_subscriptions_per_node=recorder.storage.peak_max_per_node(),
        mean_subscriptions_per_node=recorder.storage.peak_mean_per_node(),
        keys_per_subscription=(
            sum(sub_key_counts) / len(sub_key_counts) if sub_key_counts else 0.0
        ),
        keys_per_publication=keys_per_pub,
        notification_delay=recorder.notification_delay_summary(),
        audit=audit_report,
    )
