"""Experiment configuration.

Defaults follow Section 5.1: key space 2^13, n = 500 nodes, 50 ms hop
delay, subscriptions every 5 s, Poisson publications (mean 5 s),
matching probability 0.5, 4 non-selective attributes.
"""

from __future__ import annotations

import dataclasses

from repro.core.system import PubSubConfig, RoutingMode
from repro.errors import ConfigurationError
from repro.workload.spec import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one simulation run.

    Attributes:
        mapping: ``"attribute-split"`` / ``"keyspace-split"`` /
            ``"selective-attribute"``.
        routing: Propagation mode for multi-key requests.
        overlay: Routing substrate (``"chord"`` / ``"pastry"`` /
            ``"can"``); all three implement the same overlay contract.
        nodes: Ring size n.
        key_bits: m; the paper's key space is 2^13.
        message_delay: One-hop latency in seconds.
        cache_capacity: Per-node location-cache size (the "finger
            caching" that yields ~2.5 unicast hops at n=500).
        seed: Root seed; every random stream derives from it.
        subscriptions: Number of subscriptions to inject.
        publications: Number of publications to inject.
        workload: Section 5.1 workload parameters.
        buffering / collecting / buffer_period: Section 4.3.2 switches.
        discretization_width: Section 4.3.3 interval width in attribute
            value units (1 = no discretization), applied uniformly.
        replication_factor: Successor replicas per stored subscription.
        matcher: Rendezvous matching engine ("brute", "grid", "radix",
            or "vector" — the numpy-vectorized grid engine, falling
            back to "grid" when numpy is unavailable).
        covering: Covering-aware rendezvous stores (None = on unless
            the matcher is "brute"; see
            :class:`~repro.core.system.PubSubConfig`).
        event_attribute: The attribute Mapping 1 hashes events by.
        shards: Parallel shard workers for the run (1 = the serial
            kernel).  Sharded runs pre-generate the workload as a
            trace and execute it with :mod:`repro.sim.shard`.
        shard_profile: Attach the shard execution profiler
            (:mod:`repro.telemetry.profile`) to the run: per-round
            busy/stall timelines, critical-path summary, rebalance
            advisor.  Pure wall-clock observation — the simulated
            outcome is bit-for-bit identical either way.  Requires
            ``shards > 1``.
        shard_cuts: Explicit arc start offsets for ``partition_ring``
            (the rebalance advisor's suggested cut points); None keeps
            the default near-equal node-count split.  Requires
            ``shards > 1``.
    """

    mapping: str = "selective-attribute"
    routing: RoutingMode = RoutingMode.MCAST
    overlay: str = "chord"
    nodes: int = 500
    key_bits: int = 13
    message_delay: float = 0.05
    cache_capacity: int = 128
    seed: int = 42
    subscriptions: int = 500
    publications: int = 500
    workload: WorkloadSpec = dataclasses.field(default_factory=WorkloadSpec)
    buffering: bool = False
    collecting: bool = False
    buffer_period: float = 5.0
    discretization_width: int = 1
    replication_factor: int = 0
    matcher: str = "grid"
    covering: bool | None = None
    event_attribute: int = 0
    shards: int = 1
    shard_profile: bool = False
    shard_cuts: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("need at least one shard")
        if self.shard_profile and self.shards < 2:
            raise ConfigurationError(
                "shard_profile requires shards > 1: the profiler rides the "
                "sharded kernel's barrier rounds"
            )
        if self.shard_cuts is not None and self.shards < 2:
            raise ConfigurationError(
                "shard_cuts requires shards > 1"
            )
        if self.shards > 1 and self.message_delay <= 0:
            raise ConfigurationError(
                "sharded runs need message_delay > 0 (the conservative "
                "window's lookahead)"
            )
        if self.shards > self.nodes:
            raise ConfigurationError(
                f"{self.shards} shards for {self.nodes} nodes: every shard "
                "needs at least one node"
            )
        if self.overlay not in ("chord", "pastry", "can"):
            raise ConfigurationError(
                f"unknown overlay {self.overlay!r} "
                "(choose chord, pastry or can)"
            )
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.nodes > (1 << self.key_bits):
            raise ConfigurationError(
                f"{self.nodes} nodes do not fit a {self.key_bits}-bit key space"
            )
        if self.discretization_width < 1:
            raise ConfigurationError("discretization_width must be >= 1")
        # Section 4.3.3's sizing rule: the total number of possible
        # intervals of the (d-dimensional) event space — its total size
        # divided by the interval size — should stay above the number
        # of nodes, or some nodes can never be rendezvous and load
        # imbalance follows.
        per_attribute = max(1, self.workload.domain_size // self.discretization_width)
        total_intervals = 1
        for _ in range(self.workload.dimensions):
            total_intervals *= per_attribute
            if total_intervals >= self.nodes:
                break
        if total_intervals < self.nodes:
            raise ConfigurationError(
                f"discretization width {self.discretization_width} leaves only "
                f"{total_intervals} event-space intervals for {self.nodes} "
                "nodes (Section 4.3.3 sizing rule)"
            )

    def pubsub_config(self) -> PubSubConfig:
        """The derived CB-pub/sub layer configuration."""
        return PubSubConfig(
            routing=self.routing,
            buffering=self.buffering,
            collecting=self.collecting,
            buffer_period=self.buffer_period,
            default_ttl=self.workload.subscription_ttl,
            replication_factor=self.replication_factor,
            matcher=self.matcher,
            covering=self.covering,
        )
