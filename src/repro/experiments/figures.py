"""One harness per paper figure (Section 5.2).

Each ``figureN`` function runs the corresponding parameter sweep and
returns a list of row dicts — the same series the paper plots.  The
defaults are scaled down from the paper (which injects 25 000
subscriptions into a 500-node ring) so that the whole suite runs in
minutes on a laptop; pass ``subscriptions=25000`` etc. for paper scale.
The *shapes* the paper reports (orderings, crossovers, relative
factors) hold at the reduced scale; EXPERIMENTS.md records both.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from repro.core.system import RoutingMode
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment
from repro.workload.spec import WorkloadSpec

MAPPINGS = ("attribute-split", "keyspace-split", "selective-attribute")

#: Paper numbering of the mappings, for report labels.
MAPPING_LABEL = {
    "attribute-split": "Mapping 1 (Attribute-Split)",
    "keyspace-split": "Mapping 2 (Key-Space-Split)",
    "selective-attribute": "Mapping 3 (Selective-Attribute)",
}


def _selective_tuple(selective_attributes: int) -> tuple[int, ...]:
    """The first k attributes are marked selective (paper uses 0 or 1)."""
    return tuple(range(selective_attributes))


# ---------------------------------------------------------------------------
# Figure 5: hops per request, three mappings x {unicast, m-cast}
# ---------------------------------------------------------------------------

def figure5(
    subscriptions: int = 300,
    publications: int = 300,
    nodes: int = 500,
    seed: int = 42,
) -> list[dict]:
    """Fig. 5: total one-hop messages per request by mapping and routing.

    Paper setup: subscriptions never expire, all attributes
    non-selective.  Expected shape: subscription cost under unicast is
    huge for Mappings 1 and 3 (many keys) and small for Mapping 2;
    m-cast cuts the many-key cases by >90%.  Publications cost ~1 key's
    routing in Mappings 1-2 and ~4 keys' in Mapping 3.
    """
    rows = []
    workload = WorkloadSpec(subscription_ttl=None)
    for mapping in MAPPINGS:
        for routing in (RoutingMode.UNICAST, RoutingMode.MCAST):
            result = run_experiment(
                ExperimentConfig(
                    mapping=mapping,
                    routing=routing,
                    nodes=nodes,
                    seed=seed,
                    subscriptions=subscriptions,
                    publications=publications,
                    workload=workload,
                )
            )
            rows.append(
                {
                    "mapping": mapping,
                    "routing": routing.value,
                    "sub_hops": result.sub_hops.mean,
                    "pub_hops": result.pub_hops.mean,
                    "notify_hops": result.notify_hops.mean,
                    "keys_per_sub": result.keys_per_subscription,
                    "keys_per_pub": result.keys_per_publication,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 6: memory consumption vs subscription expiration time
# ---------------------------------------------------------------------------

def figure6(
    subscriptions: int = 3000,
    nodes: int = 500,
    seed: int = 42,
    expiration_fractions: Sequence[float | None] = (0.1, 0.2, 0.4, 0.8, None),
    selective_counts: Sequence[int] = (0, 1),
) -> list[dict]:
    """Fig. 6: max subscriptions per node vs expiration time.

    25 000 subscriptions (scaled here), no publications.  Expirations
    are expressed as fractions of the total injection window (None =
    never expire).  Expected shape: storage grows with expiration time;
    Mapping 2 stores least with no selective attribute; Mapping 3
    benefits strongly from one selective attribute.
    """
    rows = []
    injection_window = subscriptions * WorkloadSpec().subscription_period
    for selective in selective_counts:
        for fraction in expiration_fractions:
            ttl = None if fraction is None else fraction * injection_window
            workload = WorkloadSpec(
                selective_attributes=_selective_tuple(selective),
                subscription_ttl=ttl,
            )
            for mapping in MAPPINGS:
                result = run_experiment(
                    ExperimentConfig(
                        mapping=mapping,
                        routing=RoutingMode.MCAST,
                        nodes=nodes,
                        seed=seed,
                        subscriptions=subscriptions,
                        publications=0,
                        workload=workload,
                    )
                )
                rows.append(
                    {
                        "selective_attributes": selective,
                        "expiration": ttl,
                        "mapping": mapping,
                        "max_subs_per_node": result.max_subscriptions_per_node,
                        "mean_subs_per_node": result.mean_subscriptions_per_node,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 7: hops per publication vs number of nodes
# ---------------------------------------------------------------------------

def figure7(
    node_counts: Sequence[int] = (50, 100, 200, 500, 1000, 2000, 4000),
    publications: int = 300,
    seed: int = 42,
    cache_capacity: int = 128,
) -> list[dict]:
    """Fig. 7: hops per publication vs n (Mapping 3, unicast).

    Expected shape: logarithmic growth with n, inherited from the
    overlay's routing.  The ``log2(n)`` column is included as the
    reference curve.
    """
    rows = []
    workload = WorkloadSpec(subscription_ttl=None)
    for nodes in node_counts:
        result = run_experiment(
            ExperimentConfig(
                mapping="selective-attribute",
                routing=RoutingMode.UNICAST,
                nodes=nodes,
                seed=seed,
                cache_capacity=cache_capacity,
                subscriptions=50,
                publications=publications,
                workload=workload,
            )
        )
        rows.append(
            {
                "nodes": nodes,
                "pub_hops": result.pub_hops.mean,
                "log2_n": math.log2(nodes),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: memory consumption vs number of nodes
# ---------------------------------------------------------------------------

def figure8(
    node_counts: Sequence[int] = (100, 250, 500, 1000, 2000, 4000),
    subscriptions: int = 3000,
    seed: int = 42,
    selective_counts: Sequence[int] = (0, 1),
) -> list[dict]:
    """Fig. 8: max subscriptions per node vs n, 25 000 subs (scaled).

    Expected shape: total stored copies grow with n for Mappings 1 and
    3 (a fixed key range is split across more rendezvous nodes) while
    Mapping 2's storage per node stays nearly flat; with one selective
    attribute Mapping 3 beats Mapping 2 up to a crossover (paper:
    n ≈ 2500).
    """
    rows = []
    for selective in selective_counts:
        workload = WorkloadSpec(
            selective_attributes=_selective_tuple(selective),
            subscription_ttl=None,
        )
        for nodes in node_counts:
            for mapping in MAPPINGS:
                result = run_experiment(
                    ExperimentConfig(
                        mapping=mapping,
                        routing=RoutingMode.MCAST,
                        nodes=nodes,
                        seed=seed,
                        subscriptions=subscriptions,
                        publications=0,
                        workload=workload,
                    )
                )
                rows.append(
                    {
                        "selective_attributes": selective,
                        "nodes": nodes,
                        "mapping": mapping,
                        "max_subs_per_node": result.max_subscriptions_per_node,
                        "mean_subs_per_node": result.mean_subscriptions_per_node,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 9(a): notification buffering and collecting
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class BufferingVariant:
    """One histogram group of Fig. 9(a)."""

    label: str
    buffering: bool
    collecting: bool
    period_multiplier: float  # x the average publication period


FIGURE9A_VARIANTS = (
    BufferingVariant("no buffering, no collecting", False, False, 1.0),
    BufferingVariant("buffering + collecting (1x)", True, True, 1.0),
    BufferingVariant("buffering + collecting (2x)", True, True, 2.0),
    BufferingVariant("buffering + collecting (5x)", True, True, 5.0),
    BufferingVariant("buffering only (1x)", True, False, 1.0),
)


def figure9a(
    matching_probabilities: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    subscriptions: int = 400,
    publications: int = 800,
    nodes: int = 500,
    seed: int = 42,
    variants: Sequence[BufferingVariant] = FIGURE9A_VARIANTS,
    temporal_locality: float = 0.85,
) -> list[dict]:
    """Fig. 9(a): notification hops per publication vs matching probability.

    The workload uses the temporally-local event streams that Section
    4.3.2 motivates buffering with (stock tickers, sensors): consecutive
    publications perturb the previous one, so the same subscriptions
    match repeatedly and batches actually fill.  The location cache is
    disabled so notification routing costs its textbook hops and the
    optimization effect is isolated.  Expected shape: buffering and
    collecting both cut notification traffic; longer buffering periods
    cut more, at the price of delivery delay only.
    """
    rows = []
    for probability in matching_probabilities:
        for variant in variants:
            workload = WorkloadSpec(
                matching_probability=probability,
                subscription_ttl=None,
                temporal_locality=temporal_locality,
                locality_jitter_fraction=0.0005,
            )
            period = variant.period_multiplier * workload.publication_mean_period
            result = run_experiment(
                ExperimentConfig(
                    mapping="selective-attribute",
                    routing=RoutingMode.MCAST,
                    nodes=nodes,
                    cache_capacity=0,
                    seed=seed,
                    subscriptions=subscriptions,
                    publications=publications,
                    workload=workload,
                    buffering=variant.buffering,
                    collecting=variant.collecting,
                    buffer_period=period,
                )
            )
            rows.append(
                {
                    "matching_probability": probability,
                    "variant": variant.label,
                    "notify_hops_per_pub": result.notification_hops_per_publication,
                    "notification_batches": result.recorder.notification_batches,
                    "matched_notifications": result.recorder.matched_notifications,
                    "mean_delay": result.notification_delay.mean,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 9(b): discretization of mappings
# ---------------------------------------------------------------------------

def figure9b(
    width_fractions: Sequence[float] = (0.0, 0.1, 0.2),
    subscriptions: int = 300,
    nodes: int = 500,
    seed: int = 42,
) -> list[dict]:
    """Fig. 9(b): subscription hops vs discretization interval.

    Intervals sized at 0 (no discretization), 10% and 20% of the
    average range size; Mapping 3, unicast (per the paper; the same
    trend applies to the other mappings with multicast).  Expected
    shape: coarser discretization monotonically reduces subscription
    propagation cost.
    """
    rows = []
    workload = WorkloadSpec(subscription_ttl=None)
    average_range = workload.average_range(0)
    for fraction in width_fractions:
        width = max(1, int(average_range * fraction)) if fraction else 1
        result = run_experiment(
            ExperimentConfig(
                mapping="selective-attribute",
                routing=RoutingMode.UNICAST,
                nodes=nodes,
                seed=seed,
                subscriptions=subscriptions,
                publications=0,
                workload=workload,
                discretization_width=width,
            )
        )
        rows.append(
            {
                "interval_fraction": fraction,
                "interval_width": width,
                "sub_hops": result.sub_hops.mean,
                "keys_per_sub": result.keys_per_subscription,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Section 5.1 text: baseline unicast routing cost (finger caching)
# ---------------------------------------------------------------------------

def baseline_routing(
    nodes: int = 500,
    publications: int = 500,
    seed: int = 42,
    cache_capacities: Sequence[int] = (0, 32, 128),
) -> list[dict]:
    """The ~2.5 average unicast hops at n=500 credited to finger caching.

    Sweeps the location-cache capacity: capacity 0 reproduces textbook
    Chord (~0.5 log2 n), larger caches approach the paper's 2.5.
    """
    rows = []
    workload = WorkloadSpec(subscription_ttl=None)
    for capacity in cache_capacities:
        result = run_experiment(
            ExperimentConfig(
                mapping="attribute-split",  # EK is a single key: pure unicast
                routing=RoutingMode.UNICAST,
                nodes=nodes,
                seed=seed,
                cache_capacity=capacity,
                subscriptions=30,
                publications=publications,
                workload=workload,
            )
        )
        rows.append(
            {
                "cache_capacity": capacity,
                "pub_hops": result.pub_hops.mean,
                "half_log2_n": 0.5 * math.log2(nodes),
            }
        )
    return rows


def result_for(config: ExperimentConfig) -> RunResult:
    """Convenience alias so harness callers import one module."""
    return run_experiment(config)
