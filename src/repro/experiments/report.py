"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Cell values; floats are rendered with two decimals.
        title: Optional line printed above the table.

    Returns:
        The table as a string (no trailing newline).
    """
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in formatted)) if formatted else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
