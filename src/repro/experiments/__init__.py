"""Experiment harnesses reproducing the paper's evaluation (Section 5).

- :mod:`repro.experiments.config` -- one dataclass capturing every knob
  of a simulation run (defaults = the paper's Section 5.1 parameters).
- :mod:`repro.experiments.runner` -- builds the stack (kernel, network,
  Chord ring, mapping, pub/sub layer, workload driver), runs it, and
  returns a :class:`~repro.experiments.runner.RunResult`.
- :mod:`repro.experiments.figures` -- one function per paper figure
  (Figs. 5-9), each returning the rows/series the paper plots.
- :mod:`repro.experiments.report` -- plain-text table rendering.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment
from repro.experiments.report import render_table

__all__ = ["ExperimentConfig", "RunResult", "run_experiment", "render_table"]
