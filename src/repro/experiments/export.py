"""CSV export of figure rows.

The figure harnesses return lists of row dicts; this module writes them
to CSV so the series can be re-plotted with any external tool (the
library itself deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping


def rows_to_csv(rows: Iterable[Mapping[str, object]], path: str | Path) -> int:
    """Write figure rows to ``path``; returns the number of rows written.

    Columns are the union of all row keys, in first-seen order; missing
    cells are left empty.
    """
    rows = list(rows)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return len(rows)


def csv_to_rows(path: str | Path) -> list[dict[str, str]]:
    """Read back a CSV written by :func:`rows_to_csv` (all cells as str)."""
    with Path(path).open(newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]
