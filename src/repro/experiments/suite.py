"""Run the whole evaluation and export it.

``run_suite`` executes every figure harness at a configurable scale and
writes one CSV per figure plus a plain-text summary — the "reproduce
the paper" button.  Exposed on the command line as
``python -m repro report --out-dir results/``.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable

from repro.experiments import figures
from repro.experiments.export import rows_to_csv
from repro.experiments.report import render_table


@dataclasses.dataclass(frozen=True)
class SuiteScale:
    """Workload sizes for one suite run.

    ``QUICK`` finishes in a few minutes on a laptop; ``PAPER``
    approaches the paper's 25 000-subscription memory runs (hours).
    """

    name: str
    subscriptions: int
    publications: int
    memory_subscriptions: int
    node_counts: tuple[int, ...]


QUICK = SuiteScale("quick", 150, 150, 1000, (100, 250, 500, 1000))
DEFAULT = SuiteScale("default", 300, 300, 3000, (100, 250, 500, 1000, 2000, 4000))
PAPER = SuiteScale("paper", 2000, 2000, 25000, (100, 250, 500, 1000, 2000, 4000))

SCALES = {scale.name: scale for scale in (QUICK, DEFAULT, PAPER)}


def _figure_jobs(scale: SuiteScale) -> dict[str, Callable[[], list[dict]]]:
    return {
        "fig5": lambda: figures.figure5(
            subscriptions=scale.subscriptions, publications=scale.publications
        ),
        "fig6": lambda: figures.figure6(
            subscriptions=scale.memory_subscriptions
        ),
        "fig7": lambda: figures.figure7(
            node_counts=scale.node_counts, publications=scale.publications
        ),
        "fig8": lambda: figures.figure8(
            node_counts=scale.node_counts,
            subscriptions=scale.memory_subscriptions,
        ),
        "fig9a": lambda: figures.figure9a(
            subscriptions=scale.subscriptions,
            publications=2 * scale.publications,
        ),
        "fig9b": lambda: figures.figure9b(subscriptions=scale.subscriptions),
        "routing": lambda: figures.baseline_routing(
            publications=max(800, scale.publications)
        ),
    }


def run_suite(
    out_dir: str | Path,
    scale: SuiteScale = QUICK,
    only: tuple[str, ...] | None = None,
    progress: Callable[[str], None] = print,
) -> dict[str, list[dict]]:
    """Run every figure (or the ``only`` subset) and export CSVs.

    Args:
        out_dir: Directory for ``<figure>.csv`` files and ``SUMMARY.txt``.
        scale: Workload sizes (see :data:`SCALES`).
        only: Optional subset of figure names.
        progress: Line sink for progress output.

    Returns:
        The row lists, keyed by figure name.
    """
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    jobs = _figure_jobs(scale)
    if only:
        unknown = set(only) - set(jobs)
        if unknown:
            raise ValueError(f"unknown figures: {sorted(unknown)}")
        jobs = {name: jobs[name] for name in only}

    results: dict[str, list[dict]] = {}
    summary_lines = [f"evaluation suite — scale '{scale.name}'", ""]
    for name, job in jobs.items():
        progress(f"running {name} ...")
        started = time.perf_counter()
        rows = job()
        elapsed = time.perf_counter() - started
        results[name] = rows
        rows_to_csv(rows, out_path / f"{name}.csv")
        columns = list(rows[0]) if rows else []
        table = render_table(
            columns,
            [[row.get(c) for c in columns] for row in rows],
            title=f"{name} ({elapsed:.1f}s)",
        )
        summary_lines.append(table)
        summary_lines.append("")
        progress(f"  {name}: {len(rows)} rows in {elapsed:.1f}s")
    (out_path / "SUMMARY.txt").write_text("\n".join(summary_lines))
    return results
