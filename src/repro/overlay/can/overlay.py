"""The CAN overlay: zone partition, joins by splitting, greedy routing."""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import (
    CastMode,
    NeighborSide,
    OverlayMessage,
    OverlayNetwork,
    StateTransferHook,
)
from repro.overlay.can.morton import (
    axis_sizes,
    decompose,
    morton_decode,
    morton_encode,
    rect_closest_point,
    torus_delta,
    zone_rectangle,
)
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.overlay.ring import MembershipDeltaLog
from repro.sim.kernel import Simulator
from repro.telemetry import Telemetry


class CanNode:
    """One CAN node: zone geometry + greedy forwarding decisions.

    A real CAN node maintains a neighbor table with each neighbor's
    zone coordinates; forwarding picks the neighbor closest to the
    target point.  In this simulation the equivalent local knowledge is
    expressed as "the owner of the grid point one step outside my own
    boundary toward the target" — exactly what the neighbor table
    answers — resolved through the overlay's zone index.
    """

    def __init__(self, node_id: int, overlay: "CanOverlay") -> None:
        self.id = node_id
        self._overlay = overlay
        self._cells: list[tuple[int, int]] = []
        self._version = -1
        # Maintenance counters, mirroring ChordNode's read surface.
        registry = overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "can.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "can.table_patches", node=node_id
        )

    @property
    def table_rebuilds(self) -> int:
        """Full zone-decomposition recomputations."""
        return self._rebuilds_counter.value

    @property
    def table_patches(self) -> int:
        """Delta-log scans that confirmed the zone was untouched."""
        return self._patches_counter.value

    def cells(self) -> list[tuple[int, int]]:
        """My zone's maximal aligned cells ((start, size) pairs).

        A zone wrapping the key-space origin decomposes as two plain
        intervals.  A membership change only moves this node's zone
        boundaries when a join splits *its* zone or a departure makes
        *it* the heir — both cases name this node in the overlay's
        delta log — so a stale node scans the missed deltas and, when
        none involve it, keeps its decomposition as-is (a patch).  It
        recomputes only when a delta names it or the log no longer
        reaches its version (a rebuild).
        """
        overlay = self._overlay
        version = overlay.zone_version
        if self._version == version:
            return self._cells
        deltas = overlay.deltas_since(self._version) if self._version >= 0 else None
        if deltas is not None:
            me = self.id
            for _, node_id, other in deltas:
                if node_id == me or other == me:
                    break
            else:
                self._version = version
                self._patches_counter.inc()
                return self._cells
        self._cells = overlay.compute_cells(self.id)
        self._version = version
        self._rebuilds_counter.inc()
        return self._cells

    def audit_state(self) -> tuple[int, list[tuple[int, int]]]:
        """Raw zone state for the auditor: ``(version, cells)``.

        Non-mutating by contract — never triggers the :meth:`cells`
        catch-up, so the auditor sees the decomposition exactly as
        routing left it.  Version -1 means cold.
        """
        return self._version, list(self._cells)

    def covers(self, key: int) -> bool:
        """True if ``key`` falls in my zone."""
        return self._overlay.covers(self.id, key)

    # -- message handling --------------------------------------------------

    def receive(self, message: OverlayMessage) -> None:
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def receive_batch(self, messages: list[OverlayMessage]) -> None:
        """Bucket entry point: dispatch one ``(dst, tick)`` inbox.

        The zone decomposition is version-memoized, so a bucket pays at
        most one catch-up.  Mid-batch self-unregistration drops the
        remainder with the drain loop's accounting.
        """
        if len(messages) == 1:
            self.receive(messages[0])
            return
        network = self._overlay.network
        is_alive = network.is_alive
        me = self.id
        receive = self.receive
        for index, message in enumerate(messages):
            if not is_alive(me):
                network.drop_undeliverable(messages[index:])
                return
            receive(message)

    def _next_hop(self, key: int) -> int | None:
        """Greedy geometric step toward ``key`` (None = deliver here).

        From the point of my zone closest to the target, step one grid
        unit along the axis with the larger remaining torus delta; the
        owner of that point is an edge-adjacent neighbor whose distance
        to the target is strictly smaller — so routing terminates.
        """
        if self.covers(key):
            return None
        overlay = self._overlay
        bits = overlay.keyspace.bits
        x_size, y_size = axis_sizes(bits)
        tx, ty = morton_decode(key, bits)
        best_point = None
        best_distance = None
        for start, size in self.cells():
            rect = zone_rectangle(start, size, bits)
            px, py = rect_closest_point(rect, tx, ty, x_size, y_size)
            distance = abs(torus_delta(px, tx, x_size)) + abs(
                torus_delta(py, ty, y_size)
            )
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_point = (px, py)
        assert best_point is not None
        px, py = best_point
        dx = torus_delta(px, tx, x_size)
        dy = torus_delta(py, ty, y_size)
        if abs(dx) >= abs(dy) and dx != 0:
            probe = ((px + (1 if dx > 0 else -1)) % x_size, py)
        else:
            probe = (px, (py + (1 if dy > 0 else -1)) % y_size)
        probe_key = morton_encode(probe[0], probe[1], bits)
        next_owner = overlay.owner_of(probe_key)
        if next_owner == self.id:
            # Defensive: should not happen (the probe lies outside our
            # boundary); fall back to the zone-ring successor.
            return overlay.successor_of(self.id)
        return next_owner

    def route_unicast(self, message: OverlayMessage) -> None:
        key = message.key
        assert key is not None, "unicast message without a destination key"
        next_hop = self._next_hop(key)
        if next_hop is None:
            self._overlay.do_deliver(self, message)
            return
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    def start_mcast(self, message: OverlayMessage) -> None:
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """Partition targets by greedy next hop (coverage-complete;
        at-most-once per node per branch, like the Pastry variant)."""
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        groups: dict[int, set[int]] = {}
        for key in targets - mine:
            next_hop = self._next_hop(key)
            if next_hop is not None:
                groups.setdefault(next_hop, set()).add(key)
        for next_hop, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.transmit(self.id, next_hop, branch)

    def continue_sequential(self, message: OverlayMessage) -> None:
        """Conservative walk, CAN version.

        An intermediate node keeps chasing the message's *current*
        chase key rather than re-picking by ring distance — geometric
        routing and ring distance disagree on a torus, and per-hop
        re-targeting can ping-pong between far-apart targets forever.
        Only a node that resolves the current key (delivers or covers
        it) selects the next one, which is exactly the paper's
        "each covering node forwards to the next key" protocol.
        """
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        chase = message.key
        if chase is None or chase not in rest or self.covers(chase):
            chase = min(rest, key=lambda k: keyspace.distance(self.id, k))
        next_hop = self._next_hop(chase)
        if next_hop is None:
            return
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=chase
        )
        self._overlay.transmit(self.id, next_hop, onward)


class CanOverlay(MembershipDeltaLog, OverlayNetwork):
    """A CAN built on quadtree zones over the Morton-mapped key space.

    Membership semantics (documented simplifications vs deployed CAN):

    - ``join(node_id)``: the id doubles as the joiner's random point
      (CAN's join picks a random point); the zone containing it splits
      in half and the joiner takes the half containing its point.
    - ``leave``/``crash``: the zone is absorbed by the owner of the
      *Morton-predecessor* zone (its interval extends over ours),
      standing in for CAN's takeover rule; :meth:`heir_of` exposes this
      so the pub/sub layer promotes replicas at the right node.
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        state_transfer: StateTransferHook | None = None,
    ) -> None:
        super().__init__(keyspace)
        self._sim = sim
        self._network = network or Network(sim)
        self.set_state_transfer(state_transfer)
        # Parallel arrays: sorted zone start keys and their owner ids.
        # Zones are cyclic: zone i spans [starts[i], starts[i+1]) and the
        # last zone wraps around to starts[0], so removals never need a
        # special case and a zone may legitimately wrap the origin.
        self._starts: list[int] = []
        self._owners: list[int] = []
        self._nodes: dict[int, CanNode] = {}
        self.zone_version = 0
        # Maintenance counts of nodes that already departed: without
        # this, harness totals summed over live nodes silently truncate
        # (a departing node takes its counters with it).
        self._departed_maintenance = {
            "table_rebuilds": 0,
            "table_patches": 0,
            "table_seeds": 0,
        }
        # Join entries log the owner whose zone the joiner split; depart
        # entries log the heir absorbing the departed zone — the only
        # live node besides the joiner/departed whose cells a membership
        # change can touch (see MembershipDeltaLog).
        self._init_delta_log()

    # -- accessors -----------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def network(self) -> Network:
        return self._network

    @property
    def recorder(self) -> MetricsRecorder:
        return self._network.recorder

    @property
    def telemetry(self) -> Telemetry:
        """Observability sink shared with the network."""
        return self._network.telemetry

    def node(self, node_id: int) -> CanNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def node_ids(self) -> list[int]:
        """Live node ids, in zone (Morton-start) order."""
        return list(self._owners)

    def __len__(self) -> int:
        return len(self._owners)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._nodes

    def zone_of(self, node_id: int) -> tuple[int, int]:
        """``(start, length)`` of the node's zone (may wrap the origin)."""
        index = self._owner_index(node_id)
        start = self._starts[index]
        if len(self._starts) == 1:
            return start, self._keyspace.size
        end = self._starts[(index + 1) % len(self._starts)]
        return start, (end - start) % self._keyspace.size

    def compute_cells(self, node_id: int) -> list[tuple[int, int]]:
        """Ground-truth Morton-cell decomposition of the node's zone.

        The canonical ``(start, size)`` maximal aligned cells of
        :meth:`zone_of`; a zone wrapping the origin decomposes as two
        plain intervals.  :meth:`CanNode.cells` materializes exactly
        this, so the auditor compares a current node's cells against a
        fresh call of this method.
        """
        bits = self._keyspace.bits
        size = self._keyspace.size
        start, length = self.zone_of(node_id)
        if start + length <= size:
            return decompose(start, length, bits)
        head = size - start
        return decompose(start, head, bits) + decompose(0, length - head, bits)

    def zone_table(self) -> list[tuple[int, int]]:
        """The ``(zone start, owner)`` pairs in Morton-start order.

        Introspection for the auditor's tessellation check: the starts
        must be strictly increasing and every owner alive and covering
        its own id — together with the cyclic zone construction that
        guarantees the zones tile the key space exactly once.
        """
        return list(zip(self._starts, self._owners))

    def _owner_index(self, node_id: int) -> int:
        try:
            return self._owners.index(node_id)
        except ValueError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def _zone_index_for_key(self, key: int) -> int:
        # bisect_right - 1 is -1 for keys before the first start: they
        # belong to the wrapped last zone, which Python indexing already
        # selects with -1.
        return bisect.bisect_right(self._starts, key) - 1

    # -- membership -------------------------------------------------------------

    def build_ring(self, node_ids: Iterable[int]) -> None:
        """Bulk construction: sequential CAN joins, first id bootstraps."""
        ids = list(dict.fromkeys(node_ids))
        if not ids:
            raise OverlayError("cannot build an empty overlay")
        if self._owners:
            raise OverlayError("overlay already built; use join()")
        first, *rest = ids
        self._keyspace.validate(first)
        # The bootstrap node's zone is the whole torus, anchored at its
        # own id (so it trivially covers itself).
        self._starts = [first]
        self._owners = [first]
        self._register(first)
        self.zone_version += 1
        for node_id in rest:
            self.join(node_id)
        self._reset_delta_log(self.zone_version)

    def join(self, node_id: int) -> None:
        """CAN join: split the zone containing the joiner's point.

        The joiner's id doubles as CAN's "random point".  The cut is
        placed midway *between the owner's id and the joiner's id*
        (rather than at CAN's geometric midpoint) so that both nodes
        keep covering their own ids — the invariant the key-addressed
        notification path relies on.  With uniformly random ids the two
        conventions split zones equally in expectation.
        """
        self._keyspace.validate(node_id)
        if node_id in self._nodes:
            raise OverlayError(f"node {node_id} already joined")
        size = self._keyspace.size
        index = self._zone_index_for_key(node_id)
        owner = self._owners[index]
        start, length = self.zone_of(owner)
        owner_offset = (owner - start) % size
        joiner_offset = (node_id - start) % size
        cut_offset = (owner_offset + joiner_offset) // 2 + 1
        cut = (start + cut_offset) % size
        if joiner_offset > owner_offset:
            joiner_start = cut
            joiner_length = length - cut_offset
            cut_owner = node_id  # boundary `cut` begins the joiner's half
        else:
            joiner_start = start
            joiner_length = cut_offset
            cut_owner = owner  # owner keeps the upper part from `cut`
        # Insert the new boundary; owners stay pairwise aligned with
        # starts because both lists insert at the same position.
        position = bisect.bisect_left(self._starts, cut)
        self._starts.insert(position, cut)
        self._owners.insert(position, cut_owner)
        if cut_owner is owner:
            self._owners[self._starts.index(start)] = node_id
        self._register(node_id)
        self.zone_version += 1
        self._log_delta("join", node_id, owner)
        if self._state_transfer is not None:
            left = (joiner_start - 1) % size
            right = (joiner_start + joiner_length - 1) % size
            self._state_transfer(owner, node_id, (left, right))

    def leave(self, node_id: int) -> None:
        """Graceful departure: the heir absorbs the zone, state first."""
        if len(self._owners) == 1:
            raise OverlayError("cannot remove the last node")
        heir = self.heir_of(node_id)
        start, length = self.zone_of(node_id)
        if self._state_transfer is not None:
            left = (start - 1) % self._keyspace.size
            right = (start + length - 1) % self._keyspace.size
            self._state_transfer(node_id, heir, (left, right))
        self._absorb(node_id)

    def crash(self, node_id: int) -> None:
        """Abrupt failure: zone absorbed, no handover."""
        if len(self._owners) == 1:
            raise OverlayError("cannot remove the last node")
        self._owner_index(node_id)  # validates the node exists
        self._absorb(node_id)

    def heir_of(self, node_id: int) -> int:
        """The node inheriting this node's zone on departure.

        The Morton-predecessor zone's owner: deleting our boundary
        extends that zone over ours (cyclically), standing in for CAN's
        smallest-neighbor takeover rule.  A single-node overlay is its
        own heir.
        """
        index = self._owner_index(node_id)
        return self._owners[(index - 1) % len(self._owners)]

    def _absorb(self, node_id: int) -> None:
        index = self._owner_index(node_id)
        heir = self._owners[(index - 1) % len(self._owners)]
        del self._starts[index]
        del self._owners[index]
        self._unregister(node_id)
        self.zone_version += 1
        self._log_delta("depart", node_id, heir)

    def _register(self, node_id: int) -> None:
        node = CanNode(node_id, self)
        self._nodes[node_id] = node
        self._network.register(node_id, node.receive, node.receive_batch)

    def _unregister(self, node_id: int) -> None:
        node = self._nodes.pop(node_id)
        totals = self._departed_maintenance
        for key in totals:
            totals[key] += getattr(node, key, 0)
        self._network.unregister(node_id)

    def maintenance_totals(self) -> dict[str, int]:
        """Exact run-wide maintenance counts: live nodes + departed ones.

        The per-node ``table_*`` properties only cover nodes still
        alive; departures accumulate here first, so harness totals are
        exact regardless of churn.
        """
        totals = dict(self._departed_maintenance)
        for node in self._nodes.values():
            for key in totals:
                totals[key] += getattr(node, key, 0)
        return totals

    # -- KN-mapping ---------------------------------------------------------------

    def owner_of(self, key: int) -> int:
        if not self._owners:
            raise OverlayError("empty overlay")
        self._keyspace.validate(key)
        return self._owners[self._zone_index_for_key(key)]

    def covers(self, node_id: int, key: int) -> bool:
        return self.owner_of(key) == node_id

    def successor_of(self, node_id: int) -> int:
        index = self._owner_index(node_id)
        return self._owners[(index + 1) % len(self._owners)]

    def predecessor_of(self, node_id: int) -> int:
        index = self._owner_index(node_id)
        return self._owners[(index - 1) % len(self._owners)]

    def neighbor_of(self, node_id: int, side: NeighborSide) -> int:
        if side is NeighborSide.SUCCESSOR:
            return self.successor_of(node_id)
        return self.predecessor_of(node_id)

    # -- communication ---------------------------------------------------------

    def send(self, source_id: int, key: int, message: OverlayMessage) -> None:
        self._keyspace.validate(key)
        node = self.node(source_id)
        unicast = dataclasses.replace(
            message, key=key, mode=CastMode.UNICAST, hops=0, path=()
        )
        node.route_unicast(unicast)

    def mcast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.start_mcast(
            dataclasses.replace(
                message, target_keys=targets, mode=CastMode.MCAST, hops=0, path=()
            )
        )

    def sequential_cast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.continue_sequential(
            dataclasses.replace(
                message,
                target_keys=targets,
                mode=CastMode.SEQUENTIAL,
                hops=0,
                path=(),
            )
        )

    def send_to_neighbor(
        self, source_id: int, side: NeighborSide, message: OverlayMessage
    ) -> None:
        neighbor = self.neighbor_of(source_id, side)
        if neighbor == source_id:
            self.do_deliver(self.node(source_id), message)
            return
        self.transmit(source_id, neighbor, message.forwarded_copy(source_id))

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        self._network.transmit(src, dst, message)

    def do_deliver(self, node: CanNode, message: OverlayMessage) -> None:
        self.recorder.messages.record_delivery(
            message.request_id, node.id, self._sim.now, message.hops
        )
        tracer = self._network.active_tracer
        if tracer is not None:
            tracer.delivery(
                message.trace, message.request_id, node.id, self._sim.now
            )
        self._deliver_upcall(node.id, message)
