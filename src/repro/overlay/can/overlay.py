"""The CAN overlay: zone partition, joins by splitting, greedy routing."""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import (
    CastMode,
    NeighborSide,
    OverlayMessage,
    OverlayNetwork,
    StateTransferHook,
)
from repro.overlay.can.morton import (
    axis_sizes,
    decompose,
    morton_decode,
    torus_delta,
)
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.overlay.ring import MembershipDeltaLog, _flatten_audit_states
from repro.sim.kernel import Simulator
from repro.telemetry import Telemetry


class CanNode:
    """One CAN node: zone geometry + greedy forwarding decisions.

    A real CAN node maintains a neighbor table with each neighbor's
    zone coordinates; forwarding picks the neighbor closest to the
    target point.  In this simulation the equivalent local knowledge is
    expressed as "the owner of the grid point one step outside my own
    boundary toward the target" — exactly what the neighbor table
    answers — resolved through the overlay's zone index.
    """

    def __init__(self, node_id: int, overlay: "CanOverlay") -> None:
        self.id = node_id
        self._overlay = overlay
        self._cells: list[tuple[int, int]] = []
        # Decoded rectangles, parallel to _cells and refreshed by the
        # same rebuild — the memoized geometry the routing loop scans.
        self._rects: list[tuple[int, int, int, int]] = []
        self._version = -1
        # Express links: owner of the key at Morton distance 2^k for
        # each k, fixed target points decoded once here.
        self._express: list[int] = []
        self._express_version = -1
        size = overlay.keyspace.size
        points = overlay._points
        self._express_keys = [
            (node_id + (1 << k)) % size for k in range(overlay.keyspace.bits)
        ]
        self._express_points = [points[k] for k in self._express_keys]
        # Maintenance counters, mirroring ChordNode's read surface.
        registry = overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "can.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "can.table_patches", node=node_id
        )
        self._express_patches_counter = registry.counter(
            "can.express_patches", node=node_id
        )
        self._express_rebuilds_counter = registry.counter(
            "can.express_rebuilds", node=node_id
        )

    @property
    def table_rebuilds(self) -> int:
        """Full zone-decomposition recomputations."""
        return self._rebuilds_counter.value

    @property
    def table_patches(self) -> int:
        """Delta-log scans that confirmed the zone was untouched."""
        return self._patches_counter.value

    @property
    def express_patches(self) -> int:
        """Express-link tables repaired by delta-log replay."""
        return self._express_patches_counter.value

    @property
    def express_rebuilds(self) -> int:
        """Express-link tables rebuilt wholesale (cold start / overrun)."""
        return self._express_rebuilds_counter.value

    def cells(self) -> list[tuple[int, int]]:
        """My zone's maximal aligned cells ((start, size) pairs).

        A zone wrapping the key-space origin decomposes as two plain
        intervals.  A membership change only moves this node's zone
        boundaries when a join splits *its* zone or a departure makes
        *it* the heir — both cases name this node in the overlay's
        delta log — so a stale node scans the missed deltas and, when
        none involve it, keeps its decomposition as-is (a patch).  It
        recomputes only when a delta names it or the log no longer
        reaches its version (a rebuild).
        """
        overlay = self._overlay
        version = overlay.zone_version
        if self._version == version:
            return self._cells
        deltas = overlay.deltas_since(self._version) if self._version >= 0 else None
        if deltas is not None:
            me = self.id
            for _, node_id, other in deltas:
                if node_id == me or other == me:
                    break
            else:
                self._version = version
                self._patches_counter.inc()
                return self._cells
        cells = overlay.compute_cells(self.id)
        rect_of_cell = overlay.rect_of_cell
        self._cells = cells
        self._rects = [rect_of_cell(s, z) for s, z in cells]
        self._version = version
        self._rebuilds_counter.inc()
        return self._cells

    def audit_state(self) -> tuple[int, list[tuple[int, int]]]:
        """Raw zone state for the auditor: ``(version, cells)``.

        Non-mutating by contract — never triggers the :meth:`cells`
        catch-up, so the auditor sees the decomposition exactly as
        routing left it.  Version -1 means cold.
        """
        return self._version, list(self._cells)

    def audit_express_state(self) -> tuple[int, list[int]]:
        """Raw express-link state for the auditor: ``(version, links)``.

        Non-mutating, like :meth:`audit_state`: never triggers the
        :meth:`_express_table` catch-up.  Version -1 means cold.
        """
        return self._express_version, list(self._express)

    def _express_table(self) -> list[int]:
        """My express links, caught up to the current zone version.

        ``links[k]`` is the owner of the key at Morton distance ``2^k``
        ahead of my id.  Same contract as :meth:`cells`: version-
        memoized, repaired by delta-log replay when the missed churn is
        small, rebuilt wholesale otherwise.  The replay is exact — a
        link changes only when a delta names its current target: a
        departure redirects it to the heir, a join moves it to the
        joiner iff the link's key landed in the joiner's half (the
        overlay logs each join's zone alongside the delta entry).
        """
        overlay = self._overlay
        version = overlay.zone_version
        if self._express_version == version:
            return self._express
        links = self._express
        window = (
            overlay._delta_window(self._express_version)
            if self._express_version >= 0
            else None
        )
        if window is not None:
            log, start = window
            if len(log) - start <= len(links):
                keys = self._express_keys
                size = overlay.keyspace.size
                zones = overlay._delta_zones
                for i in range(start, len(log)):
                    op, node_id, other = log[i]
                    if op == "join":
                        joiner_start, joiner_length = zones[i]
                        for k, target in enumerate(links):
                            if (
                                target == other
                                and (keys[k] - joiner_start) % size
                                < joiner_length
                            ):
                                links[k] = node_id
                    else:
                        for k, target in enumerate(links):
                            if target == node_id:
                                links[k] = other
                self._express_version = version
                self._express_patches_counter.inc()
                return links
        self._express = overlay.compute_express_links(self.id)
        self._express_version = version
        self._express_rebuilds_counter.inc()
        return self._express

    def covers(self, key: int) -> bool:
        """True if ``key`` falls in my zone."""
        return self._overlay.covers(self.id, key)

    # -- message handling --------------------------------------------------

    def receive(self, message: OverlayMessage) -> None:
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def receive_batch(self, messages: list[OverlayMessage]) -> None:
        """Bucket entry point: dispatch one ``(dst, tick)`` inbox.

        The zone decomposition is version-memoized, so a bucket pays at
        most one catch-up.  Mid-batch self-unregistration drops the
        remainder with the drain loop's accounting.
        """
        if len(messages) == 1:
            self.receive(messages[0])
            return
        network = self._overlay.network
        is_alive = network.is_alive
        me = self.id
        receive = self.receive
        for index, message in enumerate(messages):
            if not is_alive(me):
                network.drop_undeliverable(messages[index:])
                return
            receive(message)

    def _next_hop(self, key: int) -> int | None:
        """Greedy geometric step toward ``key`` (None = deliver here).

        The potential is Φ = torus Manhattan distance from my zone's
        closest point to the target.  Every branch forwards to a node
        whose own closest-point distance is strictly below Φ, so
        routing terminates:

        - **express** (when enabled): the best 2^k-link whose decoded
          point at least halves Φ — such a point lies outside my zone,
          and its owner's zone reaches it, so the owner's Φ' < Φ;
        - **jump** (when enabled): probe past the far edge of the
          adjacent zone's maximal aligned cell along the dominant axis,
          clamped to the remaining delta — the probe point is
          ``advance ≥ 1`` units closer than Φ;
        - **unit step**: the classic one-grid-unit probe (Φ' ≤ Φ - 1).
        """
        overlay = self._overlay
        starts = overlay._starts
        owners = overlay._owners
        me = self.id
        if owners[bisect.bisect_right(starts, key) - 1] == me:
            return None
        x_size = overlay._x_size
        y_size = overlay._y_size
        tx, ty = overlay._points[key]
        if self._version != overlay.zone_version:
            self.cells()
        # Closest point of my zone (inlined rect_closest_point + torus
        # distance over the memoized rectangles; same cell order and
        # tie-breaks as the morton.py helpers).
        best_distance = -1
        best_px = best_py = 0
        for x0, y0, width, height in self._rects:
            offset = (tx - x0) % x_size
            if offset < width:
                px = tx
                ax = 0
            else:
                back = x_size - offset
                to_start = offset if offset < back else back
                last = (x0 + width - 1) % x_size
                offl = (tx - last) % x_size
                backl = x_size - offl
                to_last = offl if offl < backl else backl
                if to_start <= to_last:
                    px = x0
                    ax = to_start
                else:
                    px = last
                    ax = to_last
            offset = (ty - y0) % y_size
            if offset < height:
                py = ty
                ay = 0
            else:
                back = y_size - offset
                to_start = offset if offset < back else back
                last = (y0 + height - 1) % y_size
                offl = (ty - last) % y_size
                backl = y_size - offl
                to_last = offl if offl < backl else backl
                if to_start <= to_last:
                    py = y0
                    ay = to_start
                else:
                    py = last
                    ay = to_last
            distance = ax + ay
            if best_distance < 0 or distance < best_distance:
                best_distance = distance
                best_px = px
                best_py = py
        if best_distance > 1 and overlay._express_links:
            links = self._express_table()
            points = self._express_points
            best_k = -1
            best_d = best_distance
            for k in range(len(points)):
                ex, ey = points[k]
                dxo = (tx - ex) % x_size
                if dxo + dxo > x_size:
                    dxo = x_size - dxo
                dyo = (ty - ey) % y_size
                if dyo + dyo > y_size:
                    dyo = y_size - dyo
                d = dxo + dyo
                if d < best_d and links[k] != me:
                    best_d = d
                    best_k = k
            # Only shortcut when the link at least halves the distance;
            # small wins are left to the zone jump, which advances
            # without spending a hop on a marginal improvement.
            if best_k >= 0 and best_d + best_d <= best_distance:
                return links[best_k]
        dx = torus_delta(best_px, tx, x_size)
        dy = torus_delta(best_py, ty, y_size)
        if abs(dx) >= abs(dy) and dx != 0:
            step = 1 if dx > 0 else -1
            nx = (best_px + step) % x_size
            ny = best_py
            axis_x = True
            remaining = dx if dx > 0 else -dx
        else:
            step = 1 if dy > 0 else -1
            nx = best_px
            ny = (best_py + step) % y_size
            axis_x = False
            remaining = dy if dy > 0 else -dy
        point_keys = overlay._point_keys
        probe_key = point_keys[nx * y_size + ny]
        j = bisect.bisect_right(starts, probe_key) - 1
        next_owner = owners[j]
        if remaining > 1 and overlay._zone_jumps and next_owner != me:
            # Probe one unit past the far edge of the adjacent zone's
            # maximal aligned cell around the probe point, clamped so
            # the probe never overshoots the target's axis coordinate.
            n_zones = len(starts)
            if j < 0:
                lo, hi = 0, starts[0]
            elif j == n_zones - 1:
                lo, hi = starts[j], overlay.keyspace.size
            else:
                lo, hi = starts[j], starts[j + 1]
            csize = 1
            cstart = probe_key
            while True:
                nsize = csize << 1
                nstart = probe_key & -nsize
                if nstart < lo or nstart + nsize > hi:
                    break
                csize = nsize
                cstart = nstart
            if csize > 1:
                x0, y0 = overlay._points[cstart]
                cw, ch = overlay._cell_dims[csize.bit_length() - 1]
                if axis_x:
                    extra = (x0 + cw - 1 - nx) if step > 0 else (nx - x0)
                else:
                    extra = (y0 + ch - 1 - ny) if step > 0 else (ny - y0)
                advance = extra + 2
                if advance > remaining:
                    advance = remaining
                if advance > 1:
                    if axis_x:
                        nx = (best_px + step * advance) % x_size
                    else:
                        ny = (best_py + step * advance) % y_size
                    probe_key = point_keys[nx * y_size + ny]
                    next_owner = owners[
                        bisect.bisect_right(starts, probe_key) - 1
                    ]
        if next_owner != me:
            return next_owner
        # Defensive: only reachable with corrupted/stale geometry (a
        # healthy probe point lies outside our boundary).  Step one
        # zone toward the key in cyclic zone order — never away.
        return self._fallback_toward(key)

    def _fallback_toward(self, key: int) -> int:
        """Nearest zone toward ``key`` in cyclic zone-index order.

        The old fallback returned the zone-ring successor, which on a
        torus can point *away* from the target and livelock a walk
        between two stale nodes.  Stepping toward the key's zone index
        (whichever cyclic direction is shorter) makes even the
        degenerate path converge.
        """
        overlay = self._overlay
        owners = overlay._owners
        count = len(owners)
        me_index = overlay._owner_index(self.id)
        key_index = overlay._zone_index_for_key(key) % count
        forward = (key_index - me_index) % count
        backward = (me_index - key_index) % count
        step = 1 if forward <= backward else -1
        return owners[(me_index + step) % count]

    def route_unicast(self, message: OverlayMessage) -> None:
        key = message.key
        assert key is not None, "unicast message without a destination key"
        next_hop = self._next_hop(key)
        if next_hop is None:
            self._overlay.do_deliver(self, message)
            return
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    def start_mcast(self, message: OverlayMessage) -> None:
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """Partition targets by greedy next hop (coverage-complete;
        at-most-once per node per branch, like the Pastry variant)."""
        overlay = self._overlay
        starts = overlay._starts
        owners = overlay._owners
        me = self.id
        bisect_right = bisect.bisect_right
        targets = message.target_keys or frozenset()
        mine = {
            k for k in targets if owners[bisect_right(starts, k) - 1] == me
        }
        if mine:
            overlay.do_deliver(self, message)
        groups: dict[int, set[int]] = {}
        for key in targets - mine:
            next_hop = self._next_hop(key)
            if next_hop is not None:
                groups.setdefault(next_hop, set()).add(key)
        for next_hop, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            overlay.transmit(self.id, next_hop, branch)

    def continue_sequential(self, message: OverlayMessage) -> None:
        """Conservative walk, CAN version.

        An intermediate node keeps chasing the message's *current*
        chase key rather than re-picking by ring distance — geometric
        routing and ring distance disagree on a torus, and per-hop
        re-targeting can ping-pong between far-apart targets forever.
        Only a node that resolves the current key (delivers or covers
        it) selects the next one, which is exactly the paper's
        "each covering node forwards to the next key" protocol.
        """
        overlay = self._overlay
        keyspace = overlay.keyspace
        starts = overlay._starts
        owners = overlay._owners
        me = self.id
        bisect_right = bisect.bisect_right
        targets = message.target_keys or frozenset()
        mine = {
            k for k in targets if owners[bisect_right(starts, k) - 1] == me
        }
        if mine:
            overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        chase = message.key
        if chase is None or chase not in rest or chase in mine:
            chase = min(rest, key=lambda k: keyspace.distance(self.id, k))
        next_hop = self._next_hop(chase)
        if next_hop is None:
            return
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=chase
        )
        self._overlay.transmit(self.id, next_hop, onward)


class CanOverlay(MembershipDeltaLog, OverlayNetwork):
    """A CAN built on quadtree zones over the Morton-mapped key space.

    Membership semantics (documented simplifications vs deployed CAN):

    - ``join(node_id)``: the id doubles as the joiner's random point
      (CAN's join picks a random point); the zone containing it splits
      in half and the joiner takes the half containing its point.
    - ``leave``/``crash``: the zone is absorbed by the owner of the
      *Morton-predecessor* zone (its interval extends over ours),
      standing in for CAN's takeover rule; :meth:`heir_of` exposes this
      so the pub/sub layer promotes replicas at the right node.
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        state_transfer: StateTransferHook | None = None,
        *,
        express_links: bool = True,
        zone_jumps: bool = True,
    ) -> None:
        super().__init__(keyspace)
        self._sim = sim
        self._network = network or Network(sim)
        self.set_state_transfer(state_transfer)
        self._express_links = express_links
        self._zone_jumps = zone_jumps
        # Parallel arrays: sorted zone start keys and their owner ids.
        # Zones are cyclic: zone i spans [starts[i], starts[i+1]) and the
        # last zone wraps around to starts[0], so removals never need a
        # special case and a zone may legitimately wrap the origin.
        self._starts: list[int] = []
        self._owners: list[int] = []
        self._nodes: dict[int, CanNode] = {}
        # Membership vs. materialization — see RingOverlay: a sharded
        # worker tracks every zone owner in `_members` but only builds
        # CanNode state for its own ids (`_local_filter` is set for the
        # duration of build_ring).
        self._members: set[int] = set()
        self._ever_removed = False
        self._local_filter: set[int] | None = None
        self.zone_version = 0
        # Grid geometry tables, fixed for the life of the overlay: the
        # Morton decode of every key, the inverse (key at each grid
        # point), and the rectangle dimensions per cell size.  One
        # upfront pass replaces the per-hop bit-interleaving loops that
        # dominated routing profiles.
        bits = keyspace.bits
        x_size, y_size = axis_sizes(bits)
        self._x_size = x_size
        self._y_size = y_size
        points = [morton_decode(k, bits) for k in range(keyspace.size)]
        self._points = points
        point_keys = [0] * (x_size * y_size)
        for key, (x, y) in enumerate(points):
            point_keys[x * y_size + y] = key
        self._point_keys = point_keys
        self._cell_dims = []
        for free in range(bits + 1):
            width_bits = sum(
                1 for position in range(bits - free, bits) if position % 2 == 0
            )
            self._cell_dims.append((1 << width_bits, 1 << (free - width_bits)))
        # Maintenance counts of nodes that already departed: without
        # this, harness totals summed over live nodes silently truncate
        # (a departing node takes its counters with it).
        self._departed_maintenance = {
            "table_rebuilds": 0,
            "table_patches": 0,
            "table_seeds": 0,
            "express_patches": 0,
            "express_rebuilds": 0,
        }
        # Join entries log the owner whose zone the joiner split; depart
        # entries log the heir absorbing the departed zone — the only
        # live node besides the joiner/departed whose cells a membership
        # change can touch (see MembershipDeltaLog).  _delta_zones runs
        # parallel to the delta log with the joiner's (start, length)
        # for join entries (None for departs), which makes the express
        # patch replay exact: it decides key-by-key which side of the
        # split a link's target key landed on.
        self._delta_zones: list[tuple[int, int] | None] = []
        self._init_delta_log()

    # -- accessors -----------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def express_links(self) -> bool:
        """Whether 2^k long-range shortcut links are enabled."""
        return self._express_links

    @property
    def zone_jumps(self) -> bool:
        """Whether routing probes past the adjacent zone's far edge."""
        return self._zone_jumps

    @property
    def network(self) -> Network:
        return self._network

    @property
    def recorder(self) -> MetricsRecorder:
        return self._network.recorder

    @property
    def telemetry(self) -> Telemetry:
        """Observability sink shared with the network."""
        return self._network.telemetry

    def node(self, node_id: int) -> CanNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def node_ids(self) -> list[int]:
        """Live node ids, in zone (Morton-start) order."""
        return list(self._owners)

    def __len__(self) -> int:
        return len(self._owners)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._members

    @property
    def membership_stable(self) -> bool:
        """True while no node has ever left the overlay (see RingOverlay)."""
        return not self._ever_removed

    def app_node_ids(self) -> list[int]:
        """Zone-ordered ids with materialized node state (see base)."""
        nodes = self._nodes
        return [node_id for node_id in self._owners if node_id in nodes]

    def flat_routing_state(self) -> dict[str, list[int]]:
        """Flat parallel-array view of materialized zone state.

        Same structure-of-arrays contract as
        :meth:`RingOverlay.flat_routing_state`; each node contributes
        its flattened ``(start, size)`` cell pairs.
        """
        return _flatten_audit_states(
            (node_id, self._nodes[node_id].audit_state())
            for node_id in self._owners
            if node_id in self._nodes
        )

    def zone_of(self, node_id: int) -> tuple[int, int]:
        """``(start, length)`` of the node's zone (may wrap the origin)."""
        index = self._owner_index(node_id)
        start = self._starts[index]
        if len(self._starts) == 1:
            return start, self._keyspace.size
        end = self._starts[(index + 1) % len(self._starts)]
        return start, (end - start) % self._keyspace.size

    def compute_cells(self, node_id: int) -> list[tuple[int, int]]:
        """Ground-truth Morton-cell decomposition of the node's zone.

        The canonical ``(start, size)`` maximal aligned cells of
        :meth:`zone_of`; a zone wrapping the origin decomposes as two
        plain intervals.  :meth:`CanNode.cells` materializes exactly
        this, so the auditor compares a current node's cells against a
        fresh call of this method.
        """
        bits = self._keyspace.bits
        size = self._keyspace.size
        start, length = self.zone_of(node_id)
        if start + length <= size:
            return decompose(start, length, bits)
        head = size - start
        return decompose(start, head, bits) + decompose(0, length - head, bits)

    def compute_express_links(self, node_id: int) -> list[int]:
        """Ground-truth express links: the owner of the key at Morton
        distance ``2^k`` ahead of ``node_id``, for each ``k``.

        :meth:`CanNode._express_table` materializes exactly this, so
        the auditor compares a current node's links against a fresh
        call of this method.
        """
        size = self._keyspace.size
        starts = self._starts
        owners = self._owners
        bisect_right = bisect.bisect_right
        return [
            owners[bisect_right(starts, (node_id + (1 << k)) % size) - 1]
            for k in range(self._keyspace.bits)
        ]

    def rect_of_cell(self, start: int, size: int) -> tuple[int, int, int, int]:
        """``zone_rectangle`` via the precomputed geometry tables."""
        x0, y0 = self._points[start]
        width, height = self._cell_dims[size.bit_length() - 1]
        return x0, y0, width, height

    def zone_table(self) -> list[tuple[int, int]]:
        """The ``(zone start, owner)`` pairs in Morton-start order.

        Introspection for the auditor's tessellation check: the starts
        must be strictly increasing and every owner alive and covering
        its own id — together with the cyclic zone construction that
        guarantees the zones tile the key space exactly once.
        """
        return list(zip(self._starts, self._owners))

    def _owner_index(self, node_id: int) -> int:
        # Every live node covers its own id (the join cut guarantees
        # it), so its zone index is a bisect away.  The linear scan
        # only remains as a fallback for states that violate the
        # invariant (e.g. fault-injection tests corrupting the table).
        starts = self._starts
        if starts:
            index = bisect.bisect_right(starts, node_id) - 1
            if self._owners[index] == node_id:
                return index % len(starts)
        try:
            return self._owners.index(node_id)
        except ValueError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def _zone_index_for_key(self, key: int) -> int:
        # bisect_right - 1 is -1 for keys before the first start: they
        # belong to the wrapped last zone, which Python indexing already
        # selects with -1.
        return bisect.bisect_right(self._starts, key) - 1

    # -- membership -------------------------------------------------------------

    def build_ring(
        self, node_ids: Iterable[int], local: "set[int] | None" = None
    ) -> None:
        """Bulk construction: sequential CAN joins, first id bootstraps.

        ``local`` restricts node materialization to a shard's own ids
        (see :meth:`RingOverlay.build_ring`); the zone decomposition is
        computed over every id regardless, and **insertion order
        matters** — sharded workers must pass the ids in exactly the
        serial order so all shards (and the serial oracle) agree on the
        tessellation.
        """
        ids = list(dict.fromkeys(node_ids))
        if not ids:
            raise OverlayError("cannot build an empty overlay")
        if self._owners:
            raise OverlayError("overlay already built; use join()")
        first, *rest = ids
        self._keyspace.validate(first)
        self._local_filter = local
        try:
            # The bootstrap node's zone is the whole torus, anchored at
            # its own id (so it trivially covers itself).
            self._starts = [first]
            self._owners = [first]
            self._register(first)
            self.zone_version += 1
            for node_id in rest:
                self.join(node_id)
        finally:
            self._local_filter = None
        self._reset_delta_log(self.zone_version)

    def join(self, node_id: int) -> None:
        """CAN join: split the zone containing the joiner's point.

        The joiner's id doubles as CAN's "random point".  The cut is
        placed midway *between the owner's id and the joiner's id*
        (rather than at CAN's geometric midpoint) so that both nodes
        keep covering their own ids — the invariant the key-addressed
        notification path relies on.  With uniformly random ids the two
        conventions split zones equally in expectation.
        """
        self._keyspace.validate(node_id)
        if node_id in self._members:
            raise OverlayError(f"node {node_id} already joined")
        size = self._keyspace.size
        index = self._zone_index_for_key(node_id)
        owner = self._owners[index]
        start, length = self.zone_of(owner)
        owner_offset = (owner - start) % size
        joiner_offset = (node_id - start) % size
        cut_offset = (owner_offset + joiner_offset) // 2 + 1
        cut = (start + cut_offset) % size
        if joiner_offset > owner_offset:
            joiner_start = cut
            joiner_length = length - cut_offset
            cut_owner = node_id  # boundary `cut` begins the joiner's half
        else:
            joiner_start = start
            joiner_length = cut_offset
            cut_owner = owner  # owner keeps the upper part from `cut`
        # Insert the new boundary; owners stay pairwise aligned with
        # starts because both lists insert at the same position.
        position = bisect.bisect_left(self._starts, cut)
        self._starts.insert(position, cut)
        self._owners.insert(position, cut_owner)
        if cut_owner is owner:
            self._owners[self._starts.index(start)] = node_id
        self._register(node_id)
        self.zone_version += 1
        self._log_can_delta("join", node_id, owner, (joiner_start, joiner_length))
        if self._state_transfer is not None:
            left = (joiner_start - 1) % size
            right = (joiner_start + joiner_length - 1) % size
            self._state_transfer(owner, node_id, (left, right))

    def leave(self, node_id: int) -> None:
        """Graceful departure: the heir absorbs the zone, state first."""
        if len(self._owners) == 1:
            raise OverlayError("cannot remove the last node")
        heir = self.heir_of(node_id)
        start, length = self.zone_of(node_id)
        if self._state_transfer is not None:
            left = (start - 1) % self._keyspace.size
            right = (start + length - 1) % self._keyspace.size
            self._state_transfer(node_id, heir, (left, right))
        self._absorb(node_id)

    def crash(self, node_id: int) -> None:
        """Abrupt failure: zone absorbed, no handover."""
        if len(self._owners) == 1:
            raise OverlayError("cannot remove the last node")
        self._owner_index(node_id)  # validates the node exists
        self._absorb(node_id)

    def heir_of(self, node_id: int) -> int:
        """The node inheriting this node's zone on departure.

        The Morton-predecessor zone's owner: deleting our boundary
        extends that zone over ours (cyclically), standing in for CAN's
        smallest-neighbor takeover rule.  A single-node overlay is its
        own heir.
        """
        index = self._owner_index(node_id)
        return self._owners[(index - 1) % len(self._owners)]

    def _absorb(self, node_id: int) -> None:
        index = self._owner_index(node_id)
        heir = self._owners[(index - 1) % len(self._owners)]
        del self._starts[index]
        del self._owners[index]
        self._unregister(node_id)
        self.zone_version += 1
        self._log_can_delta("depart", node_id, heir, None)

    def _log_can_delta(
        self,
        op: str,
        node_id: int,
        other: int,
        zone: tuple[int, int] | None,
    ) -> None:
        """Append to the shared delta log plus the parallel zone log."""
        self._log_delta(op, node_id, other)
        zones = self._delta_zones
        zones.append(zone)
        overflow = len(zones) - len(self._delta_log)
        if overflow > 0:
            del zones[:overflow]

    def _reset_delta_log(self, version: int) -> None:
        super()._reset_delta_log(version)
        self._delta_zones.clear()

    def _register(self, node_id: int) -> None:
        self._members.add(node_id)
        local = self._local_filter
        if local is not None and node_id not in local:
            return
        node = CanNode(node_id, self)
        self._nodes[node_id] = node
        self._network.register(node_id, node.receive, node.receive_batch)

    def _unregister(self, node_id: int) -> None:
        self._members.discard(node_id)
        self._ever_removed = True
        node = self._nodes.pop(node_id, None)
        if node is None:
            return
        totals = self._departed_maintenance
        for key in totals:
            totals[key] += getattr(node, key, 0)
        self._network.unregister(node_id)

    def maintenance_totals(self) -> dict[str, int]:
        """Exact run-wide maintenance counts: live nodes + departed ones.

        The per-node ``table_*`` properties only cover nodes still
        alive; departures accumulate here first, so harness totals are
        exact regardless of churn.
        """
        totals = dict(self._departed_maintenance)
        for node in self._nodes.values():
            for key in totals:
                totals[key] += getattr(node, key, 0)
        return totals

    # -- KN-mapping ---------------------------------------------------------------

    def owner_of(self, key: int) -> int:
        if not self._owners:
            raise OverlayError("empty overlay")
        self._keyspace.validate(key)
        return self._owners[self._zone_index_for_key(key)]

    def covers(self, node_id: int, key: int) -> bool:
        return self.owner_of(key) == node_id

    def successor_of(self, node_id: int) -> int:
        index = self._owner_index(node_id)
        return self._owners[(index + 1) % len(self._owners)]

    def predecessor_of(self, node_id: int) -> int:
        index = self._owner_index(node_id)
        return self._owners[(index - 1) % len(self._owners)]

    def neighbor_of(self, node_id: int, side: NeighborSide) -> int:
        if side is NeighborSide.SUCCESSOR:
            return self.successor_of(node_id)
        return self.predecessor_of(node_id)

    # -- communication ---------------------------------------------------------

    def send(self, source_id: int, key: int, message: OverlayMessage) -> None:
        self._keyspace.validate(key)
        node = self.node(source_id)
        unicast = dataclasses.replace(
            message, key=key, mode=CastMode.UNICAST, hops=0, path=()
        )
        node.route_unicast(unicast)

    def mcast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.start_mcast(
            dataclasses.replace(
                message, target_keys=targets, mode=CastMode.MCAST, hops=0, path=()
            )
        )

    def sequential_cast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.continue_sequential(
            dataclasses.replace(
                message,
                target_keys=targets,
                mode=CastMode.SEQUENTIAL,
                hops=0,
                path=(),
            )
        )

    def send_to_neighbor(
        self, source_id: int, side: NeighborSide, message: OverlayMessage
    ) -> None:
        neighbor = self.neighbor_of(source_id, side)
        if neighbor == source_id:
            self.do_deliver(self.node(source_id), message)
            return
        self.transmit(source_id, neighbor, message.forwarded_copy(source_id))

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        self._network.transmit(src, dst, message)

    def do_deliver(self, node: CanNode, message: OverlayMessage) -> None:
        self.recorder.messages.record_delivery(
            message.request_id, node.id, self._sim.now, message.hops
        )
        tracer = self._network.active_tracer
        if tracer is not None:
            tracer.delivery(
                message.trace, message.request_id, node.id, self._sim.now
            )
        load = self._network.active_load
        if load is not None:
            load.on_deliver(node.id)
        self._deliver_upcall(node.id, message)
