"""Z-order (Morton) curve machinery for the CAN overlay.

The shared ``m``-bit key space maps onto a 2-d grid by bit
de-interleaving: even bit positions (from the MSB, 0-based) form the x
coordinate, odd positions the y coordinate.  For odd ``m`` the x axis
gets the extra bit, so a 13-bit space is a 128 x 64 torus.

The property everything rests on: an *aligned* key interval of size
``2**k`` (a quadtree cell in key terms) is exactly a rectangle in the
grid — so CAN zones can be contiguous key intervals and geometric
rectangles at the same time.
"""

from __future__ import annotations

from repro.errors import OverlayError


def axis_sizes(bits: int) -> tuple[int, int]:
    """Grid dimensions ``(x_size, y_size)`` for an m-bit key space."""
    x_bits = (bits + 1) // 2
    y_bits = bits // 2
    return 1 << x_bits, 1 << y_bits


def morton_decode(key: int, bits: int) -> tuple[int, int]:
    """Key -> (x, y): even MSB-positions to x, odd to y."""
    x = y = 0
    for position in range(bits):  # position 0 = MSB
        bit = (key >> (bits - 1 - position)) & 1
        if position % 2 == 0:
            x = (x << 1) | bit
        else:
            y = (y << 1) | bit
    return x, y


def morton_encode(x: int, y: int, bits: int) -> int:
    """(x, y) -> key; inverse of :func:`morton_decode`."""
    x_bits = (bits + 1) // 2
    y_bits = bits // 2
    if not 0 <= x < (1 << x_bits) or not 0 <= y < (1 << y_bits):
        raise OverlayError(f"point ({x}, {y}) outside the {bits}-bit grid")
    key = 0
    xi = x_bits
    yi = y_bits
    for position in range(bits):
        if position % 2 == 0:
            xi -= 1
            bit = (x >> xi) & 1
        else:
            yi -= 1
            bit = (y >> yi) & 1
        key = (key << 1) | bit
    return key


def zone_rectangle(start: int, size: int, bits: int) -> tuple[int, int, int, int]:
    """Rectangle ``(x0, y0, width, height)`` of an aligned cell.

    ``size`` must be a power of two and ``start`` a multiple of it —
    i.e., the interval ``[start, start + size)`` is a quadtree cell.
    The cell fixes the top ``bits - k`` Morton bits (k = log2 size); the
    free low bits split into width and height by interleaving parity.
    """
    if size < 1 or size & (size - 1):
        raise OverlayError(f"cell size {size} is not a power of two")
    if start % size:
        raise OverlayError(f"start {start} not aligned to size {size}")
    free = size.bit_length() - 1  # k free (low) bit positions
    # Free positions are bits-1-free .. bits-1 (0-based from MSB); count
    # how many land on each axis.
    width_bits = sum(1 for position in range(bits - free, bits) if position % 2 == 0)
    height_bits = free - width_bits
    x0, y0 = morton_decode(start, bits)
    return x0, y0, 1 << width_bits, 1 << height_bits


def decompose(start: int, length: int, bits: int) -> list[tuple[int, int]]:
    """Split ``[start, start + length)`` into maximal aligned cells.

    Returns ``(cell_start, cell_size)`` pairs.  Standard greedy
    decomposition: at each step take the largest power-of-two cell that
    is aligned at the current position and fits in the remainder.  Any
    interval of length L decomposes into O(log L) cells.
    """
    if length < 1:
        raise OverlayError(f"cannot decompose empty interval (length={length})")
    size_limit = 1 << bits
    if not 0 <= start < size_limit or length > size_limit:
        raise OverlayError("interval outside the key space")
    cells = []
    position = start
    remaining = length
    while remaining:
        alignment = position & -position if position else size_limit
        size = min(alignment, 1 << (remaining.bit_length() - 1))
        cells.append((position % size_limit, size))
        position += size
        remaining -= size
    return cells


def torus_delta(source: int, target: int, size: int) -> int:
    """Signed shortest step count from ``source`` to ``target`` on a
    1-d torus of the given size (positive = increasing direction)."""
    forward = (target - source) % size
    backward = (source - target) % size
    return forward if forward <= backward else -backward


def rect_closest_point(
    rect: tuple[int, int, int, int],
    tx: int,
    ty: int,
    x_size: int,
    y_size: int,
) -> tuple[int, int]:
    """The point of ``rect`` with minimal torus Manhattan distance to
    ``(tx, ty)``."""
    x0, y0, width, height = rect

    def clamp(start, extent, t, size):
        # Candidate: t itself if inside (torus-aware), else nearest edge.
        offset = (t - start) % size
        if offset < extent:
            return (start + offset) % size
        # Outside: nearer edge by torus distance.
        last = (start + extent - 1) % size
        to_start = min((start - t) % size, (t - start) % size)
        to_last = min((last - t) % size, (t - last) % size)
        return start if to_start <= to_last else last

    return clamp(x0, width, tx, x_size), clamp(y0, height, ty, y_size)
