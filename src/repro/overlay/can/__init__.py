"""A CAN-style overlay: d-dimensional zones with greedy geometric routing.

CAN (Ratnasamy et al.) is the third overlay family the paper names
(Section 2, Section 4.2: "a key is a discrete point in a
multidimensional space").  This implementation maps the shared integer
key space onto a 2-d torus via the Z-order (Morton) curve and partitions
it into quadtree *zones*, one per node:

- a zone is a rectangle in 2-d space **and simultaneously** a contiguous
  interval of Morton keys (the defining property of the Z-order
  quadtree), so the pub/sub layer's interval-based churn contract
  (Section 4.1 state transfer) carries over unchanged;
- a node covers exactly the keys of its zone; joins split the zone
  owning a random point (CAN's join), leaves/crashes hand the zone to
  the Morton-successor owner (a documented simplification of CAN's
  smallest-neighbor takeover rule);
- routing is CAN's greedy geometric forwarding: each hop moves to the
  edge-adjacent neighbor zone closest to the target point, giving the
  characteristic O(sqrt(n)) path lengths (vs Chord's O(log n)) that the
  routing bench exhibits.

The full pub/sub stack runs over this overlay in the portability tests.
"""

from repro.overlay.can.morton import morton_decode, morton_encode, zone_rectangle
from repro.overlay.can.overlay import CanOverlay

__all__ = ["CanOverlay", "morton_decode", "morton_encode", "zone_rectangle"]
