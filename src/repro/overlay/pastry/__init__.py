"""A Pastry-style prefix-routing overlay (Rowstron & Druschel, 2001).

The paper's footnote 1 claims the pub/sub infrastructure is portable
across structured overlays (Chord, Pastry, Tapestry, CAN).  This
subpackage substantiates that claim: a second overlay with an entirely
different routing geometry — per-bit prefix correction plus a leaf set
— behind the same :class:`~repro.overlay.api.OverlayNetwork` interface.
The integration test suite runs the full pub/sub stack over it.

Simplifications relative to deployed Pastry (documented in DESIGN.md):
keys are covered by their ring *successor* (as in Chord) rather than
the numerically closest node, so the churn/state-transfer contract is
identical across overlays; and the one-to-many primitive partitions
targets by next routing hop, which guarantees delivery to every
covering node but only *at-most-once delivery per node per branch* —
the pub/sub layer's idempotent stores and publication dedup absorb the
(rare) duplicate branch arrivals.
"""

from repro.overlay.pastry.node import PastryNode
from repro.overlay.pastry.overlay import PastryOverlay

__all__ = ["PastryNode", "PastryOverlay"]
