"""A Pastry-style node: leaf set + per-bit prefix routing table.

Routing works digit by digit (here: bit by bit).  To route toward key
``k``, a node forwards to its routing-table entry for the first bit
where its own id differs from ``k`` — that entry shares a strictly
longer prefix with ``k``, so every hop makes prefix progress and
routing terminates in at most ``m`` hops.  Once ``k`` falls within the
leaf set's ring span, the message jumps directly to the leaf covering
it.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.pastry.overlay import PastryOverlay


def common_prefix_length(a: int, b: int, bits: int) -> int:
    """Number of leading bits shared by two m-bit identifiers."""
    difference = a ^ b
    if difference == 0:
        return bits
    return bits - difference.bit_length()


class PastryNode:
    """One overlay node with prefix-routing state.

    Routing state (leaf set + routing table) is computed on demand from
    the overlay's membership and memoized per ring version, modelling a
    converged overlay (same approach as the Chord node's fingers).
    """

    def __init__(self, node_id: int, overlay: "PastryOverlay") -> None:
        self.id = node_id
        self._overlay = overlay
        self._leaf_set: list[int] = []
        self._table: list[int | None] = []
        self._version = -1
        # Maintenance counters, mirroring ChordNode's read surface so
        # harnesses can report all overlays uniformly.  Pastry routing
        # state is always recomputed wholesale, so every refresh is a
        # rebuild and the patch counter stays at zero until the
        # incremental-maintenance port (see ROADMAP) lands.
        registry = overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "pastry.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "pastry.table_patches", node=node_id
        )

    @property
    def table_rebuilds(self) -> int:
        """Full routing-state recomputations (leaf set + table)."""
        return self._rebuilds_counter.value

    @property
    def table_patches(self) -> int:
        """Incremental patches — always 0 (no incremental path yet)."""
        return self._patches_counter.value

    # -- routing state -----------------------------------------------------

    def _refresh(self) -> None:
        version = self._overlay.ring_version
        if self._version == version:
            return
        self._leaf_set = self._overlay.compute_leaf_set(self.id)
        self._table = self._overlay.compute_routing_table(self.id)
        self._version = version
        self._rebuilds_counter.inc()

    def leaf_set(self) -> list[int]:
        """The nearest ring neighbors on both sides (ring order)."""
        self._refresh()
        return self._leaf_set

    def routing_table(self) -> list[int | None]:
        """Entry ``i``: a live node sharing ``i`` leading bits with this
        node and differing at bit ``i`` (None if that half-space between
        prefixes is empty)."""
        self._refresh()
        return self._table

    def covers(self, key: int) -> bool:
        """True if this node covers ``key`` (successor convention)."""
        return self._overlay.covers(self.id, key)

    # -- message handling ----------------------------------------------------

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver."""
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def _next_hop(self, key: int) -> int | None:
        """The prefix-routing next hop toward ``key`` (None = deliver here).

        1. If we cover the key, deliver.
        2. If the key lies within the leaf set's ring span, jump to the
           covering leaf directly.
        3. Otherwise forward to the routing-table entry for the first
           differing bit; if that slot is empty, fall back to the known
           node (leaf or table entry) whose id shares the longest
           prefix with the key, provided it makes prefix progress —
           and to the successor leaf as a last resort (ring progress).
        """
        if self.covers(key):
            return None
        self._refresh()
        keyspace = self._overlay.keyspace
        leaves = self._leaf_set
        if leaves:
            # The leaf set spans the ring interval (first_leaf_pred, last_leaf];
            # inside it, the covering node is one of the leaves (or us).
            span_left = self._overlay.predecessor_of(leaves[0])
            span_right = leaves[-1]
            if keyspace.in_open_closed(key, span_left, span_right):
                for leaf in leaves:
                    if self._overlay.covers(leaf, key):
                        return leaf
        bits = keyspace.bits
        shared = common_prefix_length(self.id, key, bits)
        entry = self._table[shared] if shared < bits else None
        if entry is not None:
            return entry
        # Rare fallback: the half-space for the differing bit holds no
        # node.  Pick the best prefix match among everything we know.
        best: int | None = None
        best_shared = shared
        for candidate in list(self._table) + leaves:
            if candidate is None or candidate == self.id:
                continue
            candidate_shared = common_prefix_length(candidate, key, bits)
            if candidate_shared > best_shared:
                best = candidate
                best_shared = candidate_shared
        if best is not None:
            return best
        # Last resort: step clockwise; the successor always exists.
        return self._overlay.successor_of(self.id)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Prefix-route a unicast message toward its key."""
        key = message.key
        assert key is not None, "unicast message without a destination key"
        next_hop = self._next_hop(key)
        if next_hop is None:
            self._overlay.do_deliver(self, message)
            return
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    # -- one-to-many ------------------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the prefix-partitioned multicast."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """Partition the target keys by their unicast next hop.

        Covered keys are delivered here (once per arrival); the rest
        are grouped by next hop and forwarded as sub-multicasts.  Every
        key follows exactly its unicast route, so coverage is complete;
        a node may receive more than one branch (see package docstring).
        """
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        groups: dict[int, set[int]] = {}
        for key in targets - mine:
            next_hop = self._next_hop(key)
            if next_hop is None:  # defensive; covered keys already removed
                continue
            groups.setdefault(next_hop, set()).add(key)
        for next_hop, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.transmit(self.id, next_hop, branch)

    def continue_sequential(self, message: OverlayMessage) -> None:
        """Conservative walk: chase the nearest remaining key clockwise."""
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        next_key = min(rest, key=lambda k: keyspace.distance(self.id, k))
        next_hop = self._next_hop(next_key)
        if next_hop is None:
            return
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=next_key
        )
        self._overlay.transmit(self.id, next_hop, onward)
