"""A Pastry-style node: leaf set + per-bit prefix routing table.

Routing works digit by digit (here: bit by bit).  To route toward key
``k``, a node forwards to its routing-table entry for the first bit
where its own id differs from ``k`` — that entry shares a strictly
longer prefix with ``k``, so every hop makes prefix progress and
routing terminates in at most ``m`` hops.  Once ``k`` falls within the
leaf set's ring span, the message jumps directly to the leaf covering
it.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.pastry.overlay import PastryOverlay


def common_prefix_length(a: int, b: int, bits: int) -> int:
    """Number of leading bits shared by two m-bit identifiers."""
    difference = a ^ b
    if difference == 0:
        return bits
    return bits - difference.bit_length()


class PastryNode:
    """One overlay node with prefix-routing state.

    Routing state (leaf set + routing table) is memoized per ring
    version, modelling a converged overlay (same approach as the Chord
    node's fingers).  A stale node catches up by replaying the
    overlay's membership delta log — joins min-update exactly one
    routing-table row and dirty the leaf set only when they land inside
    its arc; departures recompute exactly the rows they held — and
    falls back to wholesale recomputation only when the log no longer
    reaches its version (or the gap exceeds the state size).  Joiners
    are seeded from their successor's table at join time.
    """

    def __init__(self, node_id: int, overlay: "PastryOverlay") -> None:
        self.id = node_id
        self._overlay = overlay
        self._leaf_set: list[int] = []
        self._table: list[int | None] = []
        self._version = -1
        keyspace = overlay.keyspace
        self._bits = keyspace.bits
        self._size = keyspace.size
        # Replaying more deltas than the routing state has entries is
        # slower than recomputing it; past this many missed deltas the
        # node falls back to a wholesale rebuild (same rule as Chord's
        # table-rows bound).
        self._patch_limit = keyspace.bits + overlay.leaf_set_size
        # Maintenance counters, mirroring ChordNode's read surface so
        # harnesses can report all overlays uniformly.
        registry = overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "pastry.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "pastry.table_patches", node=node_id
        )
        self._seeds_counter = registry.counter(
            "pastry.table_seeds", node=node_id
        )

    @property
    def table_rebuilds(self) -> int:
        """Full routing-state recomputations (leaf set + table)."""
        return self._rebuilds_counter.value

    @property
    def table_patches(self) -> int:
        """Incremental delta-log patches of the routing state."""
        return self._patches_counter.value

    @property
    def table_seeds(self) -> int:
        """Join-time routing-state seedings."""
        return self._seeds_counter.value

    # -- routing state -----------------------------------------------------

    def _refresh(self) -> None:
        """Catch the leaf set + routing table up to the ring version.

        Replays the overlay's membership delta log when it stretches
        back to this node's version and the gap is small enough;
        otherwise recomputes both structures wholesale.
        """
        overlay = self._overlay
        version = overlay.ring_version
        if self._version == version:
            return
        log = overlay._delta_log
        start = self._version - overlay._delta_base
        if start < 0 or len(log) - start > self._patch_limit:
            self._rebuild(version)
        else:
            self._patch(log, start, version)

    def _rebuild(self, version: int) -> None:
        self._leaf_set = self._overlay.compute_leaf_set(self.id)
        self._table = self._overlay.compute_routing_table(self.id)
        self._version = version
        self._rebuilds_counter.inc()

    def _patch(
        self, log: list[tuple[str, int, int]], start: int, version: int
    ) -> None:
        """Replay membership deltas instead of rebuilding.

        Routing-table rows: a join J lands in exactly the row
        ``common_prefix_length(self, J)`` — its id shares that many
        leading bits with ours and differs at the next — and the row
        entry is the *smallest* id in the row's half-space, so the
        update is a min.  A departure only invalidates rows whose entry
        is the departed node; those are recomputed from the current
        ring, which is exact because later joins in the log are already
        reflected there (the min-update then no-ops) and later
        departures of the recomputed entry recompute again.

        Leaf set: a join matters only if it falls inside the current
        leaf arc (anything outside is farther than every existing leaf)
        and a departure only if it takes a current leaf — or, either
        way, if the set holds fewer than L nodes (small ring: every
        membership change can shift it).  The first delta that matters
        marks the set dirty; it is then recomputed once from the
        current ring, which subsumes the remaining deltas.
        """
        overlay = self._overlay
        me = self.id
        size = self._size
        table = self._table
        leaves = self._leaf_set
        leaf_dirty = len(leaves) < self._overlay.leaf_set_size
        bits = self._bits
        for index in range(start, len(log)):
            op, node_id, other = log[index]
            if op == "join":
                row = common_prefix_length(me, node_id, bits)
                entry = table[row]
                if entry is None or node_id < entry:
                    table[row] = node_id
                if not leaf_dirty:
                    arc_start = leaves[0]
                    span = (leaves[-1] - arc_start) % size
                    if (node_id - arc_start) % size <= span:
                        leaf_dirty = True
            else:  # depart
                if node_id in table:
                    table_row = overlay._table_row
                    for row in range(bits):
                        if table[row] == node_id:
                            table[row] = table_row(me, row)
                if not leaf_dirty and node_id in leaves:
                    leaf_dirty = True
        if leaf_dirty:
            self._leaf_set = overlay.compute_leaf_set(me)
        self._version = version
        self._patches_counter.inc()

    def seed_tables(self) -> None:
        """Seed routing state at join time from the successor's table.

        Called by the overlay right after this node's join is applied.
        For every row below ``common_prefix_length(self, successor)``
        the two nodes share the row's prefix *and* the flipped bit, so
        the row half-spaces — and hence the entries — are identical and
        copy over; deeper rows are recomputed with one ring bisect
        each.  The successor is refreshed first so its rows are at the
        current version (which already includes this join).  The leaf
        set is taken from the ring directly (it is this node's own
        neighborhood; the successor's tells us nothing extra).
        """
        overlay = self._overlay
        version = overlay.ring_version
        me = self.id
        bits = self._bits
        succ_id = overlay.successor_of(me)
        if succ_id == me:  # alone on the ring
            self._table = [None] * bits
            self._leaf_set = []
        else:
            succ = overlay._nodes[succ_id]
            assert isinstance(succ, PastryNode)
            succ._refresh()
            succ_table = succ._table
            shared = common_prefix_length(me, succ_id, bits)
            table_row = overlay._table_row
            self._table = [
                succ_table[row] if row < shared else table_row(me, row)
                for row in range(bits)
            ]
            self._leaf_set = overlay.compute_leaf_set(me)
        self._version = version
        self._seeds_counter.inc()

    def leaf_set(self) -> list[int]:
        """The nearest ring neighbors on both sides (ring order)."""
        self._refresh()
        return self._leaf_set

    def routing_table(self) -> list[int | None]:
        """Entry ``i``: a live node sharing ``i`` leading bits with this
        node and differing at bit ``i`` (None if that half-space between
        prefixes is empty)."""
        self._refresh()
        return self._table

    def audit_state(self) -> tuple[int, list[int], list[int | None]]:
        """Raw routing state for the auditor: ``(version, leaves, table)``.

        Non-mutating by contract (no :meth:`_refresh`): the auditor
        must see the leaf set and prefix rows exactly as routing left
        them.  Version -1 means cold (never materialized).
        """
        return self._version, list(self._leaf_set), list(self._table)

    def covers(self, key: int) -> bool:
        """True if this node covers ``key`` (successor convention)."""
        return self._overlay.covers(self.id, key)

    # -- message handling ----------------------------------------------------

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver."""
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def receive_batch(self, messages: list[OverlayMessage]) -> None:
        """Bucket entry point: dispatch one ``(dst, tick)`` inbox.

        Routing state is version-memoized, so the first message that
        routes syncs it once and the rest of the bucket rides the
        fast path.  Mid-batch self-unregistration drops the remainder
        with the drain loop's accounting.
        """
        if len(messages) == 1:
            self.receive(messages[0])
            return
        network = self._overlay.network
        is_alive = network.is_alive
        me = self.id
        receive = self.receive
        for index, message in enumerate(messages):
            if not is_alive(me):
                network.drop_undeliverable(messages[index:])
                return
            receive(message)

    def _next_hop(self, key: int) -> int | None:
        """The prefix-routing next hop toward ``key`` (None = deliver here).

        1. If we cover the key, deliver.
        2. If the key lies within the leaf set's ring span, jump to the
           covering leaf directly.
        3. Otherwise forward to the routing-table entry for the first
           differing bit; if that slot is empty, fall back to the known
           node (leaf or table entry) whose id shares the longest
           prefix with the key, provided it makes prefix progress —
           and to the successor leaf as a last resort (ring progress).
        """
        if self.covers(key):
            return None
        self._refresh()
        keyspace = self._overlay.keyspace
        leaves = self._leaf_set
        if leaves:
            # The leaf set spans the ring interval (first_leaf_pred, last_leaf];
            # inside it, the covering node is one of the leaves (or us).
            span_left = self._overlay.predecessor_of(leaves[0])
            span_right = leaves[-1]
            if keyspace.in_open_closed(key, span_left, span_right):
                for leaf in leaves:
                    if self._overlay.covers(leaf, key):
                        return leaf
        bits = keyspace.bits
        shared = common_prefix_length(self.id, key, bits)
        entry = self._table[shared] if shared < bits else None
        if entry is not None:
            return entry
        # Rare fallback: the half-space for the differing bit holds no
        # node.  Pick the best prefix match among everything we know.
        best: int | None = None
        best_shared = shared
        for candidate in list(self._table) + leaves:
            if candidate is None or candidate == self.id:
                continue
            candidate_shared = common_prefix_length(candidate, key, bits)
            if candidate_shared > best_shared:
                best = candidate
                best_shared = candidate_shared
        if best is not None:
            return best
        # Last resort: step clockwise; the successor always exists.
        return self._overlay.successor_of(self.id)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Prefix-route a unicast message toward its key."""
        key = message.key
        assert key is not None, "unicast message without a destination key"
        next_hop = self._next_hop(key)
        if next_hop is None:
            self._overlay.do_deliver(self, message)
            return
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    # -- one-to-many ------------------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the prefix-partitioned multicast."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """Partition the target keys by their unicast next hop.

        Covered keys are delivered here (once per arrival); the rest
        are grouped by next hop and forwarded as sub-multicasts.  Every
        key follows exactly its unicast route, so coverage is complete;
        a node may receive more than one branch (see package docstring).
        """
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        groups: dict[int, set[int]] = {}
        for key in targets - mine:
            next_hop = self._next_hop(key)
            if next_hop is None:  # defensive; covered keys already removed
                continue
            groups.setdefault(next_hop, set()).add(key)
        for next_hop, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.transmit(self.id, next_hop, branch)

    def continue_sequential(self, message: OverlayMessage) -> None:
        """Conservative walk: chase the nearest remaining key clockwise."""
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        next_key = min(rest, key=lambda k: keyspace.distance(self.id, k))
        next_hop = self._next_hop(next_key)
        if next_hop is None:
            return
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=next_key
        )
        self._overlay.transmit(self.id, next_hop, onward)
