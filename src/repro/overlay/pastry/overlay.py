"""The Pastry-style overlay: leaf sets and per-bit routing tables."""

from __future__ import annotations

import bisect

from repro.overlay.api import StateTransferHook
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.overlay.pastry.node import PastryNode
from repro.overlay.ring import RingOverlay
from repro.sim.kernel import Simulator


class PastryOverlay(RingOverlay):
    """A prefix-routing overlay behind the common ring interface.

    Args:
        sim: The simulation kernel.
        keyspace: The m-bit identifier space.
        network: Message transport (defaults to 50 ms fixed delay).
        leaf_set_size: Total leaf-set size L (L/2 neighbors per side).
        state_transfer: Optional Section 4.1 churn hook.
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        leaf_set_size: int = 8,
        state_transfer: StateTransferHook | None = None,
    ) -> None:
        super().__init__(sim, keyspace, network, state_transfer)
        if leaf_set_size < 2 or leaf_set_size % 2:
            raise ValueError("leaf_set_size must be a positive even number")
        self._leaf_set_size = leaf_set_size

    @property
    def leaf_set_size(self) -> int:
        """Configured total leaf-set size L (L/2 neighbors per side)."""
        return self._leaf_set_size

    def _make_node(self, node_id: int) -> PastryNode:
        return PastryNode(node_id, self)

    def _seed_joiner(self, node_id: int) -> None:
        node = self._nodes[node_id]
        assert isinstance(node, PastryNode)
        node.seed_tables()

    def node(self, node_id: int) -> PastryNode:
        """The live Pastry node with the given id."""
        node = super().node(node_id)
        assert isinstance(node, PastryNode)
        return node

    def compute_leaf_set(self, node_id: int) -> list[int]:
        """Up to L/2 ring neighbors per side, returned in ring order.

        "Ring order" here means clockwise order starting from the
        farthest counter-clockwise leaf, so the list spans a contiguous
        arc with ``node_id`` conceptually in the middle (the node itself
        is excluded).
        """
        index = self._ring_index(node_id)
        n = len(self._ring)
        half = min(self._leaf_set_size // 2, (n - 1) // 2 + ((n - 1) % 2))
        before = [
            self._ring[(index - offset) % n]
            for offset in range(min(self._leaf_set_size // 2, n - 1), 0, -1)
        ]
        after = [
            self._ring[(index + offset) % n]
            for offset in range(1, min(self._leaf_set_size // 2, n - 1) + 1)
        ]
        # De-duplicate for tiny rings where the arcs overlap.
        seen: set[int] = {node_id}
        leaves: list[int] = []
        for candidate in before + after:
            if candidate not in seen:
                seen.add(candidate)
                leaves.append(candidate)
        del half  # clarity: arc bounded by min() above
        return leaves

    def compute_routing_table(self, node_id: int) -> list[int | None]:
        """Entry ``i``: a live node sharing exactly ``i`` leading bits.

        The half-space of ids that share the first ``i`` bits with
        ``node_id`` but differ at bit ``i`` is the contiguous interval
        ``[prefix', prefix' + 2**(m-i-1))`` where ``prefix'`` flips bit
        ``i``.  We pick the first live node inside it (deterministic,
        and independent of this node's position within its own
        interval), or None when the interval holds no node.
        """
        bits = self._keyspace.bits
        return [self._table_row(node_id, position) for position in range(bits)]

    def _table_row(self, node_id: int, position: int) -> int | None:
        """One routing-table entry, recomputed from the current ring.

        The incremental patch path calls this for exactly the rows a
        departure invalidated; :meth:`compute_routing_table` maps it
        over all rows.
        """
        bits = self._keyspace.bits
        shift = bits - 1 - position
        flipped = node_id ^ (1 << shift)
        start = (flipped >> shift) << shift
        end = start + (1 << shift)  # exclusive
        index = bisect.bisect_left(self._ring, start)
        if index < len(self._ring) and self._ring[index] < end:
            return self._ring[index]
        return None
