"""Shared machinery of ring-structured overlays.

Both overlays in this library (Chord and the Pastry-style prefix
router) organize nodes on the same circular identifier space, assign
each key to its successor node, and support the same membership and
one-to-many operations.  :class:`RingOverlay` factors that common core:
the sorted ring, the KN-mapping (``owner_of``), neighbor lookup,
join/leave/crash with the Section 4.1 state-transfer hooks, and the
plumbing to the simulated network.  Subclasses contribute a node type
(routing state) by overriding :meth:`_make_node`.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Protocol

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import (
    CastMode,
    NeighborSide,
    OverlayMessage,
    OverlayNetwork,
    StateTransferHook,
)
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.sim.kernel import Simulator
from repro.telemetry import Telemetry


class RingNode(Protocol):
    """What :class:`RingOverlay` requires of a node implementation."""

    id: int

    def receive(self, message: OverlayMessage) -> None: ...
    def receive_batch(self, messages: list[OverlayMessage]) -> None: ...
    def route_unicast(self, message: OverlayMessage) -> None: ...
    def start_mcast(self, message: OverlayMessage) -> None: ...
    def continue_sequential(self, message: OverlayMessage) -> None: ...


class MembershipDeltaLog:
    """Bounded membership change log keyed by a version counter.

    Overlays mix this in next to their version counter (``ring_version``
    for the ring overlays, ``zone_version`` for CAN) and append one
    entry per version bump past ``_delta_base``: ``("join", id, other)``
    or ``("depart", id, other)``, where ``other`` is the peer whose
    routing state the change touches besides the joiner/departed node
    itself (the ring predecessor / zone-split owner on join, the heir
    on departure).  A node holding routing state for version ``v``
    catches up by replaying ``deltas_since(v)`` instead of rebuilding.
    Bulk construction resets the log (its bump is a wholesale change),
    and the log is capped: once it outgrows ``_DELTA_LOG_CAP`` the
    oldest entries are dropped and stragglers fall back to a rebuild.
    """

    _DELTA_LOG_CAP = 512

    def _init_delta_log(self) -> None:
        self._delta_base = 0
        self._delta_log: list[tuple[str, int, int]] = []

    def _reset_delta_log(self, version: int) -> None:
        """Forget history up to ``version`` (wholesale membership change)."""
        self._delta_base = version
        self._delta_log.clear()

    def _log_delta(self, op: str, node_id: int, other: int) -> None:
        log = self._delta_log
        log.append((op, node_id, other))
        if len(log) > self._DELTA_LOG_CAP:
            drop = len(log) - self._DELTA_LOG_CAP
            del log[:drop]
            self._delta_base += drop

    def deltas_since(self, version: int) -> list[tuple[str, int, int]] | None:
        """Membership changes between ``version`` and the current one.

        Returns the change entries a node at ``version`` must replay to
        reach the current version, oldest first, or ``None`` when the
        log no longer stretches back that far (caller must rebuild).
        """
        start = version - self._delta_base
        if start < 0:
            return None
        return self._delta_log[start:]

    def _delta_window(self, version: int) -> tuple[list[tuple[str, int, int]], int] | None:
        """Zero-copy view of :meth:`deltas_since`: ``(log, start)``.

        Hot catch-up paths replay missed deltas on every routing step,
        so the slice allocation in :meth:`deltas_since` shows up in
        profiles.  This returns the whole log plus the start offset the
        caller iterates from, or ``None`` on log overrun (rebuild)."""
        start = version - self._delta_base
        if start < 0:
            return None
        return self._delta_log, start


def _flatten_audit_states(states) -> dict[str, list[int]]:
    """Flatten ``(node_id, audit_state())`` pairs into parallel arrays.

    Shared by the ring overlays and CAN.  Each audit state is
    ``(version, *arrays)`` where the arrays hold ints, ``None`` (empty
    routing slots, encoded -1) or int tuples (CAN cells, flattened in
    order).
    """
    node_ids: list[int] = []
    versions: list[int] = []
    offsets: list[int] = [0]
    entries: list[int] = []
    for node_id, state in states:
        node_ids.append(node_id)
        versions.append(state[0])
        for part in state[1:]:
            for value in part:
                if value is None:
                    entries.append(-1)
                elif isinstance(value, tuple):
                    entries.extend(value)
                else:
                    entries.append(value)
        offsets.append(len(entries))
    return {
        "node_ids": node_ids,
        "versions": versions,
        "offsets": offsets,
        "entries": entries,
    }


class RingOverlay(MembershipDeltaLog, OverlayNetwork):
    """Base class: membership, KN-mapping and message entry points.

    Args:
        sim: The simulation kernel.
        keyspace: The m-bit identifier space.
        network: Message transport (defaults to 50 ms fixed delay).
        state_transfer: Optional Section 4.1 churn hook.
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        state_transfer: StateTransferHook | None = None,
    ) -> None:
        super().__init__(keyspace)
        self._sim = sim
        self._network = network or Network(sim)
        self.set_state_transfer(state_transfer)
        self._ring: list[int] = []
        self._nodes: dict[int, RingNode] = {}
        # Membership is tracked separately from materialized node
        # objects: a sharded worker knows the whole ring (`_members`)
        # but only builds node state for its own arc (`_nodes`).  In a
        # serial overlay the two sets are updated in lockstep and
        # always equal.
        self._members: set[int] = set()
        self._ever_removed = False
        self.ring_version = 0
        # Maintenance counts of nodes that already departed: without
        # this, harness totals summed over live nodes silently truncate
        # (a departing node takes its counters with it).
        self._departed_maintenance = {
            "table_rebuilds": 0,
            "table_patches": 0,
            "table_seeds": 0,
        }
        # Join entries log the joiner's predecessor *after* the join;
        # depart entries log the departed node's successor *after* the
        # removal (see MembershipDeltaLog).
        self._init_delta_log()

    # -- subclass contribution ------------------------------------------------

    def _make_node(self, node_id: int) -> RingNode:
        """Create the routing-state object for a new node."""
        raise NotImplementedError

    def _seed_joiner(self, node_id: int) -> None:
        """Give a just-joined node its initial routing state.

        Called by :meth:`join` once the ring and the delta log reflect
        the join.  The default leaves the node cold (first use pays a
        full rebuild); overlays with a cheap exact seeding rule —
        deriving the joiner's state from its successor's, one delta
        apart — override this.  ``build_ring`` never seeds: bulk setup
        stays lazy so unused nodes cost nothing.
        """

    # -- accessors --------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        """The simulation kernel."""
        return self._sim

    @property
    def network(self) -> Network:
        """The underlying message transport."""
        return self._network

    @property
    def recorder(self) -> MetricsRecorder:
        """Metrics recorder shared with the network."""
        return self._network.recorder

    @property
    def telemetry(self) -> Telemetry:
        """Observability sink shared with the network."""
        return self._network.telemetry

    def node(self, node_id: int) -> RingNode:
        """The live node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def node_ids(self) -> list[int]:
        """Ids of all live nodes in ring order."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def is_alive(self, node_id: int) -> bool:
        """True if the node is currently part of the ring."""
        return node_id in self._members

    @property
    def membership_stable(self) -> bool:
        """True while no node has ever left the ring.

        Joins keep this True: a join can invalidate routing tables but
        can never make a cached peer dead, which is the property the
        batch receive fast path (:meth:`ChordNode.receive_batch`) needs.
        """
        return not self._ever_removed

    def app_node_ids(self) -> list[int]:
        """Ring-ordered ids with materialized node state (see base)."""
        nodes = self._nodes
        return [node_id for node_id in self._ring if node_id in nodes]

    # -- membership -------------------------------------------------------

    def build_ring(
        self, node_ids: Iterable[int], local: "set[int] | None" = None
    ) -> None:
        """Bulk-create a stable ring (all joins already converged).

        Matches the paper's measurement setup: the overlay is up before
        the pub/sub workload starts, so join traffic is not part of the
        reported message counts.

        Args:
            node_ids: Ids of every ring member.
            local: When given (sharded workers), only these ids get
                node objects and network registrations; the rest are
                ring members whose state lives in another shard.  The
                KN-mapping, neighbor pointers and routing ground truth
                are computed over the *full* ring either way.
        """
        ids = sorted(set(node_ids))
        if not ids:
            raise OverlayError("cannot build an empty ring")
        for node_id in ids:
            self._keyspace.validate(node_id)
        if self._ring:
            raise OverlayError("ring already built; use join() to add nodes")
        self._ring = ids
        self._members.update(ids)
        for node_id in ids:
            if local is None or node_id in local:
                self._add_node(node_id)
        self.ring_version += 1
        self._reset_delta_log(self.ring_version)

    def join(self, node_id: int) -> None:
        """Add one node; the successor hands over the inherited keys."""
        self._keyspace.validate(node_id)
        if node_id in self._nodes:
            raise OverlayError(f"node {node_id} already in the ring")
        bisect.insort(self._ring, node_id)
        self._members.add(node_id)
        self._add_node(node_id)
        self.ring_version += 1
        self._log_delta("join", node_id, self.predecessor_of(node_id))
        self._seed_joiner(node_id)
        if len(self._ring) > 1 and self._state_transfer is not None:
            successor = self.successor_of(node_id)
            predecessor = self.predecessor_of(node_id)
            self._state_transfer(successor, node_id, (predecessor, node_id))

    def leave(self, node_id: int) -> None:
        """Graceful departure: state is handed to the successor first."""
        if node_id not in self._nodes:
            raise OverlayError(f"no live node with id {node_id}")
        if len(self._ring) == 1:
            raise OverlayError("cannot remove the last node of the ring")
        predecessor = self.predecessor_of(node_id)
        successor = self.successor_of(node_id)
        if self._state_transfer is not None:
            self._state_transfer(node_id, successor, (predecessor, node_id))
        self._remove_node(node_id)

    def crash(self, node_id: int) -> None:
        """Abrupt failure: no handover; the app recovers from replicas."""
        if node_id not in self._nodes:
            raise OverlayError(f"no live node with id {node_id}")
        if len(self._ring) == 1:
            raise OverlayError("cannot crash the last node of the ring")
        self._remove_node(node_id)

    def _add_node(self, node_id: int) -> None:
        node = self._make_node(node_id)
        self._nodes[node_id] = node
        self._network.register(node_id, node.receive, node.receive_batch)

    def maintenance_totals(self) -> dict[str, int]:
        """Exact run-wide maintenance counts: live nodes + departed ones.

        The per-node ``table_*`` properties only cover nodes still
        alive; departures accumulate into ``_departed_maintenance``
        first, so harness totals are exact regardless of churn.
        """
        totals = dict(self._departed_maintenance)
        for node in self._nodes.values():
            for key in totals:
                totals[key] += getattr(node, key, 0)
        return totals

    def _remove_node(self, node_id: int) -> None:
        index = bisect.bisect_left(self._ring, node_id)
        del self._ring[index]
        self._members.discard(node_id)
        self._ever_removed = True
        node = self._nodes.pop(node_id)
        totals = self._departed_maintenance
        for key in totals:
            totals[key] += getattr(node, key, 0)
        self._network.unregister(node_id)
        self.ring_version += 1
        # Callers (leave/crash) guarantee the ring keeps >= 1 node, so
        # the departed id's keys have a live heir: its old successor.
        heir = self._ring[index % len(self._ring)]
        self._log_delta("depart", node_id, heir)

    def flat_routing_state(self) -> dict[str, list[int]]:
        """Hoist per-node routing tables into flat parallel arrays.

        Structure-of-arrays view over the materialized nodes, in ring
        order: ``node_ids[i]`` / ``versions[i]`` describe node *i*, and
        its table entries are ``entries[offsets[i]:offsets[i+1]]`` (the
        flattened, order-preserving concatenation of its
        ``audit_state()`` arrays, ``None`` encoded as -1).  Non-mutating
        like ``audit_state`` itself.  The shard engine ships these
        arrays — not node objects — across the process boundary, and
        the bench reads table occupancy off them without touching node
        state.
        """
        return _flatten_audit_states(
            (node_id, self._nodes[node_id].audit_state())
            for node_id in self._ring
            if node_id in self._nodes
        )

    # -- KN-mapping and pointers -------------------------------------------

    def owner_of(self, key: int) -> int:
        """The successor node of ``key``: first live id >= key (wrapping)."""
        if not self._ring:
            raise OverlayError("empty ring")
        self._keyspace.validate(key)
        index = bisect.bisect_left(self._ring, key)
        if index == len(self._ring):
            index = 0
        return self._ring[index]

    def owners_of(self, keys: Iterable[int]) -> list[int]:
        """``owner_of`` for many already-validated keys.

        The routing-table rebuild path maps every finger start through
        the KN-mapping at once; this skips the per-key validation (the
        starts are precomputed on-ring values) and rebinds the ring and
        bisect locally.
        """
        ring = self._ring
        if not ring:
            raise OverlayError("empty ring")
        count = len(ring)
        first = ring[0]
        search = bisect.bisect_left
        owners = []
        append = owners.append
        for key in keys:
            index = search(ring, key)
            append(ring[index] if index < count else first)
        return owners

    def successor_of(self, node_id: int) -> int:
        """The live node following ``node_id`` on the ring."""
        index = self._ring_index(node_id)
        return self._ring[(index + 1) % len(self._ring)]

    def predecessor_of(self, node_id: int) -> int:
        """The live node preceding ``node_id`` on the ring."""
        index = self._ring_index(node_id)
        return self._ring[(index - 1) % len(self._ring)]

    def neighbor_of(self, node_id: int, side: NeighborSide) -> int:
        """Ring neighbor on the requested side."""
        if side is NeighborSide.SUCCESSOR:
            return self.successor_of(node_id)
        return self.predecessor_of(node_id)

    def _ring_index(self, node_id: int) -> int:
        index = bisect.bisect_left(self._ring, node_id)
        if index >= len(self._ring) or self._ring[index] != node_id:
            raise OverlayError(f"no live node with id {node_id}")
        return index

    # -- communication -------------------------------------------------------

    def send(self, source_id: int, key: int, message: OverlayMessage) -> None:
        """Route ``message`` from ``source_id`` to the node covering ``key``."""
        self._keyspace.validate(key)
        node = self.node(source_id)
        unicast = self._prepared(message, key=key, mode=CastMode.UNICAST)
        node.route_unicast(unicast)

    def mcast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        """Native one-to-many send (Section 4.3.1)."""
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        mcast_msg = self._prepared(message, target_keys=targets, mode=CastMode.MCAST)
        node.start_mcast(mcast_msg)

    def sequential_cast(
        self, source_id: int, keys: Iterable[int], message: OverlayMessage
    ) -> None:
        """Conservative unicast-based range walk (Section 4.3.1 baseline)."""
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        seq_msg = self._prepared(
            message, target_keys=targets, mode=CastMode.SEQUENTIAL
        )
        node.continue_sequential(seq_msg)

    def send_to_neighbor(
        self, source_id: int, side: NeighborSide, message: OverlayMessage
    ) -> None:
        """One-hop direct send to a ring neighbor (Sections 4.1, 4.3.2)."""
        neighbor = self.neighbor_of(source_id, side)
        if neighbor == source_id:
            self.do_deliver(self.node(source_id), message)
            return
        self.transmit(source_id, neighbor, message.forwarded_copy(source_id))

    # -- internals shared with node implementations ---------------------------

    def _prepared(
        self,
        message: OverlayMessage,
        key: int | None = None,
        target_keys: frozenset[int] | None = None,
        mode: CastMode = CastMode.UNICAST,
    ) -> OverlayMessage:
        # Direct construction instead of dataclasses.replace: this runs
        # once per request, and replace() pays dict-merge overhead.
        return OverlayMessage(
            kind=message.kind,
            payload=message.payload,
            request_id=message.request_id,
            origin=message.origin,
            key=key,
            target_keys=target_keys,
            mode=mode,
            hops=0,
            path=(),
            trace=message.trace,
        )

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        """One-hop transmission between nodes (charged to the request)."""
        self._network.transmit(src, dst, message)

    def do_deliver(self, node: RingNode, message: OverlayMessage) -> None:
        """Record and raise the application delivery upcall at ``node``."""
        self.recorder.messages.record_delivery(
            message.request_id, node.id, self._sim.now, message.hops
        )
        tracer = self._network.active_tracer
        if tracer is not None:
            tracer.delivery(
                message.trace, message.request_id, node.id, self._sim.now
            )
        load = self._network.active_load
        if load is not None:
            load.on_deliver(node.id)
        self._deliver_upcall(node.id, message)
