"""Simulated point-to-point network with latency and hop accounting.

Every inter-node transmission in the overlay goes through
:meth:`Network.transmit`, which (a) charges one one-hop message of the
message's kind to its request id, and (b) enqueues the message for the
receiver after a delay drawn from the configured delay model.  The
paper's evaluation fixes the per-hop delay at 50 ms (Section 5.1).

Transmissions addressed to a node that has crashed are silently dropped
(the send is still counted — the bytes left the sender).

Delivery is *batched per destination and arrival time*: the paper's
m-cast primitive (Fig. 4) fans one publication out into waves of
one-hop messages that all land ``delay`` later, so under a fixed delay
model many messages share one ``(dst, arrival-time)`` pair.  Instead of
one kernel event per message, the network keeps an inbox bucket per
``(dst, arrival-time)`` and schedules a single non-cancellable drain
callback per bucket; the drain hands the messages to the receiver in
send order, re-checking liveness per message so a handler that
unregisters its own node mid-tick drops the remainder exactly as the
one-event-per-message engine did.  Per-message accounting (send
counters, drop/loss counters, delivery times) is unchanged bit for bit.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import OverlayMessage
from repro.sim.kernel import Simulator
from repro.telemetry import Telemetry, current as current_telemetry
from repro.telemetry.tracing import LOST, Tracer


class DelayModel(Protocol):
    """Samples the one-hop latency between two nodes."""

    def sample(self, src: int, dst: int) -> float: ...


class FixedDelay:
    """Constant one-hop delay (the paper uses 50 ms)."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise OverlayError(f"delay must be non-negative, got {delay}")
        self._delay = delay

    def sample(self, src: int, dst: int) -> float:
        return self._delay


class UniformDelay:
    """One-hop delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: random.Random) -> None:
        if not 0 <= low <= high:
            raise OverlayError(f"invalid delay bounds [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = rng

    def sample(self, src: int, dst: int) -> float:
        return self._rng.uniform(self._low, self._high)


ReceiveFn = Callable[[OverlayMessage], None]
BatchReceiveFn = Callable[[list[OverlayMessage]], None]


class Network:
    """Message transport between overlay nodes.

    Nodes register a receive callback under their overlay id; senders
    address transmissions by id.  The network is oblivious to routing —
    it only ever moves a message one hop.
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: DelayModel | None = None,
        recorder: MetricsRecorder | None = None,
        loss_rate: float = 0.0,
        loss_rng: random.Random | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        """
        Args:
            sim: The simulation kernel.
            delay_model: Per-hop latency (default: the paper's 50 ms).
            recorder: Metrics sink; a fresh one is created if omitted.
            loss_rate: Probability that a transmission is silently lost
                in flight (fault injection; the paper's model is
                loss-free, so the default is 0).
            loss_rng: Randomness for loss draws (required if
                ``loss_rate`` > 0, to keep runs reproducible).
            telemetry: Observability sink shared by everything built on
                this network; defaults to the (disabled, free) ambient
                telemetry — see :func:`repro.telemetry.current`.
        """
        if not 0 <= loss_rate <= 1:
            raise OverlayError(f"loss_rate {loss_rate} outside [0, 1]")
        if loss_rate > 0 and loss_rng is None:
            raise OverlayError("loss_rate > 0 requires a loss_rng")
        self._sim = sim
        self._delay = delay_model or FixedDelay()
        self._recorder = recorder or MetricsRecorder()
        self._loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: dict[int, ReceiveFn] = {}
        self._batch_handlers: dict[int, BatchReceiveFn] = {}
        self._telemetry = telemetry if telemetry is not None else current_telemetry()
        registry = self._telemetry.registry
        self._dropped_counter = registry.counter("network.dropped")
        self._lost_counter = registry.counter("network.lost")
        # Tracing guard: None when disabled, so the per-transmission
        # cost of the whole telemetry layer is one identity check.
        self._tracer: Tracer | None = (
            self._telemetry.tracer if self._telemetry.enabled else None
        )
        # Load-attribution guard, same null-sink discipline: the meter
        # is only non-None on an enabled telemetry bundle.
        self._load = (
            self._telemetry.load if self._telemetry.enabled else None
        )
        # In-flight messages, bucketed by (dst, arrival time).  One
        # drain event per bucket; each bucket list is in send order.
        self._inboxes: dict[tuple[int, float], list[OverlayMessage]] = {}
        # Hot-path bindings: transmit() runs once per one-hop message,
        # so resolve the per-call attribute chains once.  A constant
        # delay model (the paper's setup) skips sample() entirely.
        # The exact-type check matters: a FixedDelay *subclass* may
        # override sample(), so only the base class takes the fast path.
        self._record_send = self._recorder.messages.record_send
        self._call_at = sim.call_at
        self._fixed_delay: float | None = (
            self._delay._delay if type(self._delay) is FixedDelay else None
        )

    @property
    def sim(self) -> Simulator:
        """The simulation kernel this network schedules on."""
        return self._sim

    @property
    def recorder(self) -> MetricsRecorder:
        """The metrics recorder charged for every transmission."""
        return self._recorder

    @property
    def telemetry(self) -> Telemetry:
        """The observability sink of this network (and its overlays)."""
        return self._telemetry

    @property
    def active_tracer(self) -> Tracer | None:
        """The span tracer when tracing is enabled, else None.

        Overlays cache this so their delivery paths pay the same single
        ``is None`` guard as the transmit path.
        """
        return self._tracer

    @property
    def active_load(self):
        """The load meter when load metering is enabled, else None.

        Same caching contract as :attr:`active_tracer`: overlays read
        it once and guard each delivery with one identity check.
        """
        return self._load

    @property
    def dropped(self) -> int:
        """Messages dropped because the destination was not alive.

        Thin view over the ``network.dropped`` registry counter.
        """
        return self._dropped_counter.value

    @property
    def lost(self) -> int:
        """Messages lost in flight by the loss model.

        Thin view over the ``network.lost`` registry counter.
        """
        return self._lost_counter.value

    @property
    def in_flight(self) -> int:
        """Messages transmitted but not yet handed to a receiver."""
        return sum(len(bucket) for bucket in self._inboxes.values())

    def register(
        self,
        node_id: int,
        receive: ReceiveFn,
        receive_batch: BatchReceiveFn | None = None,
    ) -> None:
        """Attach a node's receive callback under its id.

        ``receive_batch``, when given, is the bucket entry point: the
        drain hands it each whole ``(dst, tick)`` inbox bucket in one
        call instead of invoking ``receive`` per message.  The batch
        handler owns the per-message semantics — dispatch in send
        order, and if the node unregisters itself mid-batch, hand the
        remainder to :meth:`drop_undeliverable` (see the node
        implementations).
        """
        if node_id in self._handlers:
            raise OverlayError(f"node {node_id} already registered")
        self._handlers[node_id] = receive
        if receive_batch is not None:
            self._batch_handlers[node_id] = receive_batch

    def unregister(self, node_id: int) -> None:
        """Detach a node; subsequent transmissions to it are dropped."""
        self._handlers.pop(node_id, None)
        self._batch_handlers.pop(node_id, None)

    def drop_undeliverable(self, messages: list[OverlayMessage]) -> None:
        """Account for messages whose destination died mid-batch.

        Batch handlers call this for the unprocessed tail of a bucket,
        keeping drop counters and trace marks identical to the
        per-message drain loop.
        """
        tracer = self._tracer
        for message in messages:
            self._dropped_counter.inc()
            if tracer is not None:
                tracer.mark_dropped(message.trace)

    def is_alive(self, node_id: int) -> bool:
        """True if a receive callback is registered for ``node_id``.

        Routing layers use this as a stand-in for the timeout-and-retry
        a deployed system would perform on a dead next hop.
        """
        return node_id in self._handlers

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        """Send ``message`` one hop from ``src`` to ``dst``.

        The hop is charged to the message's request id even if the
        destination has crashed (the sender cannot know).  The message
        joins the ``(dst, arrival-time)`` inbox bucket; the first
        message of a bucket schedules its (single) drain event.
        """
        now = self._sim.now
        self._record_send(message.kind, message.request_id, now)
        tracer = self._tracer
        load = self._load
        if load is not None:
            load.on_transmit(src)
        if self._loss_rate > 0 and self._loss_rng.random() < self._loss_rate:
            self._lost_counter.inc()
            if tracer is not None:
                message.trace = tracer.hop(
                    message.trace, message.request_id, message.kind.value,
                    src, dst, now, None, status=LOST,
                )
            return
        delay = self._fixed_delay
        if delay is None:
            delay = self._delay.sample(src, dst)
        arrival = now + delay
        if tracer is not None:
            # The new span's parent is whatever hop (or request root)
            # produced this copy; stamping the id back onto the envelope
            # keeps parentage exact through in-place forwarding.
            message.trace = tracer.hop(
                message.trace, message.request_id, message.kind.value,
                src, dst, now, arrival,
            )
        key = (dst, arrival)
        bucket = self._inboxes.get(key)
        if bucket is None:
            self._inboxes[key] = [message]
            self._call_at(arrival, self._drain, key)
        else:
            bucket.append(message)

    def _drain(self, key: tuple[int, float]) -> None:
        """Deliver one inbox bucket in send order.

        The bucket is detached first, so a receiver that transmits back
        to the same destination at zero delay starts a fresh bucket
        (matching the strict happens-after of per-message events), and
        the handler is re-fetched per message so an unregistration by
        an earlier message in the batch drops the rest.

        A destination that registered a batch handler gets the whole
        bucket in one upcall instead; the handler preserves the same
        per-message semantics (see :meth:`register`).
        """
        messages = self._inboxes.pop(key)
        dst = key[0]
        load = self._load
        if load is not None:
            load.on_bucket_drain(dst, len(messages))
        batch = self._batch_handlers.get(dst)
        if batch is not None:
            batch(messages)
            return
        handlers = self._handlers
        tracer = self._tracer
        for message in messages:
            handler = handlers.get(dst)
            if handler is None:
                self._dropped_counter.inc()
                if tracer is not None:
                    tracer.mark_dropped(message.trace)
            else:
                handler(message)


class ShardNetwork(Network):
    """The network substrate of one shard worker (see :mod:`repro.sim.shard`).

    A shard owns a contiguous arc of the identifier ring.  Transmissions
    whose destination lies inside the arc behave exactly like the serial
    :class:`Network`; transmissions leaving the arc are *charged
    normally* (the send counter and the request trace see the hop at
    transmit time, just as in the serial run) but instead of entering
    the local inbox they are appended — already stamped with their
    arrival time — to an outbox the barrier coordinator drains once per
    conservative window.  The receiving shard injects them into its own
    ``(dst, arrival)`` buckets, so the batched bucket drain of PR 2 is
    reused verbatim as the shard-boundary unit: a bucket bound for a
    remote shard crosses the process boundary once per tick, not once
    per message.

    Loss models and tracing are deliberately unsupported here: shard
    workers run loss-free with telemetry disabled (the coordinator owns
    the observable surface), which keeps the cross-shard hop identical
    to a local one in everything the metrics recorder can see.
    """

    def __init__(
        self,
        sim: Simulator,
        delay_model: DelayModel | None = None,
        recorder: MetricsRecorder | None = None,
        local: "set[int] | frozenset[int]" = frozenset(),
    ) -> None:
        super().__init__(sim, delay_model, recorder)
        self._local = frozenset(local)
        self._outbox: list[tuple[int, float, OverlayMessage]] = []
        # Per-node send meter for the execution profiler's rebalance
        # advisor (see repro.telemetry.profile).  Same null-sink
        # discipline as the tracer/LoadMeter guards above: None unless
        # the run is profiled, one identity check per transmit.
        self._profile_sends: dict[int, int] | None = None

    @property
    def local_ids(self) -> frozenset[int]:
        """The node ids whose inboxes live in this shard."""
        return self._local

    def meter_sends(self) -> dict[int, int]:
        """Enable per-node send metering; returns the live counter map.

        Counts every one-hop transmit by source node — local and
        cross-shard alike, so the aggregate over a shard's nodes equals
        the recorder's ``total_sends()`` for that shard.
        """
        if self._profile_sends is None:
            self._profile_sends = {}
        return self._profile_sends

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        sends = self._profile_sends
        if sends is not None:
            sends[src] = sends.get(src, 0) + 1
        if dst in self._local:
            super().transmit(src, dst, message)
            return
        now = self._sim.now
        self._record_send(message.kind, message.request_id, now)
        delay = self._fixed_delay
        if delay is None:
            delay = self._delay.sample(src, dst)
        self._outbox.append((dst, now + delay, message))

    def drain_outbox(self) -> list[tuple[int, float, OverlayMessage]]:
        """Detach and return the cross-shard sends of the last window."""
        outbox = self._outbox
        self._outbox = []
        return outbox

    def inject(self, items: list[tuple[int, float, OverlayMessage]]) -> None:
        """Enqueue remote messages into the local ``(dst, arrival)`` buckets.

        Called by the coordinator between windows, in the deterministic
        merge order (source shard id, then send sequence).  Every
        arrival lies at or beyond the *next* window's start, which is
        strictly ahead of this worker's clock — so ``call_at`` is always
        valid, and messages joining an existing bucket land after that
        bucket's locally-sent messages, in merge order.
        """
        inboxes = self._inboxes
        call_at = self._call_at
        for dst, arrival, message in items:
            key = (dst, arrival)
            bucket = inboxes.get(key)
            if bucket is None:
                inboxes[key] = [message]
                call_at(arrival, self._drain, key)
            else:
                bucket.append(message)
