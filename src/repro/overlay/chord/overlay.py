"""The Chord overlay: finger tables over the shared ring machinery.

Membership, the KN-mapping (``owner_of``), neighbor lookup and the
message entry points live in :class:`~repro.overlay.ring.RingOverlay`;
this class contributes Chord's routing state — the finger table of
Section 3.1.1 — and the :class:`~repro.overlay.chord.node.ChordNode`
that implements greedy routing, the location cache and the ``m-cast``
algorithm of Fig. 4.
"""

from __future__ import annotations

from repro.overlay.api import StateTransferHook
from repro.overlay.chord.node import ChordNode
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.overlay.ring import RingOverlay
from repro.sim.kernel import Simulator


class ChordOverlay(RingOverlay):
    """A simulated Chord ring.

    Args:
        sim: The simulation kernel.
        keyspace: The ``m``-bit identifier space (the paper uses m=13).
        network: Message transport; a default :class:`Network` with the
            paper's 50 ms fixed hop delay is created if omitted.
        cache_capacity: Per-node location-cache size (0 disables the
            cache, yielding textbook ~½·log₂(n) routing; the default
            reproduces the paper's "finger caching" at ~2.5 hops for
            n = 500).
        state_transfer: Optional application hook invoked on join/leave
            so per-key state follows the KN-mapping (Section 4.1).
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        cache_capacity: int = 128,
        state_transfer: StateTransferHook | None = None,
    ) -> None:
        super().__init__(sim, keyspace, network, state_transfer)
        self._cache_capacity = cache_capacity

    def _make_node(self, node_id: int) -> ChordNode:
        return ChordNode(node_id, self, cache_capacity=self._cache_capacity)

    def _seed_joiner(self, node_id: int) -> None:
        node = self._nodes[node_id]
        assert isinstance(node, ChordNode)
        node.seed_tables()

    def node(self, node_id: int) -> ChordNode:
        """The live Chord node with the given id."""
        node = super().node(node_id)
        assert isinstance(node, ChordNode)
        return node

    def compute_finger_slots(self, node_id: int) -> list[int]:
        """Raw finger-table slots of ``node_id``: the owner of each start.

        Slot ``i`` (0-based) is ``owner_of(finger_start(node_id, i+1))``,
        *including* self-pointing entries.  This is the representation
        :class:`~repro.overlay.chord.node.ChordNode` maintains under the
        membership delta log — a join captures the slots whose start
        falls inside ``(pred, joiner]``, a departure redirects the
        departed node's slots to its heir — so patched slots always
        equal a fresh call of this method.
        """
        finger_start = self._keyspace.finger_start
        return self.owners_of(
            finger_start(node_id, index)
            for index in range(1, self._keyspace.bits + 1)
        )

    def compute_fingers(self, node_id: int) -> list[int]:
        """Distinct live fingers of ``node_id`` in clockwise ring order.

        Entry ``i`` (1-based) of the Chord finger table is the successor
        of ``node_id + 2**(i-1)``; duplicates collapse, self-pointers
        drop out, and the list is ordered by clockwise distance so the
        first entry is always the node's successor.
        """
        distinct = set(self.compute_finger_slots(node_id))
        distinct.discard(node_id)
        return sorted(distinct, key=lambda f: self._keyspace.distance(node_id, f))
