"""Protocol-level Chord: message-based join, stabilization and lookups.

The main :class:`~repro.overlay.chord.ChordOverlay` models a *converged*
ring (pointers are derived from the global membership), which matches
the paper's measurement setup.  This module implements the actual Chord
maintenance protocol of Stoica et al. on top of the same simulated
network, so that the cost and the convergence of self-organization —
the property the paper's architecture inherits from the overlay — can
be measured rather than assumed:

- ``join``: the new node asks a bootstrap node to route a
  FIND_SUCCESSOR request for its own id, then adopts the answer as its
  successor (O(log n) one-hop messages);
- ``stabilize``: each node periodically asks its successor for the
  successor's predecessor, adopts a closer node if one appeared, and
  notifies the successor of itself;
- ``fix_fingers``: each node refreshes one finger entry per period via
  a routed lookup;
- failures: each node keeps a successor list; when the successor stops
  responding the next list entry takes over.

All maintenance traffic is charged to :data:`MessageKind.CONTROL`, so
experiments can report the price of self-configuration separately from
pub/sub traffic.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable

from repro.errors import OverlayError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import (
    CastMode,
    MessageKind,
    NeighborSide,
    OverlayMessage,
    OverlayNetwork,
    StateTransferHook,
    next_request_id,
)
from repro.overlay.ids import KeySpace
from repro.overlay.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTimer

_lookup_ids = itertools.count(1)


# -- protocol payloads -------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FindSuccessor:
    """Routed request: who covers ``key``? Reply to ``reply_to``."""

    key: int
    reply_to: int
    lookup_id: int


@dataclasses.dataclass(frozen=True)
class FoundSuccessor:
    """Answer to :class:`FindSuccessor`: ``successor`` covers the key."""

    key: int
    successor: int
    lookup_id: int


@dataclasses.dataclass(frozen=True)
class GetPredecessor:
    """Stabilization probe: tell me your predecessor and successor list."""

    reply_to: int


@dataclasses.dataclass(frozen=True)
class PredecessorIs:
    """Answer to :class:`GetPredecessor`."""

    node: int
    predecessor: int | None
    successor_list: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class Notify:
    """'I believe I am your predecessor' (Chord's notify)."""

    node: int


@dataclasses.dataclass(frozen=True)
class LeaveNotice:
    """Graceful departure: hand neighbors their new pointers."""

    node: int
    new_successor: int
    new_predecessor: int | None


#: Payload types handled by the maintenance protocol itself; anything
#: else is an application message routed with the stored pointers.
PROTOCOL_PAYLOADS = (
    FindSuccessor,
    FoundSuccessor,
    GetPredecessor,
    PredecessorIs,
    Notify,
    LeaveNotice,
)


class ProtocolChordNode:
    """A Chord node with *stored* (possibly stale) routing state."""

    def __init__(self, node_id: int, overlay: "ProtocolChordOverlay") -> None:
        self.id = node_id
        self._overlay = overlay
        keyspace = overlay.keyspace
        self.successor: int = node_id
        self.predecessor: int | None = None
        self.successor_list: list[int] = []
        self.fingers: list[int | None] = [None] * keyspace.bits
        self._next_finger = 0
        self._pending_lookups: dict[int, Callable[[int], None]] = {}

    # -- pointer helpers ------------------------------------------------------

    def live_successor(self) -> int:
        """The first responsive entry of successor ∪ successor list."""
        for candidate in [self.successor, *self.successor_list]:
            if candidate == self.id or self._overlay.is_alive(candidate):
                return candidate
        return self.id

    def closest_preceding(self, key: int) -> int:
        """Best known node strictly preceding ``key`` (fingers + succ)."""
        keyspace = self._overlay.keyspace
        target = keyspace.distance(self.id, key)
        best = self.id
        best_distance = 0
        for candidate in [*self.fingers, self.successor, *self.successor_list]:
            if candidate is None or candidate == self.id:
                continue
            if not self._overlay.is_alive(candidate):
                continue
            distance = keyspace.distance(self.id, candidate)
            if 0 < distance < target and distance > best_distance:
                best = candidate
                best_distance = distance
        return best

    # -- application-side coverage (stored pointers) ---------------------

    def believes_covers(self, key: int) -> bool:
        """Coverage according to *stored* state: ``key in (pred, self]``.

        During convergence this can disagree with the ideal ring — the
        price of self-organization the pub/sub layer rides on top of.
        A node with no predecessor yet only claims its own id (unless
        it believes it is alone).
        """
        if key == self.id:
            return True
        if self.predecessor is None:
            return self.successor == self.id
        return self._overlay.keyspace.in_open_closed(
            key, self.predecessor, self.id
        )

    # -- message handling ---------------------------------------------------

    def receive(self, message: OverlayMessage) -> None:
        payload = message.payload
        if not isinstance(payload, PROTOCOL_PAYLOADS):
            self._receive_application(message)
            return
        if isinstance(payload, FindSuccessor):
            self._handle_find_successor(payload, message)
        elif isinstance(payload, FoundSuccessor):
            self._handle_found_successor(payload)
        elif isinstance(payload, GetPredecessor):
            self._overlay.send_control(
                self.id,
                payload.reply_to,
                PredecessorIs(
                    node=self.id,
                    predecessor=self.predecessor,
                    successor_list=tuple(
                        [self.successor, *self.successor_list][
                            : self._overlay.successor_list_size
                        ]
                    ),
                ),
            )
        elif isinstance(payload, PredecessorIs):
            self._handle_predecessor_is(payload)
        elif isinstance(payload, Notify):
            self._handle_notify(payload)
        elif isinstance(payload, LeaveNotice):
            self._handle_leave_notice(payload)
        else:
            raise OverlayError(
                f"unexpected protocol payload {type(payload).__name__}"
            )

    def _receive_application(self, message: OverlayMessage) -> None:
        if message.mode is CastMode.MCAST:
            self.continue_app_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_app_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_app_unicast(message)

    def route_app_unicast(self, message: OverlayMessage) -> None:
        """Greedy routing of an application message over stored pointers."""
        key = message.key
        assert key is not None
        if self.believes_covers(key):
            self._overlay.do_deliver(self, message)
            return
        keyspace = self._overlay.keyspace
        successor = self.live_successor()
        if successor != self.id and keyspace.in_open_closed(
            key, self.id, successor
        ):
            next_hop = successor
        else:
            next_hop = self.closest_preceding(key)
            if next_hop == self.id:
                next_hop = successor
        if next_hop == self.id:
            # Believed alone: nothing better than delivering here.
            self._overlay.do_deliver(self, message)
            return
        self._overlay.forward(self.id, next_hop, message.forwarded_copy(self.id))

    def continue_app_mcast(self, message: OverlayMessage) -> None:
        """m-cast over stored fingers (strict-precedence partition)."""
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.believes_covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = targets - mine
        if not rest:
            return
        successor = self.live_successor()
        pointers = sorted(
            {
                candidate
                for candidate in [*self.fingers, successor, *self.successor_list]
                if candidate is not None
                and candidate != self.id
                and self._overlay.is_alive(candidate)
            },
            key=lambda c: keyspace.distance(self.id, c),
        )
        if not pointers:
            return
        groups: dict[int, set[int]] = {}
        for key in rest:
            target_distance = keyspace.distance(self.id, key)
            best = pointers[0]
            best_distance = 0
            for pointer in pointers:
                distance = keyspace.distance(self.id, pointer)
                if 0 < distance < target_distance and distance > best_distance:
                    best = pointer
                    best_distance = distance
            groups.setdefault(best, set()).add(key)
        for pointer, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.forward(self.id, pointer, branch)

    def continue_app_sequential(self, message: OverlayMessage) -> None:
        """Conservative walk over stored pointers (chase current key)."""
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.believes_covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        chase = message.key
        if chase is None or chase not in rest or self.believes_covers(chase):
            chase = min(rest, key=lambda k: keyspace.distance(self.id, k))
        successor = self.live_successor()
        if successor != self.id and keyspace.in_open_closed(
            chase, self.id, successor
        ):
            next_hop = successor
        else:
            next_hop = self.closest_preceding(chase)
            if next_hop == self.id:
                next_hop = successor
        if next_hop == self.id:
            return
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=chase
        )
        self._overlay.forward(self.id, next_hop, onward)

    def _handle_find_successor(
        self, payload: FindSuccessor, message: OverlayMessage
    ) -> None:
        keyspace = self._overlay.keyspace
        successor = self.live_successor()
        if keyspace.in_open_closed(payload.key, self.id, successor):
            self._overlay.send_control(
                self.id,
                payload.reply_to,
                FoundSuccessor(
                    key=payload.key,
                    successor=successor,
                    lookup_id=payload.lookup_id,
                ),
            )
            return
        next_hop = self.closest_preceding(payload.key)
        if next_hop == self.id:
            next_hop = successor
        if next_hop == self.id:
            # Single-node view: we are our own successor.
            self._overlay.send_control(
                self.id,
                payload.reply_to,
                FoundSuccessor(
                    key=payload.key, successor=self.id, lookup_id=payload.lookup_id
                ),
            )
            return
        self._overlay.forward(
            self.id, next_hop, message.forwarded_copy(self.id)
        )

    def _handle_found_successor(self, payload: FoundSuccessor) -> None:
        callback = self._pending_lookups.pop(payload.lookup_id, None)
        if callback is not None:
            callback(payload.successor)

    def _handle_predecessor_is(self, payload: PredecessorIs) -> None:
        keyspace = self._overlay.keyspace
        candidate = payload.predecessor
        if (
            candidate is not None
            and candidate != self.id
            and self._overlay.is_alive(candidate)
            and keyspace.in_open_open(candidate, self.id, self.successor)
        ):
            self.successor = candidate
        # Refresh the successor list from the successor's view.
        merged = [payload.node, *payload.successor_list]
        self.successor_list = [
            node
            for node in merged
            if node != self.id
        ][: self._overlay.successor_list_size]
        self._overlay.send_control(
            self.id, self.live_successor(), Notify(node=self.id)
        )

    def _adopt_predecessor(self, candidate: int) -> None:
        """Install a closer predecessor, shedding the ceded interval.

        When the predecessor pointer moves from ``old`` to a closer
        ``candidate``, this node's believed coverage shrinks by
        ``(old, candidate]`` — exactly the keys the application must
        hand to the new predecessor (Section 4.1 state transfer).
        """
        old = self.predecessor
        self.predecessor = candidate
        if old is not None and old != candidate:
            self._overlay.fire_state_transfer(self.id, candidate, (old, candidate))

    def _handle_notify(self, payload: Notify) -> None:
        keyspace = self._overlay.keyspace
        if self.predecessor is None or not self._overlay.is_alive(self.predecessor):
            self._adopt_predecessor(payload.node)
            return
        if keyspace.in_open_open(payload.node, self.predecessor, self.id):
            self._adopt_predecessor(payload.node)

    def _handle_leave_notice(self, payload: LeaveNotice) -> None:
        if self.successor == payload.node:
            self.successor = payload.new_successor
        if self.predecessor == payload.node:
            self.predecessor = payload.new_predecessor
        self.successor_list = [
            node for node in self.successor_list if node != payload.node
        ]
        for index, finger in enumerate(self.fingers):
            if finger == payload.node:
                self.fingers[index] = None  # repaired by fix_fingers

    # -- periodic maintenance ---------------------------------------------------

    def stabilize(self) -> None:
        """One stabilization round: probe the successor."""
        successor = self.live_successor()
        if successor == self.id:
            # Self-successor (bootstrap / total failover): adopt the
            # predecessor if one announced itself via notify — the
            # degenerate interval (n, n) admits any other node.
            if self.predecessor is not None and (
                self.predecessor == self.id
                or self._overlay.is_alive(self.predecessor)
            ):
                if self.predecessor != self.id:
                    self.successor = self.predecessor
                    successor = self.predecessor
            if successor == self.id:
                return
        if self.successor != successor:
            self.successor = successor  # failover to the successor list
        self._overlay.send_control(
            self.id, successor, GetPredecessor(reply_to=self.id)
        )

    def fix_next_finger(self) -> None:
        """Refresh one finger entry via a routed lookup."""
        keyspace = self._overlay.keyspace
        index = self._next_finger
        self._next_finger = (self._next_finger + 1) % keyspace.bits
        start = keyspace.finger_start(self.id, index + 1)

        def install(successor: int) -> None:
            self.fingers[index] = successor

        self.lookup(start, install)

    def lookup(self, key: int, callback: Callable[[int], None]) -> None:
        """Asynchronously resolve the successor of ``key``."""
        lookup_id = next(_lookup_ids)
        self._pending_lookups[lookup_id] = callback
        payload = FindSuccessor(key=key, reply_to=self.id, lookup_id=lookup_id)
        message = OverlayMessage(
            kind=MessageKind.CONTROL,
            payload=payload,
            request_id=next_request_id(),
            origin=self.id,
        )
        # Process locally first: we may already know the answer.
        self._handle_find_successor(payload, message)


class ProtocolChordOverlay(OverlayNetwork):
    """A ring of :class:`ProtocolChordNode` with periodic maintenance.

    Unlike :class:`~repro.overlay.chord.ChordOverlay`, pointers here are
    per-node *stored state*, updated only by protocol messages — they
    can be stale, and convergence is something to measure.  The class
    keeps a ground-truth membership set so tests can compare the
    protocol's view against the ideal ring.

    It also implements the full :class:`~repro.overlay.api.OverlayNetwork`
    interface, so the pub/sub stack can run over a *converging,
    self-maintained* ring: application routing and the application-side
    notion of coverage use each node's **stored** (possibly stale)
    pointers, and the Section 4.1 state-transfer hook fires when
    stabilization shrinks a node's believed coverage (its predecessor
    pointer moves closer).

    Args:
        sim: Simulation kernel.
        keyspace: Identifier space.
        network: Message transport (defaults to the paper's 50 ms hops).
        stabilize_period: Seconds between stabilization rounds.
        fix_fingers_period: Seconds between single-finger refreshes.
        successor_list_size: Failure-resilience depth.
    """

    def __init__(
        self,
        sim: Simulator,
        keyspace: KeySpace,
        network: Network | None = None,
        stabilize_period: float = 2.0,
        fix_fingers_period: float = 0.5,
        successor_list_size: int = 4,
        state_transfer: StateTransferHook | None = None,
    ) -> None:
        super().__init__(keyspace)
        self._sim = sim
        self._network = network or Network(sim)
        self.set_state_transfer(state_transfer)
        self.stabilize_period = stabilize_period
        self.fix_fingers_period = fix_fingers_period
        self.successor_list_size = successor_list_size
        self._nodes: dict[int, ProtocolChordNode] = {}
        self._timers: dict[int, list[PeriodicTimer]] = {}

    # -- accessors ------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def keyspace(self) -> KeySpace:
        return self._keyspace

    @property
    def recorder(self) -> MetricsRecorder:
        return self._network.recorder

    def node(self, node_id: int) -> ProtocolChordNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise OverlayError(f"no live node with id {node_id}") from None

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._nodes

    def control_messages(self) -> int:
        """Total one-hop maintenance messages sent so far."""
        return self.recorder.messages.total_sends(MessageKind.CONTROL)

    # -- membership --------------------------------------------------------------

    def bootstrap(self, node_id: int) -> None:
        """Create the first node of the ring."""
        self._keyspace.validate(node_id)
        if self._nodes:
            raise OverlayError("ring already bootstrapped; use join()")
        self._create(node_id)

    def join(self, node_id: int, bootstrap: int | None = None) -> None:
        """Protocol join: look up our successor through ``bootstrap``.

        Defaults to bootstrapping through the longest-lived member.
        """
        self._keyspace.validate(node_id)
        if node_id in self._nodes:
            raise OverlayError(f"node {node_id} already joined")
        if bootstrap is None:
            if not self._nodes:
                self.bootstrap(node_id)
                return
            bootstrap = next(iter(self._nodes))
        if bootstrap not in self._nodes:
            raise OverlayError(f"bootstrap node {bootstrap} not alive")
        node = self._create(node_id)

        def adopt(successor: int) -> None:
            node.successor = successor

        # Route the FIND_SUCCESSOR through the bootstrap node.
        self._nodes[bootstrap].lookup(node_id, adopt)

    def leave(self, node_id: int) -> None:
        """Graceful departure: notify the ring neighbors, then go.

        The leaver points its predecessor at its successor and vice
        versa; remaining stale fingers elsewhere heal via fix_fingers.
        """
        node = self.node(node_id)
        successor = node.live_successor()
        notice = LeaveNotice(
            node=node_id,
            new_successor=successor if successor != node_id else node_id,
            new_predecessor=node.predecessor,
        )
        if node.predecessor is not None and node.predecessor != node_id:
            self.send_control(node_id, node.predecessor, notice)
        if successor != node_id:
            self.send_control(node_id, successor, notice)
        self._remove(node_id)

    def crash(self, node_id: int) -> None:
        """Abrupt failure: state vanishes; others discover via timeouts."""
        if node_id not in self._nodes:
            raise OverlayError(f"no live node with id {node_id}")
        self._remove(node_id)

    def _remove(self, node_id: int) -> None:
        del self._nodes[node_id]
        self._network.unregister(node_id)
        for timer in self._timers.pop(node_id, []):
            timer.stop()

    def _create(self, node_id: int) -> ProtocolChordNode:
        node = ProtocolChordNode(node_id, self)
        self._nodes[node_id] = node
        self._network.register(node_id, node.receive)
        stabilizer = PeriodicTimer(self._sim, self.stabilize_period, node.stabilize)
        fixer = PeriodicTimer(self._sim, self.fix_fingers_period, node.fix_next_finger)
        stabilizer.start()
        fixer.start()
        self._timers[node_id] = [stabilizer, fixer]
        return node

    # -- transport helpers -----------------------------------------------------

    def send_control(self, src: int, dst: int, payload: object) -> None:
        """One-hop control message (reply or direct probe)."""
        if dst == src:
            node = self._nodes.get(src)
            if node is not None:
                node.receive(
                    OverlayMessage(
                        kind=MessageKind.CONTROL,
                        payload=payload,
                        request_id=next_request_id(),
                        origin=src,
                    )
                )
            return
        message = OverlayMessage(
            kind=MessageKind.CONTROL,
            payload=payload,
            request_id=next_request_id(),
            origin=src,
        )
        self._network.transmit(src, dst, message.forwarded_copy(src))

    def forward(self, src: int, dst: int, message: OverlayMessage) -> None:
        """Forward a routed protocol message one hop."""
        self._network.transmit(src, dst, message)

    # -- verification against the ideal ring ----------------------------------

    def ideal_successor(self, node_id: int) -> int:
        """Ground truth: the live node following ``node_id``."""
        ids = self.node_ids()
        index = ids.index(node_id)
        return ids[(index + 1) % len(ids)]

    def converged(self) -> bool:
        """True when every node's successor matches the ideal ring."""
        return all(
            node.successor == self.ideal_successor(node_id)
            for node_id, node in self._nodes.items()
        )

    def run_until_converged(
        self, max_rounds: int = 200
    ) -> tuple[bool, float]:
        """Advance the simulation until successors converge.

        Returns:
            ``(converged, simulated_time_elapsed)``.
        """
        start = self._sim.now
        for _ in range(max_rounds):
            if self.converged():
                return True, self._sim.now - start
            self._sim.run_until(self._sim.now + self.stabilize_period)
        return self.converged(), self._sim.now - start

    # -- the OverlayNetwork interface (application side) -------------------

    def build_ring(self, node_ids) -> None:
        """Protocol bootstrap + sequential joins, then wait for
        convergence (so harnesses can start from a settled ring)."""
        ids = list(dict.fromkeys(node_ids))
        if not ids:
            raise OverlayError("cannot build an empty ring")
        self.bootstrap(ids[0])
        for node_id in ids[1:]:
            self.join(node_id, bootstrap=ids[0])
            self._sim.run_until(self._sim.now + 2 * self.stabilize_period)
        self.run_until_converged()

    def owner_of(self, key: int) -> int:
        """Ground-truth owner (the ideal ring) — for metrics and tests.

        Application delivery uses each node's *believed* coverage
        (:meth:`covers`), which can transiently disagree during
        convergence.
        """
        import bisect

        ids = self.node_ids()
        if not ids:
            raise OverlayError("empty overlay")
        self._keyspace.validate(key)
        index = bisect.bisect_left(ids, key)
        return ids[index % len(ids)] if index < len(ids) else ids[0]

    def covers(self, node_id: int, key: int) -> bool:
        """Believed coverage per the node's stored predecessor."""
        return self.node(node_id).believes_covers(key)

    def neighbor_of(self, node_id: int, side: NeighborSide) -> int:
        node = self.node(node_id)
        if side is NeighborSide.SUCCESSOR:
            return node.live_successor()
        if node.predecessor is not None and self.is_alive(node.predecessor):
            return node.predecessor
        return node_id

    def heir_of(self, node_id: int) -> int:
        return self.neighbor_of(node_id, NeighborSide.SUCCESSOR)

    def send(self, source_id: int, key: int, message: OverlayMessage) -> None:
        self._keyspace.validate(key)
        node = self.node(source_id)
        node.route_app_unicast(
            dataclasses.replace(
                message, key=key, mode=CastMode.UNICAST, hops=0, path=()
            )
        )

    def mcast(self, source_id: int, keys, message: OverlayMessage) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.continue_app_mcast(
            dataclasses.replace(
                message, target_keys=targets, mode=CastMode.MCAST, hops=0, path=()
            )
        )

    def sequential_cast(self, source_id: int, keys, message: OverlayMessage) -> None:
        targets = frozenset(self._keyspace.validate(k) for k in keys)
        if not targets:
            return
        node = self.node(source_id)
        node.continue_app_sequential(
            dataclasses.replace(
                message,
                target_keys=targets,
                mode=CastMode.SEQUENTIAL,
                hops=0,
                path=(),
            )
        )

    def send_to_neighbor(
        self, source_id: int, side: NeighborSide, message: OverlayMessage
    ) -> None:
        neighbor = self.neighbor_of(source_id, side)
        if neighbor == source_id:
            self.do_deliver(self.node(source_id), message)
            return
        self._network.transmit(
            source_id, neighbor, message.forwarded_copy(source_id)
        )

    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        self._network.transmit(src, dst, message)

    def do_deliver(self, node: ProtocolChordNode, message: OverlayMessage) -> None:
        """Record and raise the application delivery upcall."""
        self.recorder.messages.record_delivery(
            message.request_id, node.id, self._sim.now, message.hops
        )
        load = self._network.active_load
        if load is not None:
            load.on_deliver(node.id)
        self._deliver_upcall(node.id, message)

    def fire_state_transfer(
        self, from_node: int, to_node: int, key_range: tuple[int, int]
    ) -> None:
        """Invoke the application's churn hook (called by nodes when
        stabilization shrinks their believed coverage)."""
        if self._state_transfer is not None and self.is_alive(to_node):
            self._state_transfer(from_node, to_node, key_range)
