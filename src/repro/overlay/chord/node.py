"""A single Chord node: pointers, location cache, routing decisions.

A node knows its ring neighbors, its finger table and (optionally) a
bounded LRU *location cache* of other live nodes it has learned about
from message traffic.  Fingers are computed on demand against the
overlay's current membership and memoized per ring version — this
models a converged Chord (stabilization has quiesced), which matches
the paper's measurement setup where all joins complete before the
workload starts.

Routing is the per-message hot path, so next-hop selection does not
scan the pointer set.  Fingers and cache entries are kept merged in a
single array sorted by clockwise distance from this node (rebuilt
whenever the ring version changes, patched incrementally on cache
learn/evict), and ``_next_hop`` binary-searches it: the best hop for a
key at distance ``t`` is the rightmost table entry with distance
``<= t``.  The m-cast key-partitioning loop binary-searches the
distance-sorted finger list the same way (strict ``< t``).
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.chord.overlay import ChordOverlay


class ChordNode:
    """One overlay node with Chord routing state.

    Args:
        node_id: This node's position on the identifier circle.
        overlay: The owning :class:`~repro.overlay.chord.ChordOverlay`.
        cache_capacity: Maximum entries in the location cache; 0
            disables caching entirely.
    """

    def __init__(
        self, node_id: int, overlay: "ChordOverlay", cache_capacity: int = 128
    ) -> None:
        self.id = node_id
        self._overlay = overlay
        self._cache_capacity = cache_capacity
        self._cache: OrderedDict[int, None] = OrderedDict()
        self._fingers: list[int] = []
        self._finger_dists: list[int] = []
        self._finger_version = -1
        # Merged routing table: fingers + cache, sorted by clockwise
        # distance.  Distances are unique per node id, so two parallel
        # arrays suffice for bisect.  Valid only for _table_version.
        self._table_dists: list[int] = []
        self._table_ids: list[int] = []
        self._table_members: set[int] = set()
        self._table_version = -1

    # -- pointers -------------------------------------------------------

    @property
    def successor(self) -> int:
        """Id of the next live node clockwise on the ring."""
        return self._overlay.successor_of(self.id)

    @property
    def predecessor(self) -> int:
        """Id of the previous live node on the ring."""
        return self._overlay.predecessor_of(self.id)

    def fingers(self) -> list[int]:
        """Distinct live finger nodes, in clockwise order from this node.

        The first entry is always the successor (Chord's first finger).
        Memoized per overlay ring version, together with the clockwise
        distance of each finger (same order).
        """
        version = self._overlay.ring_version
        if self._finger_version != version:
            self._fingers = self._overlay.compute_fingers(self.id)
            size = self._overlay.keyspace.size
            me = self.id
            self._finger_dists = [(f - me) % size for f in self._fingers]
            self._finger_version = version
        return self._fingers

    # -- routing table ----------------------------------------------------

    def _ensure_table(self) -> None:
        """(Re)build the merged distance-sorted table if stale."""
        version = self._overlay.ring_version
        if self._table_version == version:
            return
        fingers = self.fingers()  # refreshes the memoized fingers too
        members = set(fingers)
        members.update(self._cache)
        members.discard(self.id)
        size = self._overlay.keyspace.size
        me = self.id
        pairs = sorted((nid - me) % size for nid in members)
        # Rebuild ids in the same distance order.
        by_distance = {(nid - me) % size: nid for nid in members}
        self._table_dists = pairs
        self._table_ids = [by_distance[d] for d in pairs]
        self._table_members = members
        self._table_version = version

    def _table_insert(self, node_id: int) -> None:
        if self._table_version != self._overlay.ring_version:
            return  # stale: the next _ensure_table rebuild picks it up
        if node_id in self._table_members:
            return
        distance = (node_id - self.id) % self._overlay.keyspace.size
        index = bisect_left(self._table_dists, distance)
        self._table_dists.insert(index, distance)
        self._table_ids.insert(index, node_id)
        self._table_members.add(node_id)

    def _table_discard(self, node_id: int) -> None:
        if self._table_version != self._overlay.ring_version:
            return
        if node_id not in self._table_members:
            return
        if self._finger_version == self._table_version and node_id in self._fingers:
            return  # still reachable as a finger; keep the entry
        distance = (node_id - self.id) % self._overlay.keyspace.size
        index = bisect_left(self._table_dists, distance)
        if index < len(self._table_dists) and self._table_dists[index] == distance:
            del self._table_dists[index]
            del self._table_ids[index]
        self._table_members.discard(node_id)

    # -- location cache ---------------------------------------------------

    def learn(self, node_ids: Iterable[int]) -> None:
        """Insert recently seen node ids into the LRU location cache."""
        if self._cache_capacity <= 0:
            return
        cache = self._cache
        me = self.id
        for node_id in node_ids:
            if node_id == me:
                continue
            if node_id in cache:
                cache.move_to_end(node_id)
            else:
                cache[node_id] = None
                self._table_insert(node_id)
        while len(cache) > self._cache_capacity:
            evicted, _ = cache.popitem(last=False)
            self._table_discard(evicted)

    def forget(self, node_id: int) -> None:
        """Evict a (discovered-dead) node from the location cache."""
        if self._cache.pop(node_id, None) is not None or node_id in self._table_members:
            self._table_discard(node_id)

    def cached_ids(self) -> list[int]:
        """Current location-cache contents (least recent first)."""
        return list(self._cache)

    # -- routing ----------------------------------------------------------

    def covers(self, key: int) -> bool:
        """True if this node covers ``key``: ``key in (pred, self]``."""
        return self._overlay.keyspace.in_open_closed(key, self.predecessor, self.id)

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver ``message``."""
        self.learn(message.path)
        self.learn((message.origin,))
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            # Direct one-hop message (neighbor sends: state transfer,
            # replication, COLLECT aggregation) — no further routing.
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Greedy Chord routing of a unicast message toward its key."""
        key = message.key
        assert key is not None, "unicast message without a destination key"
        if self.covers(key):
            self._overlay.do_deliver(self, message)
            return
        next_hop = self._next_hop(key, use_cache=True)
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    def _next_hop(self, key: int, use_cache: bool) -> int:
        """Closest live node preceding-or-equal to ``key`` that we know.

        Binary-searches the distance-sorted pointer table (fingers,
        plus the location cache when ``use_cache`` is set) for the
        rightmost entry at clockwise distance ``<= distance(self, key)``
        and walks left past dead entries.  Dead cache entries found this
        way are evicted *after* the scan (never while the table is being
        read).  Falls back to the successor when nothing useful is
        known, which always makes progress on the ring.
        """
        overlay = self._overlay
        target_distance = (key - self.id) % overlay.keyspace.size
        if use_cache:
            self._ensure_table()
            dists, ids = self._table_dists, self._table_ids
        else:
            self.fingers()
            dists, ids = self._finger_dists, self._fingers
        is_alive = overlay.is_alive
        best: int | None = None
        dead: list[int] | None = None
        index = bisect_right(dists, target_distance) - 1
        while index >= 0:
            candidate = ids[index]
            if is_alive(candidate):
                best = candidate
                break
            if dead is None:
                dead = [candidate]
            else:
                dead.append(candidate)
            index -= 1
        if dead:
            for node_id in dead:
                self.forget(node_id)
        if best is None:
            return self.successor
        return best

    # -- m-cast (Fig. 4) -------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the m-cast algorithm at the sending node."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """One step of the recursive finger-based multicast.

        Deliver locally if any target key falls in ``(pred, self]``
        (at most one delivery per node, per the paper's guarantee),
        then partition the remaining keys among known pointers: each
        key goes to the closest pointer **strictly preceding** it, or
        to the successor when no pointer precedes it.  Strict
        precedence matters: a key equal to (or covered by) a finger
        node must travel with the chain branch of the preceding
        pointer, otherwise that finger could receive the message both
        directly and through the chain and deliver twice.  Every
        transmission lands directly on a finger, so each is one hop.

        The per-key pointer choice is a binary search over the
        distance-sorted finger list: the closest strictly-preceding
        pointer for a key at distance ``t`` is the last finger with
        distance ``< t``.
        """
        keyspace = self._overlay.keyspace
        size = keyspace.size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        in_open_closed = keyspace.in_open_closed
        mine = {k for k in targets if in_open_closed(k, predecessor, me)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = targets - mine
        if not rest:
            return
        pointers = self.fingers()
        if not pointers:
            return
        dists = self._finger_dists
        successor = pointers[0]  # fallback that always progresses
        groups: dict[int, set[int]] = {}
        for key in rest:
            index = bisect_left(dists, (key - me) % size) - 1
            best = pointers[index] if index >= 0 else successor
            group = groups.get(best)
            if group is None:
                groups[best] = {key}
            else:
                group.add(key)
        for pointer, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.transmit(self.id, pointer, branch)

    # -- conservative sequential range walk (Section 4.3.1 baseline) ------

    def continue_sequential(self, message: OverlayMessage) -> None:
        """One step of the conservative unicast-based range propagation.

        Deliver locally if we cover any target, then route the message
        (with the remaining targets) toward the nearest remaining key
        clockwise.  Matches the paper's "send to k1, each covering node
        forwards to the next key" protocol: same message complexity as
        m-cast but O(log n + N) dilation.
        """
        keyspace = self._overlay.keyspace
        size = keyspace.size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        in_open_closed = keyspace.in_open_closed
        mine = {k for k in targets if in_open_closed(k, predecessor, me)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        next_key = min(rest, key=lambda k: (k - me) % size)
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=next_key
        )
        next_hop = self._next_hop(next_key, use_cache=True)
        self._overlay.transmit(self.id, next_hop, onward)
