"""A single Chord node: pointers, location cache, routing decisions.

A node knows its ring neighbors, its finger table and (optionally) a
bounded LRU *location cache* of other live nodes it has learned about
from message traffic.  Fingers are computed against the overlay's
current membership — this models a converged Chord (stabilization has
quiesced), which matches the paper's measurement setup where all joins
complete before the workload starts.

Routing is the per-message hot path, so next-hop selection does not
scan the pointer set.  Fingers and cache entries are kept merged in a
single array sorted by clockwise distance from this node, and
``_next_hop`` binary-searches it: the best hop for a key at distance
``t`` is the rightmost table entry with distance ``<= t``.  The m-cast
key-partitioning loop binary-searches the distance-sorted finger list
the same way (strict ``< t``).

Under churn the table is maintained *incrementally*.  The overlay logs
every membership change (:meth:`~repro.overlay.ring.RingOverlay.deltas_since`)
and a stale node replays the entries it missed against its raw finger
slots: a join captures the slots whose start falls in ``(pred, joiner]``,
a departure redirects the departed node's slots to its heir.  The
resulting finger-set diff is then spliced into the sorted table.  Only
when the log no longer reaches back to the node's version — or has more
entries than the table itself — does the node fall back to the full
rebuild.  ``table_rebuilds`` / ``table_patches`` count the two paths.

Outbound fan-out reuses message envelopes: an envelope that was *not*
delivered locally is forwarded in place (unicast, sequential, and one
m-cast branch), extra m-cast branches draw on a small per-node free
pool, and all branches of one fan-out share a single path tuple.
Envelopes handed to the application via ``do_deliver`` escape the
reuse path entirely — the application (or a test) may retain them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.chord.overlay import ChordOverlay


class ChordNode:
    """One overlay node with Chord routing state.

    Args:
        node_id: This node's position on the identifier circle.
        overlay: The owning :class:`~repro.overlay.chord.ChordOverlay`.
        cache_capacity: Maximum entries in the location cache; 0
            disables caching entirely.
    """

    _POOL_CAP = 32

    def __init__(
        self, node_id: int, overlay: "ChordOverlay", cache_capacity: int = 128
    ) -> None:
        self.id = node_id
        self._overlay = overlay
        self._cache_capacity = cache_capacity
        self._cache: OrderedDict[int, None] = OrderedDict()
        # Raw finger slots: owner of finger_start(id, i) for each
        # 1-based index i, *including* self-pointing entries.  This is
        # the state the delta-log replay patches; the deduplicated
        # finger list below is derived from it.
        keyspace = overlay.keyspace
        self._size = keyspace.size  # ring size never changes; skip the property
        self._finger_starts: list[int] = [
            keyspace.finger_start(node_id, i) for i in range(1, keyspace.bits + 1)
        ]
        # The same starts in ascending order plus the permutation back
        # to slot indexes: delta replay locates the starts captured by
        # a join with two bisects instead of testing every slot.
        order = sorted(range(len(self._finger_starts)), key=self._finger_starts.__getitem__)
        self._sorted_starts: list[int] = [self._finger_starts[i] for i in order]
        self._start_perm: list[int] = order
        self._finger_slots: list[int] = []
        self._fingers: list[int] = []
        self._finger_dists: list[int] = []
        self._finger_members: set[int] = set()
        # Merged routing table: fingers + cache, sorted by clockwise
        # distance.  Distances are unique per node id, so two parallel
        # arrays suffice for bisect.  Valid only for _table_version;
        # fingers share the same version stamp.
        self._table_dists: list[int] = []
        self._table_ids: list[int] = []
        self._table_members: set[int] = set()
        self._table_version = -1
        # Maintenance counters, exposed for tests and benchmarks as
        # thin property views over per-node registry instruments.
        registry = overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "chord.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "chord.table_patches", node=node_id
        )
        # Version-stamped predecessor memo: covers() and the two
        # multicast walks all ask for it, often several times per tick.
        self._pred_version = -1
        self._pred_value = node_id
        # Free pool of outbound envelopes for the m-cast fan-out loop.
        self._msg_pool: list[OverlayMessage] = []

    # -- pointers -------------------------------------------------------

    @property
    def table_rebuilds(self) -> int:
        """Full finger-table rebuilds (view over ``chord.table_rebuilds``)."""
        return self._rebuilds_counter.value

    @property
    def table_patches(self) -> int:
        """Incremental delta-log patches (view over ``chord.table_patches``)."""
        return self._patches_counter.value

    @property
    def successor(self) -> int:
        """Id of the next live node clockwise on the ring."""
        return self._overlay.successor_of(self.id)

    @property
    def predecessor(self) -> int:
        """Id of the previous live node on the ring."""
        version = self._overlay.ring_version
        if self._pred_version != version:
            self._pred_value = self._overlay.predecessor_of(self.id)
            self._pred_version = version
        return self._pred_value

    def fingers(self) -> list[int]:
        """Distinct live finger nodes, in clockwise order from this node.

        The first entry is always the successor (Chord's first finger).
        Kept current against the overlay ring version, together with the
        clockwise distance of each finger (same order).
        """
        self._sync()
        return self._fingers

    # -- routing table ----------------------------------------------------

    def _sync(self) -> None:
        """Catch fingers + merged table up to the current ring version.

        Cheap no-op when already current.  Otherwise replays the
        overlay's membership delta log against the raw finger slots and
        splices the finger diff into the sorted table; falls back to a
        full rebuild when the log does not reach back to our version or
        has more entries than the table has rows.
        """
        overlay = self._overlay
        version = overlay.ring_version
        if self._table_version == version:
            return
        # Equivalent to overlay.deltas_since(...) without the slice
        # allocation: the invariant ring_version == base + len(log)
        # makes len(log) - start the number of missed deltas.
        log = overlay._delta_log
        start = self._table_version - overlay._delta_base
        if start < 0 or len(log) - start > len(self._table_ids):
            self._rebuild(version)
        else:
            self._patch(log, start, version)

    def _ensure_table(self) -> None:
        """(Re)build or patch the merged distance-sorted table if stale."""
        self._sync()

    def _rebuild(self, version: int) -> None:
        """Recompute finger slots and the merged table from scratch."""
        overlay = self._overlay
        self._finger_slots = overlay.owners_of(self._finger_starts)
        self._refresh_fingers()
        members = set(self._finger_members)
        members.update(self._cache)
        members.discard(self.id)
        size = self._size
        me = self.id
        by_distance = {(nid - me) % size: nid for nid in members}
        dists = sorted(by_distance)
        self._table_dists = dists
        self._table_ids = [by_distance[d] for d in dists]
        self._table_members = members
        self._table_version = version
        self._rebuilds_counter.inc()

    def _patch(
        self, log: list[tuple[str, int, int]], start: int, version: int
    ) -> None:
        """Replay membership deltas ``log[start:]`` instead of rebuilding.

        A join ``(J, pred)`` owns every finger start in ``(pred, J]``;
        a departure ``(L, heir)`` hands L's slots to its heir.  The
        slot replay reproduces ``owner_of(start)`` exactly, so the
        derived finger list — and therefore the merged table — is
        identical to what a full rebuild would produce.  Departed
        nodes that live in the location cache stay in the table (same
        as after a rebuild) until ``_next_hop`` discovers them dead.
        """
        slots = self._finger_slots
        sorted_starts = self._sorted_starts
        perm = self._start_perm
        nslots = len(slots)
        changed = False
        # Replay runs for every stale node on every use under churn,
        # and most deltas leave a given node's slots untouched — so a
        # join locates its captured starts (the ones in (pred, joiner])
        # with two C-level bisects over the sorted starts, and a
        # departure pre-screens with a C-level list containment before
        # scanning.  The common case touches no slot at all.
        for index in range(start, len(log)):
            op, node_id, other = log[index]
            if op == "join":
                if other == node_id:  # joiner was alone; captures all
                    for i in range(nslots):
                        if slots[i] != node_id:
                            slots[i] = node_id
                            changed = True
                    continue
                lo = bisect_right(sorted_starts, other)
                hi = bisect_right(sorted_starts, node_id)
                if other < node_id:
                    captured = perm[lo:hi]
                else:  # (pred, joiner] wraps past zero
                    captured = perm[lo:] + perm[:hi]
                for i in captured:
                    if slots[i] != node_id:
                        slots[i] = node_id
                        changed = True
            elif node_id in slots:  # "depart": redirect L's slots to heir
                for i in range(nslots):
                    if slots[i] == node_id:
                        slots[i] = other
                        changed = True
        self._table_version = version
        self._patches_counter.inc()
        if not changed:
            return  # no slot moved: fingers and table are already exact
        old_fingers = self._finger_members
        self._refresh_fingers()
        new_fingers = self._finger_members
        for added in new_fingers - old_fingers:
            self._raw_insert(added)
        cache = self._cache
        for removed in old_fingers - new_fingers:
            if removed not in cache:
                self._raw_discard(removed)

    def _refresh_fingers(self) -> None:
        """Derive the deduplicated distance-sorted fingers from the slots."""
        me = self.id
        size = self._size
        members = set(self._finger_slots)
        members.discard(me)
        by_distance = {(nid - me) % size: nid for nid in members}
        dists = sorted(by_distance)
        self._finger_dists = dists
        self._fingers = [by_distance[d] for d in dists]
        self._finger_members = members

    def _table_insert(self, node_id: int) -> None:
        if self._table_version != self._overlay.ring_version:
            return  # stale: the next _sync catches it up
        self._raw_insert(node_id)

    def _table_discard(self, node_id: int) -> None:
        if self._table_version != self._overlay.ring_version:
            return
        if node_id in self._finger_members:
            return  # still reachable as a finger; keep the entry
        self._raw_discard(node_id)

    def _raw_insert(self, node_id: int) -> None:
        if node_id in self._table_members:
            return
        distance = (node_id - self.id) % self._size
        index = bisect_left(self._table_dists, distance)
        self._table_dists.insert(index, distance)
        self._table_ids.insert(index, node_id)
        self._table_members.add(node_id)

    def _raw_discard(self, node_id: int) -> None:
        if node_id not in self._table_members:
            return
        distance = (node_id - self.id) % self._size
        index = bisect_left(self._table_dists, distance)
        if index < len(self._table_dists) and self._table_dists[index] == distance:
            del self._table_dists[index]
            del self._table_ids[index]
        self._table_members.discard(node_id)

    # -- location cache ---------------------------------------------------

    def learn(self, node_ids: Iterable[int]) -> None:
        """Insert recently seen node ids into the LRU location cache."""
        if self._cache_capacity <= 0:
            return
        self._sync()  # table current, so the inserts below land
        cache = self._cache
        me = self.id
        for node_id in node_ids:
            if node_id == me:
                continue
            if node_id in cache:
                cache.move_to_end(node_id)
            else:
                cache[node_id] = None
                self._table_insert(node_id)
        while len(cache) > self._cache_capacity:
            evicted, _ = cache.popitem(last=False)
            self._table_discard(evicted)

    def forget(self, node_id: int) -> None:
        """Evict a (discovered-dead) node from the location cache."""
        self._sync()
        if self._cache.pop(node_id, None) is not None or node_id in self._table_members:
            self._table_discard(node_id)

    def cached_ids(self) -> list[int]:
        """Current location-cache contents (least recent first)."""
        return list(self._cache)

    # -- outbound envelope reuse ------------------------------------------

    def _branch(
        self,
        message: OverlayMessage,
        hops: int,
        path: tuple[int, ...],
        target_keys: frozenset[int],
    ) -> OverlayMessage:
        """An outbound m-cast branch, recycled from the pool if possible."""
        pool = self._msg_pool
        if pool:
            branch = pool.pop()
            branch.kind = message.kind
            branch.payload = message.payload
            branch.request_id = message.request_id
            branch.origin = message.origin
            branch.key = message.key
            branch.target_keys = target_keys
            branch.mode = message.mode
            branch.hops = hops
            branch.path = path
            branch.trace = message.trace
            return branch
        return OverlayMessage(
            kind=message.kind,
            payload=message.payload,
            request_id=message.request_id,
            origin=message.origin,
            key=message.key,
            target_keys=target_keys,
            mode=message.mode,
            hops=hops,
            path=path,
            trace=message.trace,
        )

    def _release(self, message: OverlayMessage) -> None:
        """Return a dead envelope to the pool.

        Only for envelopes this node owns outright: never delivered
        locally (the application may retain delivered messages) and not
        forwarded anywhere.
        """
        pool = self._msg_pool
        if len(pool) < self._POOL_CAP:
            message.payload = None
            message.target_keys = None
            message.path = ()
            pool.append(message)

    # -- routing ----------------------------------------------------------

    def covers(self, key: int) -> bool:
        """True if this node covers ``key``: ``key in (pred, self]``."""
        me = self.id
        predecessor = self.predecessor
        if predecessor == me:  # sole node: covers the whole ring
            return True
        # Inline in_open_closed: per-message hot path.
        return 0 < (key - predecessor) % self._size <= (me - predecessor) % self._size

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver ``message``."""
        # One merged learn: LRU eviction removes the globally oldest
        # entries whenever it runs, so folding origin into the same
        # pass leaves the final cache (and table) identical to the
        # two-call sequence while halving the per-receive overhead.
        self.learn(message.path + (message.origin,))
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            # Direct one-hop message (neighbor sends: state transfer,
            # replication, COLLECT aggregation) — no further routing.
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Greedy Chord routing of a unicast message toward its key.

        Forwarded envelopes are reused in place: the overlay hands this
        node exclusive ownership of an in-flight message, so advancing
        ``hops``/``path`` on the same object replaces one allocation
        per hop.
        """
        key = message.key
        assert key is not None, "unicast message without a destination key"
        if self.covers(key):
            self._overlay.do_deliver(self, message)
            return
        next_hop = self._next_hop(key, use_cache=True)
        message.hops += 1
        message.path += (self.id,)
        self._overlay.transmit(self.id, next_hop, message)

    def _next_hop(self, key: int, use_cache: bool) -> int:
        """Closest live node preceding-or-equal to ``key`` that we know.

        Binary-searches the distance-sorted pointer table (fingers,
        plus the location cache when ``use_cache`` is set) for the
        rightmost entry at clockwise distance ``<= distance(self, key)``
        and walks left past dead entries.  Dead cache entries found this
        way are evicted *after* the scan (never while the table is being
        read).  Falls back to the successor when nothing useful is
        known, which always makes progress on the ring.
        """
        overlay = self._overlay
        target_distance = (key - self.id) % self._size
        self._sync()
        if use_cache:
            dists, ids = self._table_dists, self._table_ids
        else:
            dists, ids = self._finger_dists, self._fingers
        is_alive = overlay.is_alive
        best: int | None = None
        dead: list[int] | None = None
        index = bisect_right(dists, target_distance) - 1
        while index >= 0:
            candidate = ids[index]
            if is_alive(candidate):
                best = candidate
                break
            if dead is None:
                dead = [candidate]
            else:
                dead.append(candidate)
            index -= 1
        if dead:
            for node_id in dead:
                self.forget(node_id)
        if best is None:
            return self.successor
        return best

    # -- m-cast (Fig. 4) -------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the m-cast algorithm at the sending node."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """One step of the recursive finger-based multicast.

        Deliver locally if any target key falls in ``(pred, self]``
        (at most one delivery per node, per the paper's guarantee),
        then partition the remaining keys among known pointers: each
        key goes to the closest pointer **strictly preceding** it, or
        to the successor when no pointer precedes it.  Strict
        precedence matters: a key equal to (or covered by) a finger
        node must travel with the chain branch of the preceding
        pointer, otherwise that finger could receive the message both
        directly and through the chain and deliver twice.  Every
        transmission lands directly on a finger, so each is one hop.

        The per-key pointer choice is a binary search over the
        distance-sorted finger list: the closest strictly-preceding
        pointer for a key at distance ``t`` is the last finger with
        distance ``< t``.

        Fan-out reuse: all branches share one path tuple; if this
        envelope was not delivered locally it becomes one of the
        branches, and further branches come from the per-node pool.
        """
        size = self._size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        # Inline in_open_closed(k, pred, me): runs per target key.
        if predecessor == me:  # sole node: every key is ours
            mine = set(targets)
        else:
            span = (me - predecessor) % size
            mine = {k for k in targets if 0 < (k - predecessor) % size <= span}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = targets - mine
        if not rest:
            return
        pointers = self.fingers()
        if not pointers:
            if not mine:
                self._release(message)
            return
        dists = self._finger_dists
        successor = pointers[0]  # fallback that always progresses
        hops = message.hops + 1
        path = message.path + (me,)
        transmit = self._overlay.transmit
        if len(rest) == 1:
            # Single remaining key: one branch, no grouping machinery.
            (key,) = rest
            index = bisect_left(dists, (key - me) % size) - 1
            pointer = pointers[index] if index >= 0 else successor
            if mine:
                branch = self._branch(message, hops, path, rest)
            else:
                branch = message
                branch.hops = hops
                branch.path = path
                branch.target_keys = rest
            transmit(me, pointer, branch)
            return
        groups: dict[int, set[int]] = {}
        for key in rest:
            index = bisect_left(dists, (key - me) % size) - 1
            best = pointers[index] if index >= 0 else successor
            group = groups.get(best)
            if group is None:
                groups[best] = {key}
            else:
                group.add(key)
        # One group means its key set is exactly ``rest`` — reuse that
        # frozenset instead of building an identical one.
        whole = rest if len(groups) == 1 else None
        # The undelivered envelope carries one branch itself; the rest
        # are fresh (or pooled) copies sharing the same path tuple.
        reusable = None if mine else message
        for pointer, keys in groups.items():
            branch_keys = whole if whole is not None else frozenset(keys)
            if reusable is not None:
                branch = reusable
                branch.hops = hops
                branch.path = path
                branch.target_keys = branch_keys
                reusable = None
            else:
                branch = self._branch(message, hops, path, branch_keys)
            transmit(me, pointer, branch)

    # -- conservative sequential range walk (Section 4.3.1 baseline) ------

    def continue_sequential(self, message: OverlayMessage) -> None:
        """One step of the conservative unicast-based range propagation.

        Deliver locally if we cover any target, then route the message
        (with the remaining targets) toward the nearest remaining key
        clockwise.  Matches the paper's "send to k1, each covering node
        forwards to the next key" protocol: same message complexity as
        m-cast but O(log n + N) dilation.  An envelope that was not
        delivered locally is forwarded in place.
        """
        size = self._size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        # Inline in_open_closed(k, pred, me), as in continue_mcast.
        if predecessor == me:
            mine = set(targets)
        else:
            span = (me - predecessor) % size
            mine = {k for k in targets if 0 < (k - predecessor) % size <= span}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = targets - mine
        if not rest:
            return
        # min() with a key lambda is measurably slower on this path.
        next_key = -1
        best_distance = size
        for k in rest:
            distance = (k - me) % size
            if distance < best_distance:
                best_distance = distance
                next_key = k
        if mine:
            onward = OverlayMessage(
                kind=message.kind,
                payload=message.payload,
                request_id=message.request_id,
                origin=message.origin,
                key=next_key,
                target_keys=rest,
                mode=message.mode,
                hops=message.hops + 1,
                path=message.path + (me,),
                trace=message.trace,
            )
        else:
            onward = message
            onward.hops += 1
            onward.path += (me,)
            onward.target_keys = rest
            onward.key = next_key
        next_hop = self._next_hop(next_key, use_cache=True)
        self._overlay.transmit(me, next_hop, onward)
