"""A single Chord node: pointers, location cache, routing decisions.

A node knows its ring neighbors, its finger table and (optionally) a
bounded LRU *location cache* of other live nodes it has learned about
from message traffic.  Fingers are computed against the overlay's
current membership — this models a converged Chord (stabilization has
quiesced), which matches the paper's measurement setup where all joins
complete before the workload starts.

Routing is the per-message hot path, so next-hop selection does not
scan the pointer set.  Fingers and cache entries are kept merged in a
single array sorted by clockwise distance from this node, and
``_next_hop`` binary-searches it: the best hop for a key at distance
``t`` is the rightmost table entry with distance ``<= t``.  The m-cast
key-partitioning loop binary-searches the distance-sorted finger list
the same way (strict ``< t``).

Under churn the table is maintained *incrementally*.  The overlay logs
every membership change (:meth:`~repro.overlay.ring.RingOverlay.deltas_since`)
and a stale node replays the entries it missed against its raw finger
slots: a join captures the slots whose start falls in ``(pred, joiner]``,
a departure redirects the departed node's slots to its heir.  The
resulting finger-set diff is then spliced into the sorted table.  Only
when the log no longer reaches back to the node's version — or has more
entries than the node has finger slots — does the node fall back to the
rebuild path, which re-resolves every slot from the ring and splices
the slots that moved.  ``table_rebuilds`` / ``table_patches`` count the
two paths.

Outbound fan-out reuses message envelopes: an envelope that was *not*
delivered locally is forwarded in place (unicast, sequential, and one
m-cast branch), extra m-cast branches draw on a small per-node free
pool, and all branches of one fan-out share a single path tuple.
Envelopes handed to the application via ``do_deliver`` escape the
reuse path entirely — the application (or a test) may retain them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.chord.overlay import ChordOverlay


class ChordNode:
    """One overlay node with Chord routing state.

    Args:
        node_id: This node's position on the identifier circle.
        overlay: The owning :class:`~repro.overlay.chord.ChordOverlay`.
        cache_capacity: Maximum entries in the location cache; 0
            disables caching entirely.
    """

    _POOL_CAP = 32

    def __init__(
        self, node_id: int, overlay: "ChordOverlay", cache_capacity: int = 128
    ) -> None:
        self.id = node_id
        self._overlay = overlay
        self._cache_capacity = cache_capacity
        self._cache: OrderedDict[int, None] = OrderedDict()
        # Raw finger slots: owner of finger_start(id, i) for each
        # 1-based index i, *including* self-pointing entries.  This is
        # the state the delta-log replay patches; the deduplicated
        # finger list below is derived from it.
        keyspace = overlay.keyspace
        self._size = keyspace.size  # ring size never changes; skip the property
        self._bits = keyspace.bits
        # Finger-start geometry (the m start keys, their sorted order
        # and the permutation back to slot indexes) is built lazily on
        # the first table materialization: at scale-bench populations
        # most nodes never route, and the O(m log m) per-node setup —
        # plus the three labeled registry counters — dominated ring
        # construction time.
        self._finger_starts: list[int] | None = None
        self._sorted_starts: list[int] | None = None
        self._start_perm: list[int] | None = None
        self._finger_slots: list[int] = []
        self._fingers: list[int] = []
        self._finger_dists: list[int] = []
        self._finger_members: set[int] = set()
        # How many slots point at each finger node: patching maintains
        # the deduplicated finger arrays per changed slot, and a finger
        # only appears/disappears when its slot count crosses zero.
        self._finger_counts: dict[int, int] = {}
        # Merged routing table: fingers + cache, sorted by clockwise
        # distance.  Distances are unique per node id, so two parallel
        # arrays suffice for bisect.  Valid only for _table_version;
        # fingers share the same version stamp.
        self._table_dists: list[int] = []
        self._table_ids: list[int] = []
        self._table_members: set[int] = set()
        self._table_version = -1
        # Maintenance counters, exposed for tests and benchmarks as
        # thin property views over per-node registry instruments.
        # Created together with the geometry: a cold node has counted
        # nothing, and its properties read 0 without an instrument.
        self._rebuilds_counter = None
        self._patches_counter = None
        self._seeds_counter = None
        # Version-stamped predecessor memo: covers() and the two
        # multicast walks all ask for it, often several times per tick.
        self._pred_version = -1
        self._pred_value = node_id
        # Free pool of outbound envelopes for the m-cast fan-out loop.
        self._msg_pool: list[OverlayMessage] = []

    # -- pointers -------------------------------------------------------

    @property
    def table_rebuilds(self) -> int:
        """Full finger-table rebuilds (view over ``chord.table_rebuilds``)."""
        counter = self._rebuilds_counter
        return 0 if counter is None else counter.value

    @property
    def table_patches(self) -> int:
        """Incremental delta-log patches (view over ``chord.table_patches``)."""
        counter = self._patches_counter
        return 0 if counter is None else counter.value

    @property
    def table_seeds(self) -> int:
        """Join-time table seedings (view over ``chord.table_seeds``)."""
        counter = self._seeds_counter
        return 0 if counter is None else counter.value

    @property
    def successor(self) -> int:
        """Id of the next live node clockwise on the ring."""
        return self._overlay.successor_of(self.id)

    @property
    def predecessor(self) -> int:
        """Id of the previous live node on the ring."""
        version = self._overlay.ring_version
        if self._pred_version != version:
            self._pred_value = self._overlay.predecessor_of(self.id)
            self._pred_version = version
        return self._pred_value

    def fingers(self) -> list[int]:
        """Distinct live finger nodes, in clockwise order from this node.

        The first entry is always the successor (Chord's first finger).
        Kept current against the overlay ring version, together with the
        clockwise distance of each finger (same order).
        """
        self._sync()
        return self._fingers

    def audit_state(self) -> tuple[int, list[int]]:
        """Raw routing state for the auditor: ``(version, finger slots)``.

        Non-mutating by contract — the auditor must observe the table
        exactly as routing left it (a sync would launder a corrupted or
        stale table into a fresh one), so this must never call
        :meth:`_sync`.  Version -1 means the node never materialized a
        table (cold).
        """
        return self._table_version, list(self._finger_slots)

    # -- routing table ----------------------------------------------------

    def _sync(self) -> None:
        """Catch fingers + merged table up to the current ring version.

        Cheap no-op when already current.  Otherwise replays the
        overlay's membership delta log against the raw finger slots and
        splices the finger diff into the sorted table; falls back to a
        slot re-resolve when the log does not reach back to our version
        or has more entries than we have finger slots.
        """
        overlay = self._overlay
        version = overlay.ring_version
        if self._table_version == version:
            return
        # Equivalent to overlay.deltas_since(...) without the slice
        # allocation: the invariant ring_version == base + len(log)
        # makes len(log) - start the number of missed deltas.  The
        # cutover sits at the slot count: replaying a delta costs two
        # bisects against the sorted starts, while a rebuild re-resolves
        # all slots at one bisect each and splices only the changed
        # ones, so past ~#slots missed deltas the rebuild is cheaper.
        log = overlay._delta_log
        start = self._table_version - overlay._delta_base
        if start < 0 or len(log) - start > self._bits:
            self._rebuild(version)
        else:
            self._patch(log, start, version)

    def _ensure_geometry(self) -> None:
        """Build the lazy finger-start geometry (no-op when present)."""
        if self._finger_starts is not None:
            return
        keyspace = self._overlay.keyspace
        node_id = self.id
        starts = [
            keyspace.finger_start(node_id, i) for i in range(1, self._bits + 1)
        ]
        self._finger_starts = starts
        # The same starts in ascending order plus the permutation back
        # to slot indexes: delta replay locates the starts captured by
        # a join with two bisects instead of testing every slot.
        order = sorted(range(len(starts)), key=starts.__getitem__)
        self._sorted_starts = [starts[i] for i in order]
        self._start_perm = order
        registry = self._overlay.telemetry.registry
        self._rebuilds_counter = registry.counter(
            "chord.table_rebuilds", node=node_id
        )
        self._patches_counter = registry.counter(
            "chord.table_patches", node=node_id
        )
        self._seeds_counter = registry.counter(
            "chord.table_seeds", node=node_id
        )

    def _ensure_table(self) -> None:
        """(Re)build or patch the merged distance-sorted table if stale."""
        self._sync()

    def _rebuild(self, version: int) -> None:
        """Recompute the finger slots from the ring and splice the diff.

        The slots are re-resolved wholesale (``owners_of`` over every
        start), but a node that already holds derived state only pays
        for the slots that actually moved: each is spliced into the
        finger arrays and the merged table in place via the slot-count
        map, which lands in exactly the state a from-scratch derivation
        would (same argument as :meth:`_patch`).  Only a cold node —
        no slots yet — derives everything from scratch.
        """
        self._ensure_geometry()
        overlay = self._overlay
        old_slots = self._finger_slots
        if old_slots:
            # Inline owners_of: resolve each start against the ring and
            # splice in place, skipping the intermediate owners list.
            ring = overlay._ring
            count = len(ring)
            first = ring[0]
            search = bisect_left
            apply_slot = self._apply_slot
            for index, start_key in enumerate(self._finger_starts):
                at = search(ring, start_key)
                owner = ring[at] if at < count else first
                if old_slots[index] != owner:
                    apply_slot(index, owner)
        else:
            self._finger_slots = overlay.owners_of(self._finger_starts)
            self._refresh_fingers()
            members = set(self._finger_members)
            members.update(self._cache)
            members.discard(self.id)
            size = self._size
            me = self.id
            by_distance = {(nid - me) % size: nid for nid in members}
            dists = sorted(by_distance)
            self._table_dists = dists
            self._table_ids = [by_distance[d] for d in dists]
            self._table_members = members
        self._table_version = version
        self._rebuilds_counter.inc()

    def _patch(
        self, log: list[tuple[str, int, int]], start: int, version: int
    ) -> None:
        """Replay membership deltas ``log[start:]`` instead of rebuilding.

        A join ``(J, pred)`` owns every finger start in ``(pred, J]``;
        a departure ``(L, heir)`` hands L's slots to its heir.  The
        slot replay reproduces ``owner_of(start)`` exactly, so the
        derived finger list — and therefore the merged table — is
        identical to what a full rebuild would produce.  Departed
        nodes that live in the location cache stay in the table (same
        as after a rebuild) until ``_next_hop`` discovers them dead.
        """
        slots = self._finger_slots
        sorted_starts = self._sorted_starts
        perm = self._start_perm
        nslots = len(slots)
        apply_slot = self._apply_slot
        # Replay runs for every stale node on every use under churn,
        # and most deltas leave a given node's slots untouched — so a
        # join locates its captured starts (the ones in (pred, joiner])
        # with two C-level bisects over the sorted starts, and a
        # departure pre-screens with a C-level list containment before
        # scanning.  The common case touches no slot at all; each slot
        # that does move updates the finger arrays and the merged table
        # in place via the slot-count map.
        for index in range(start, len(log)):
            op, node_id, other = log[index]
            if op == "join":
                if other == node_id:  # joiner was alone; captures all
                    for i in range(nslots):
                        if slots[i] != node_id:
                            apply_slot(i, node_id)
                    continue
                lo = bisect_right(sorted_starts, other)
                hi = bisect_right(sorted_starts, node_id)
                if other < node_id:
                    captured = perm[lo:hi]
                else:  # (pred, joiner] wraps past zero
                    captured = perm[lo:] + perm[:hi]
                for i in captured:
                    if slots[i] != node_id:
                        apply_slot(i, node_id)
            elif node_id in slots:  # "depart": redirect L's slots to heir
                for i in range(nslots):
                    if slots[i] == node_id:
                        apply_slot(i, other)
        self._table_version = version
        self._patches_counter.inc()

    def _apply_slot(self, index: int, new_owner: int) -> None:
        """Point slot ``index`` at ``new_owner``, keeping the derived
        finger arrays and the merged table exact.

        The finger arrays gain/lose a node only when its slot count
        crosses zero, so the result is identical to re-deriving them
        from the slots; table membership follows the same rules the
        deferred diff applied (a dropped finger stays while cached).
        """
        slots = self._finger_slots
        old = slots[index]
        slots[index] = new_owner
        counts = self._finger_counts
        me = self.id
        size = self._size
        remaining = counts[old] - 1
        if remaining:
            counts[old] = remaining
        else:
            del counts[old]
            if old != me:
                self._finger_members.discard(old)
                distance = (old - me) % size
                at = bisect_left(self._finger_dists, distance)
                del self._finger_dists[at]
                del self._fingers[at]
                if old not in self._cache:
                    self._raw_discard(old)
        held = counts.get(new_owner)
        if held:
            counts[new_owner] = held + 1
        else:
            counts[new_owner] = 1
            if new_owner != me:
                self._finger_members.add(new_owner)
                distance = (new_owner - me) % size
                at = bisect_left(self._finger_dists, distance)
                self._finger_dists.insert(at, distance)
                self._fingers.insert(at, new_owner)
                self._raw_insert(new_owner)

    def _refresh_fingers(self) -> None:
        """Derive the deduplicated distance-sorted fingers from the slots."""
        me = self.id
        size = self._size
        counts: dict[int, int] = {}
        for nid in self._finger_slots:
            counts[nid] = counts.get(nid, 0) + 1
        self._finger_counts = counts
        members = set(counts)
        members.discard(me)
        by_distance = {(nid - me) % size: nid for nid in members}
        dists = sorted(by_distance)
        self._finger_dists = dists
        self._fingers = [by_distance[d] for d in dists]
        self._finger_members = members

    def seed_tables(self) -> None:
        """Seed finger slots at join time from the successor's table.

        A cold node's first ``_sync`` used to be a wholesale rebuild.
        Instead, the overlay calls this right after the join is applied:
        the joiner's slots are derived from its successor S, one delta
        apart on the ring, and only the slots S's table cannot certify
        fall back to a ring bisect.  Exactness per slot (start ``x``):

        - ``x`` in ``(self, S]``: S is the first live node clockwise of
          self, so ``owner(x) = S`` outright.
        - otherwise, S's slot ``j`` says ``owner(start_j) = y`` — i.e.
          no live node lies in ``[start_j, y)``.  If ``x`` falls inside
          ``(start_j, y]`` for the certifying ``j`` (the largest power
          of two not past ``x``), then ``owner(x) = y`` too.
        - anything else is resolved with ``owner_of`` on the ring.

        The successor is synced first, so its slots are at the current
        ring version (which already includes this join); syncing early
        only moves work it would do on its next use anyway.
        """
        self._ensure_geometry()
        overlay = self._overlay
        version = overlay.ring_version
        me = self.id
        size = self._size
        starts = self._finger_starts
        nslots = len(starts)
        succ_id = overlay.successor_of(me)
        if succ_id == me:  # alone on the ring: every slot is self
            slots: list[int | None] = [me] * nslots
        else:
            succ = overlay._nodes[succ_id]
            succ._sync()
            succ_slots = succ._finger_slots
            gap = (succ_id - me) % size
            slots = [None] * nslots
            unresolved: list[int] = []
            for i in range(nslots):
                step = 1 << i  # distance(self, start_i)
                if step <= gap:
                    slots[i] = succ_id
                    continue
                offset = step - gap  # distance(S, start_i), > 0
                j = offset.bit_length() - 1  # largest 2**j <= offset
                if j < nslots:
                    sample_start = (succ_id + (1 << j)) % size
                    sample_owner = succ_slots[j]
                    reach = (sample_owner - sample_start) % size
                    if offset - (1 << j) <= reach:
                        slots[i] = sample_owner
                        continue
                unresolved.append(i)
            if unresolved:
                resolved = overlay.owners_of(starts[i] for i in unresolved)
                for i, owner in zip(unresolved, resolved):
                    slots[i] = owner
        self._finger_slots = slots  # type: ignore[assignment]
        self._refresh_fingers()
        # Fresh node: the cache is empty, so the merged table is the
        # finger view verbatim — no dict/sort pass needed.
        self._table_dists = list(self._finger_dists)
        self._table_ids = list(self._fingers)
        self._table_members = set(self._finger_members)
        self._table_version = version
        self._seeds_counter.inc()

    def _raw_insert(self, node_id: int) -> None:
        if node_id in self._table_members:
            return
        distance = (node_id - self.id) % self._size
        index = bisect_left(self._table_dists, distance)
        self._table_dists.insert(index, distance)
        self._table_ids.insert(index, node_id)
        self._table_members.add(node_id)

    def _raw_discard(self, node_id: int) -> None:
        if node_id not in self._table_members:
            return
        distance = (node_id - self.id) % self._size
        index = bisect_left(self._table_dists, distance)
        if index < len(self._table_dists) and self._table_dists[index] == distance:
            del self._table_dists[index]
            del self._table_ids[index]
        self._table_members.discard(node_id)

    # -- location cache ---------------------------------------------------

    def learn(self, node_ids: Iterable[int]) -> None:
        """Insert recently seen node ids into the LRU location cache.

        At steady state most learned ids are already cached and only
        their LRU position moves — which never touches the merged
        table — so the table catch-up is deferred until the first id
        that actually needs inserting.  A receive that learns nothing
        new therefore skips the sync entirely; the table content any
        later reader sees is the same either way (patching is exact
        from whatever version the node last synced at).
        """
        if self._cache_capacity <= 0:
            return
        cache = self._cache
        me = self.id
        synced = False
        for node_id in node_ids:
            if node_id == me:
                continue
            if node_id in cache:
                cache.move_to_end(node_id)
            else:
                if not synced:
                    self._sync()  # table current, so the insert lands
                    synced = True
                cache[node_id] = None
                self._raw_insert(node_id)
        if not synced:
            return  # nothing inserted: the cache cannot have overflowed
        while len(cache) > self._cache_capacity:
            evicted, _ = cache.popitem(last=False)
            if evicted not in self._finger_members:
                self._raw_discard(evicted)

    def learn_batch(self, sequences: Iterable[Iterable[int]]) -> None:
        """Order-exact batched learn: one call per ``(dst, tick)`` bucket.

        Bit-for-bit equivalent to ``for s in sequences: self.learn(s)``
        **within one bucket drain**: ids are visited in the same order,
        the LRU eviction loop runs after each sequence exactly as the
        per-call version does (so the eviction order is identical), and
        the table catch-up is deferred to the first id that actually
        inserts.  The single deferred ``_sync`` is exact because no
        events fire between the sequences of one bucket — the ring
        version cannot change mid-batch, so syncing once at the first
        insert lands the same table state as syncing per sequence.
        Closes the ROADMAP watch item on folding bucket learns.
        """
        if self._cache_capacity <= 0:
            return
        cache = self._cache
        capacity = self._cache_capacity
        me = self.id
        synced = False
        for node_ids in sequences:
            inserted = False
            for node_id in node_ids:
                if node_id == me:
                    continue
                if node_id in cache:
                    cache.move_to_end(node_id)
                else:
                    if not synced:
                        self._sync()  # table current, so the insert lands
                        synced = True
                    inserted = True
                    cache[node_id] = None
                    self._raw_insert(node_id)
            if not inserted:
                continue  # this sequence cannot have overflowed the cache
            while len(cache) > capacity:
                evicted, _ = cache.popitem(last=False)
                if evicted not in self._finger_members:
                    self._raw_discard(evicted)

    def forget(self, node_id: int) -> None:
        """Evict a (discovered-dead) node from the location cache."""
        self._sync()
        if self._cache.pop(node_id, None) is not None or node_id in self._table_members:
            if node_id not in self._finger_members:
                self._raw_discard(node_id)

    def cached_ids(self) -> list[int]:
        """Current location-cache contents (least recent first)."""
        return list(self._cache)

    # -- outbound envelope reuse ------------------------------------------

    def _branch(
        self,
        message: OverlayMessage,
        hops: int,
        path: tuple[int, ...],
        target_keys: frozenset[int],
    ) -> OverlayMessage:
        """An outbound m-cast branch, recycled from the pool if possible."""
        pool = self._msg_pool
        if pool:
            branch = pool.pop()
            branch.kind = message.kind
            branch.payload = message.payload
            branch.request_id = message.request_id
            branch.origin = message.origin
            branch.key = message.key
            branch.target_keys = target_keys
            branch.mode = message.mode
            branch.hops = hops
            branch.path = path
            branch.trace = message.trace
            return branch
        return OverlayMessage(
            kind=message.kind,
            payload=message.payload,
            request_id=message.request_id,
            origin=message.origin,
            key=message.key,
            target_keys=target_keys,
            mode=message.mode,
            hops=hops,
            path=path,
            trace=message.trace,
        )

    def _release(self, message: OverlayMessage) -> None:
        """Return a dead envelope to the pool.

        Only for envelopes this node owns outright: never delivered
        locally (the application may retain delivered messages) and not
        forwarded anywhere.
        """
        pool = self._msg_pool
        if len(pool) < self._POOL_CAP:
            message.payload = None
            message.target_keys = None
            message.path = ()
            pool.append(message)

    # -- routing ----------------------------------------------------------

    def covers(self, key: int) -> bool:
        """True if this node covers ``key``: ``key in (pred, self]``."""
        me = self.id
        predecessor = self.predecessor
        if predecessor == me:  # sole node: covers the whole ring
            return True
        # Inline in_open_closed: per-message hot path.
        return 0 < (key - predecessor) % self._size <= (me - predecessor) % self._size

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver ``message``."""
        # One merged learn: LRU eviction removes the globally oldest
        # entries whenever it runs, so folding origin into the same
        # pass leaves the final cache (and table) identical to the
        # two-call sequence while halving the per-receive overhead.
        self.learn(message.path + (message.origin,))
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            # Direct one-hop message (neighbor sends: state transfer,
            # replication, COLLECT aggregation) — no further routing.
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def receive_batch(self, messages: list[OverlayMessage]) -> None:
        """Bucket entry point: one ``(dst, tick)`` inbox in send order.

        The first message's learn syncs the routing table once; the
        rest of the batch hits the version-equal fast path, so a bucket
        pays one catch-up regardless of its size.

        While membership is stable (no node has ever departed), the
        maximal *hit-only* prefix of the bucket — messages whose entire
        learn sequence is already cached — is hoisted into one
        :meth:`learn_batch` call followed by plain dispatches.  This is
        exact: hit-only learns touch nothing but LRU recency order,
        which routing never reads; dispatches cannot ``forget`` (a
        cached peer cannot be dead while nothing ever departed) or
        unregister this node; and the cache key set is frozen across
        hit-only learns, so a precheck against the keys *before* the
        prefix equals checking each message right before its learn.
        The first message that would insert ends the prefix and takes
        the interleaved path, as does everything after it — a general
        fold of inserting learns is *not* behavior-preserving (an
        eviction between two messages reorders the cache against the
        union-learned equivalent, and the location cache feeds
        routing).  Under churn every message takes the per-message
        loop, which re-checks liveness so a self-removal mid-tick
        drops the remainder with the drain loop's accounting.
        """
        if len(messages) == 1:  # the common bucket is a singleton
            self.receive(messages[0])
            return
        overlay = self._overlay
        start = 0
        if overlay.membership_stable and self._cache_capacity > 0:
            cache = self._cache
            me = self.id
            sequences: list[tuple[int, ...]] = []
            for message in messages:
                sequence = message.path + (message.origin,)
                if all(nid == me or nid in cache for nid in sequence):
                    sequences.append(sequence)
                else:
                    break
            prefix = len(sequences)
            if prefix >= 2:
                self.learn_batch(sequences)  # pure LRU refreshes
                dispatch = self._dispatch
                for index in range(prefix):
                    dispatch(messages[index])
                if prefix == len(messages):
                    return
                start = prefix
        network = overlay.network
        is_alive = network.is_alive
        me = self.id
        receive = self.receive
        for index in range(start, len(messages)):
            if not is_alive(me):
                network.drop_undeliverable(messages[index:])
                return
            receive(messages[index])

    def _dispatch(self, message: OverlayMessage) -> None:
        """Route or deliver one message whose learn already happened.

        Exactly :meth:`receive` minus the learn — kept as a separate
        duplicate of the mode branch so the hot per-message ``receive``
        path stays monomorphic.
        """
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Greedy Chord routing of a unicast message toward its key.

        Forwarded envelopes are reused in place: the overlay hands this
        node exclusive ownership of an in-flight message, so advancing
        ``hops``/``path`` on the same object replaces one allocation
        per hop.
        """
        key = message.key
        assert key is not None, "unicast message without a destination key"
        if self.covers(key):
            self._overlay.do_deliver(self, message)
            return
        next_hop = self._next_hop(key, use_cache=True)
        message.hops += 1
        message.path += (self.id,)
        self._overlay.transmit(self.id, next_hop, message)

    def _next_hop(self, key: int, use_cache: bool) -> int:
        """Closest live node preceding-or-equal to ``key`` that we know.

        Binary-searches the distance-sorted pointer table (fingers,
        plus the location cache when ``use_cache`` is set) for the
        rightmost entry at clockwise distance ``<= distance(self, key)``
        and walks left past dead entries.  Dead cache entries found this
        way are evicted *after* the scan (never while the table is being
        read).  Falls back to the successor when nothing useful is
        known, which always makes progress on the ring.
        """
        overlay = self._overlay
        target_distance = (key - self.id) % self._size
        self._sync()
        if use_cache:
            dists, ids = self._table_dists, self._table_ids
        else:
            dists, ids = self._finger_dists, self._fingers
        is_alive = overlay.is_alive
        best: int | None = None
        dead: list[int] | None = None
        index = bisect_right(dists, target_distance) - 1
        while index >= 0:
            candidate = ids[index]
            if is_alive(candidate):
                best = candidate
                break
            if dead is None:
                dead = [candidate]
            else:
                dead.append(candidate)
            index -= 1
        if dead:
            for node_id in dead:
                self.forget(node_id)
        if best is None:
            return self.successor
        return best

    # -- m-cast (Fig. 4) -------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the m-cast algorithm at the sending node."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """One step of the recursive finger-based multicast.

        Deliver locally if any target key falls in ``(pred, self]``
        (at most one delivery per node, per the paper's guarantee),
        then partition the remaining keys among known pointers: each
        key goes to the closest pointer **strictly preceding** it, or
        to the successor when no pointer precedes it.  Strict
        precedence matters: a key equal to (or covered by) a finger
        node must travel with the chain branch of the preceding
        pointer, otherwise that finger could receive the message both
        directly and through the chain and deliver twice.  Every
        transmission lands directly on a finger, so each is one hop.

        The per-key pointer choice is a binary search over the
        distance-sorted finger list: the closest strictly-preceding
        pointer for a key at distance ``t`` is the last finger with
        distance ``< t``.

        Fan-out reuse: all branches share one path tuple; if this
        envelope was not delivered locally it becomes one of the
        branches, and further branches come from the per-node pool.
        """
        size = self._size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        # Inline in_open_closed(k, pred, me): runs per target key.
        if predecessor == me:  # sole node: every key is ours
            mine = set(targets)
        else:
            span = (me - predecessor) % size
            mine = {k for k in targets if 0 < (k - predecessor) % size <= span}
        if mine:
            self._overlay.do_deliver(self, message)
            rest = targets - mine
        else:
            rest = targets  # nothing delivered: the set is unchanged
        if not rest:
            return
        pointers = self.fingers()
        if not pointers:
            if not mine:
                self._release(message)
            return
        dists = self._finger_dists
        successor = pointers[0]  # fallback that always progresses
        hops = message.hops + 1
        path = message.path + (me,)
        transmit = self._overlay.transmit
        if len(rest) == 1:
            # Single remaining key: one branch, no grouping machinery.
            (key,) = rest
            index = bisect_left(dists, (key - me) % size) - 1
            pointer = pointers[index] if index >= 0 else successor
            if mine:
                branch = self._branch(message, hops, path, rest)
            else:
                branch = message
                branch.hops = hops
                branch.path = path
                branch.target_keys = rest
            transmit(me, pointer, branch)
            return
        groups: dict[int, set[int]] = {}
        for key in rest:
            index = bisect_left(dists, (key - me) % size) - 1
            best = pointers[index] if index >= 0 else successor
            group = groups.get(best)
            if group is None:
                groups[best] = {key}
            else:
                group.add(key)
        # One group means its key set is exactly ``rest`` — reuse that
        # frozenset instead of building an identical one.
        whole = rest if len(groups) == 1 else None
        # The undelivered envelope carries one branch itself; the rest
        # are fresh (or pooled) copies sharing the same path tuple.
        reusable = None if mine else message
        for pointer, keys in groups.items():
            branch_keys = whole if whole is not None else frozenset(keys)
            if reusable is not None:
                branch = reusable
                branch.hops = hops
                branch.path = path
                branch.target_keys = branch_keys
                reusable = None
            else:
                branch = self._branch(message, hops, path, branch_keys)
            transmit(me, pointer, branch)

    # -- conservative sequential range walk (Section 4.3.1 baseline) ------

    def continue_sequential(self, message: OverlayMessage) -> None:
        """One step of the conservative unicast-based range propagation.

        Deliver locally if we cover any target, then route the message
        (with the remaining targets) toward the nearest remaining key
        clockwise.  Matches the paper's "send to k1, each covering node
        forwards to the next key" protocol: same message complexity as
        m-cast but O(log n + N) dilation.  An envelope that was not
        delivered locally is forwarded in place.
        """
        size = self._size
        me = self.id
        targets = message.target_keys or frozenset()
        predecessor = self.predecessor
        # Inline in_open_closed(k, pred, me), as in continue_mcast.
        if predecessor == me:
            mine = set(targets)
        else:
            span = (me - predecessor) % size
            mine = {k for k in targets if 0 < (k - predecessor) % size <= span}
        if mine:
            self._overlay.do_deliver(self, message)
            rest = targets - mine
        else:
            rest = targets  # nothing delivered: the set is unchanged
        if not rest:
            return
        # min() with a key lambda is measurably slower on this path.
        next_key = -1
        best_distance = size
        for k in rest:
            distance = (k - me) % size
            if distance < best_distance:
                best_distance = distance
                next_key = k
        if mine:
            onward = OverlayMessage(
                kind=message.kind,
                payload=message.payload,
                request_id=message.request_id,
                origin=message.origin,
                key=next_key,
                target_keys=rest,
                mode=message.mode,
                hops=message.hops + 1,
                path=message.path + (me,),
                trace=message.trace,
            )
        else:
            onward = message
            onward.hops += 1
            onward.path += (me,)
            onward.target_keys = rest
            onward.key = next_key
        next_hop = self._next_hop(next_key, use_cache=True)
        self._overlay.transmit(me, next_hop, onward)
