"""A single Chord node: pointers, location cache, routing decisions.

A node knows its ring neighbors, its finger table and (optionally) a
bounded LRU *location cache* of other live nodes it has learned about
from message traffic.  Fingers are computed on demand against the
overlay's current membership and memoized per ring version — this
models a converged Chord (stabilization has quiesced), which matches
the paper's measurement setup where all joins complete before the
workload starts.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.overlay.api import CastMode, OverlayMessage

if TYPE_CHECKING:
    from repro.overlay.chord.overlay import ChordOverlay


class ChordNode:
    """One overlay node with Chord routing state.

    Args:
        node_id: This node's position on the identifier circle.
        overlay: The owning :class:`~repro.overlay.chord.ChordOverlay`.
        cache_capacity: Maximum entries in the location cache; 0
            disables caching entirely.
    """

    def __init__(
        self, node_id: int, overlay: "ChordOverlay", cache_capacity: int = 128
    ) -> None:
        self.id = node_id
        self._overlay = overlay
        self._cache_capacity = cache_capacity
        self._cache: OrderedDict[int, None] = OrderedDict()
        self._fingers: list[int] = []
        self._finger_version = -1

    # -- pointers -------------------------------------------------------

    @property
    def successor(self) -> int:
        """Id of the next live node clockwise on the ring."""
        return self._overlay.successor_of(self.id)

    @property
    def predecessor(self) -> int:
        """Id of the previous live node on the ring."""
        return self._overlay.predecessor_of(self.id)

    def fingers(self) -> list[int]:
        """Distinct live finger nodes, in clockwise order from this node.

        The first entry is always the successor (Chord's first finger).
        Memoized per overlay ring version.
        """
        version = self._overlay.ring_version
        if self._finger_version != version:
            self._fingers = self._overlay.compute_fingers(self.id)
            self._finger_version = version
        return self._fingers

    # -- location cache ---------------------------------------------------

    def learn(self, node_ids: Iterable[int]) -> None:
        """Insert recently seen node ids into the LRU location cache."""
        if self._cache_capacity <= 0:
            return
        for node_id in node_ids:
            if node_id == self.id:
                continue
            self._cache.pop(node_id, None)
            self._cache[node_id] = None
        while len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)

    def forget(self, node_id: int) -> None:
        """Evict a (discovered-dead) node from the location cache."""
        self._cache.pop(node_id, None)

    def cached_ids(self) -> list[int]:
        """Current location-cache contents (least recent first)."""
        return list(self._cache)

    # -- routing ----------------------------------------------------------

    def covers(self, key: int) -> bool:
        """True if this node covers ``key``: ``key in (pred, self]``."""
        return self._overlay.keyspace.in_open_closed(key, self.predecessor, self.id)

    def receive(self, message: OverlayMessage) -> None:
        """Network upcall: continue routing or deliver ``message``."""
        self.learn(message.path)
        self.learn((message.origin,))
        if message.mode is CastMode.MCAST:
            self.continue_mcast(message)
        elif message.mode is CastMode.SEQUENTIAL:
            self.continue_sequential(message)
        elif message.key is None:
            # Direct one-hop message (neighbor sends: state transfer,
            # replication, COLLECT aggregation) — no further routing.
            self._overlay.do_deliver(self, message)
        else:
            self.route_unicast(message)

    def route_unicast(self, message: OverlayMessage) -> None:
        """Greedy Chord routing of a unicast message toward its key."""
        key = message.key
        assert key is not None, "unicast message without a destination key"
        if self.covers(key):
            self._overlay.do_deliver(self, message)
            return
        next_hop = self._next_hop(key, use_cache=True)
        self._overlay.transmit(self.id, next_hop, message.forwarded_copy(self.id))

    def _next_hop(self, key: int, use_cache: bool) -> int:
        """Closest live node preceding-or-equal to ``key`` that we know.

        Considers fingers (which include the successor) and, when
        ``use_cache`` is set, the location cache.  Falls back to the
        successor when nothing useful is known, which always makes
        progress on the ring.
        """
        keyspace = self._overlay.keyspace
        target_distance = keyspace.distance(self.id, key)
        best: int | None = None
        best_distance = 0
        candidates: list[int] = list(self.fingers())
        if use_cache:
            candidates.extend(self._cache)
        for candidate in candidates:
            distance = keyspace.distance(self.id, candidate)
            if 0 < distance <= target_distance and distance > best_distance:
                if not self._overlay.is_alive(candidate):
                    self.forget(candidate)
                    continue
                best = candidate
                best_distance = distance
        if best is None or best == self.id:
            return self.successor
        return best

    # -- m-cast (Fig. 4) -------------------------------------------------

    def start_mcast(self, message: OverlayMessage) -> None:
        """Entry point of the m-cast algorithm at the sending node."""
        self.continue_mcast(message)

    def continue_mcast(self, message: OverlayMessage) -> None:
        """One step of the recursive finger-based multicast.

        Deliver locally if any target key falls in ``(pred, self]``
        (at most one delivery per node, per the paper's guarantee),
        then partition the remaining keys among known pointers: each
        key goes to the closest pointer **strictly preceding** it, or
        to the successor when no pointer precedes it.  Strict
        precedence matters: a key equal to (or covered by) a finger
        node must travel with the chain branch of the preceding
        pointer, otherwise that finger could receive the message both
        directly and through the chain and deliver twice.  Every
        transmission lands directly on a finger, so each is one hop.
        """
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = targets - mine
        if not rest:
            return
        pointers = [p for p in self.fingers() if p != self.id]
        if not pointers:
            return
        groups: dict[int, set[int]] = {}
        for key in rest:
            target_distance = keyspace.distance(self.id, key)
            best = pointers[0]  # successor: fallback that always progresses
            best_distance = 0
            for pointer in pointers:
                distance = keyspace.distance(self.id, pointer)
                if 0 < distance < target_distance and distance > best_distance:
                    best = pointer
                    best_distance = distance
            groups.setdefault(best, set()).add(key)
        for pointer, keys in groups.items():
            branch = message.forwarded_copy(self.id, target_keys=frozenset(keys))
            self._overlay.transmit(self.id, pointer, branch)

    # -- conservative sequential range walk (Section 4.3.1 baseline) ------

    def continue_sequential(self, message: OverlayMessage) -> None:
        """One step of the conservative unicast-based range propagation.

        Deliver locally if we cover any target, then route the message
        (with the remaining targets) toward the nearest remaining key
        clockwise.  Matches the paper's "send to k1, each covering node
        forwards to the next key" protocol: same message complexity as
        m-cast but O(log n + N) dilation.
        """
        keyspace = self._overlay.keyspace
        targets = message.target_keys or frozenset()
        mine = {k for k in targets if self.covers(k)}
        if mine:
            self._overlay.do_deliver(self, message)
        rest = frozenset(targets - mine)
        if not rest:
            return
        next_key = min(rest, key=lambda k: keyspace.distance(self.id, k))
        onward = dataclasses.replace(
            message.forwarded_copy(self.id, target_keys=rest), key=next_key
        )
        next_hop = self._next_hop(next_key, use_cache=True)
        self._overlay.transmit(self.id, next_hop, onward)
