"""The Chord structured overlay (Stoica et al., SIGCOMM 2001).

This is the reference overlay of the paper (Section 3.1.1), implemented
as a discrete-event simulation:

- consistent hashing onto an ``m``-bit identifier circle;
- successor/predecessor pointers and on-demand finger tables
  (``i``-th finger of ``n`` = successor of ``(n + 2**(i-1)) mod 2**m``);
- greedy closest-preceding-finger unicast routing with an optional
  **location cache** (the "finger caching mechanism" the paper credits
  for the ~2.5 average hops at n=500, Section 5.1);
- the ``m-cast`` one-to-many primitive of Section 4.3.1 (Fig. 4), plus
  the two unicast-based baselines analyzed there (the *conservative*
  sequential walk and the *aggressive* per-key parallel sends);
- join/leave/crash with application state-transfer hooks (Section 4.1).
"""

from repro.overlay.chord.node import ChordNode
from repro.overlay.chord.overlay import ChordOverlay
from repro.overlay.chord.protocol import ProtocolChordNode, ProtocolChordOverlay

__all__ = [
    "ChordNode",
    "ChordOverlay",
    "ProtocolChordNode",
    "ProtocolChordOverlay",
]
