"""Key-space and ring-interval arithmetic.

Structured overlays route by *logical keys* drawn from a space ``K`` of
``m``-bit identifiers ordered on a circle modulo ``2**m`` (the Chord
ring, Section 3.1.1 of the paper).  This module centralizes all modular
arithmetic on that circle: clockwise distance, circular interval
membership, and the SHA-1 consistent hash used to place nodes.

The paper's evaluation uses ``m = 13`` (a key space of size ``2**13``).
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class KeySpace:
    """An ``m``-bit circular identifier space.

    Attributes:
        bits: Number of bits ``m``; keys are integers in ``[0, 2**m)``.
    """

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 160:
            raise ConfigurationError(
                f"key space bits must be in [1, 160], got {self.bits}"
            )

    @property
    def size(self) -> int:
        """Number of distinct keys, ``2**bits``."""
        return 1 << self.bits

    def contains(self, key: int) -> bool:
        """True if ``key`` is a valid identifier in this space."""
        return 0 <= key < self.size

    def validate(self, key: int) -> int:
        """Return ``key`` unchanged, raising if it is out of range."""
        if not self.contains(key):
            raise ConfigurationError(
                f"key {key} outside key space [0, {self.size})"
            )
        return key

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer onto the ring (mod ``2**bits``)."""
        return value % self.size

    def hash_name(self, name: str) -> int:
        """Consistent hash of an arbitrary string onto the ring.

        Uses SHA-1 as in Chord, truncated to ``bits`` bits.
        """
        digest = hashlib.sha1(name.encode()).digest()
        return int.from_bytes(digest, "big") % self.size

    def distance(self, src: int, dst: int) -> int:
        """Clockwise distance from ``src`` to ``dst`` on the ring.

        ``distance(a, a) == 0``; otherwise the number of unit steps
        clockwise (in increasing-id direction) from ``src`` to ``dst``.
        """
        return (dst - src) % self.size

    def in_open_closed(self, key: int, left: int, right: int) -> bool:
        """Circular membership test ``key in (left, right]``.

        This is the interval form Chord uses for successor coverage: the
        node with id ``right`` covers exactly the keys in
        ``(predecessor, right]``.  When ``left == right`` the interval is
        the whole ring (every key except none), matching a 1-node ring
        where the single node covers everything.
        """
        if left == right:
            return True
        return self.distance(left, key) <= self.distance(left, right) and key != left

    def in_closed_open(self, key: int, left: int, right: int) -> bool:
        """Circular membership test ``key in [left, right)``."""
        if left == right:
            return True
        return self.distance(left, key) < self.distance(left, right)

    def in_open_open(self, key: int, left: int, right: int) -> bool:
        """Circular membership test ``key in (left, right)``.

        When ``left == right`` the interval is the whole ring minus the
        endpoint (Chord's convention for a single-node ring).
        """
        if left == right:
            return key != left
        return 0 < self.distance(left, key) < self.distance(left, right)

    def in_closed_closed(self, key: int, left: int, right: int) -> bool:
        """Circular membership test ``key in [left, right]``."""
        return key == left or self.in_open_closed(key, left, right)

    def finger_start(self, node_id: int, index: int) -> int:
        """Start of the ``index``-th finger interval of ``node_id``.

        Chord defines the *i*-th finger of node *n* as the successor of
        ``(n + 2**(i-1)) mod 2**m`` for ``i`` in ``[1, m]``.  ``index``
        here is 1-based to match the paper.
        """
        if not 1 <= index <= self.bits:
            raise ConfigurationError(
                f"finger index must be in [1, {self.bits}], got {index}"
            )
        return self.wrap(node_id + (1 << (index - 1)))

    def keys_in_range(self, left: int, right: int) -> list[int]:
        """Enumerate the keys of the circular closed interval ``[left, right]``.

        Only intended for small ranges (tests, discretized mappings).
        """
        span = self.distance(left, right)
        return [self.wrap(left + offset) for offset in range(span + 1)]
