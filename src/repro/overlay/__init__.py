"""Structured overlay networks and the message-passing substrate.

Subpackages:

- :mod:`repro.overlay.ids` -- key-space / ring-interval arithmetic.
- :mod:`repro.overlay.network` -- the simulated point-to-point network
  with per-hop latency and per-message-kind accounting.
- :mod:`repro.overlay.api` -- the overlay interface the pub/sub layer
  programs against (``send``, ``m_cast``, ``deliver``, neighbors).
- :mod:`repro.overlay.chord` -- the Chord protocol (Stoica et al.,
  SIGCOMM 2001) as used by the paper, extended with the ``m-cast``
  one-to-many primitive of Section 4.3.1.
- :mod:`repro.overlay.pastry` -- a Pastry-style prefix-routing overlay
  demonstrating that the pub/sub layer is overlay-portable (the paper's
  footnote 1).
"""

from repro.overlay.api import DeliverFn, MessageKind, OverlayMessage
from repro.overlay.ids import KeySpace
from repro.overlay.network import FixedDelay, Network, UniformDelay

__all__ = [
    "DeliverFn",
    "MessageKind",
    "OverlayMessage",
    "KeySpace",
    "FixedDelay",
    "Network",
    "UniformDelay",
]
