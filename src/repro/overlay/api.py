"""The overlay-network interface the pub/sub layer programs against.

Section 3.1 of the paper: virtually all structured overlays expose
``send(m, k)``, ``join()``, ``leave()`` and a ``deliver(m)`` upcall.
Section 4.3.1 extends this interface with ``m-cast(M, K)``, a native
one-to-many primitive.  Section 4.1 additionally relies on each overlay
exposing *some* proprietary way to reach ring neighbors (for state
transfer on join/leave and for the notification-collecting chain).

This module defines those primitives as abstract types so that the
CB-pub/sub layer (:mod:`repro.core`) is portable across overlays: the
test suite exercises it over :mod:`repro.overlay.chord`,
:mod:`repro.overlay.pastry` and :mod:`repro.overlay.can`.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import itertools
from typing import Any, Protocol

from repro.overlay.ids import KeySpace


class MessageKind(enum.Enum):
    """Classification of one-hop messages for the paper's accounting.

    The evaluation (Section 5) reports one-hop message counts broken
    down by request type: subscriptions, publications and notifications.
    ``CONTROL`` covers overlay maintenance (join/stabilize/state
    transfer) and ``COLLECT`` the neighbor-to-neighbor notification
    aggregation traffic of Section 4.3.2, which the harness reports as
    notification traffic.
    """

    SUBSCRIPTION = "subscription"
    UNSUBSCRIPTION = "unsubscription"
    PUBLICATION = "publication"
    NOTIFICATION = "notification"
    COLLECT = "collect"
    CONTROL = "control"


class CastMode(enum.Enum):
    """How a message is being propagated to its target key(s).

    ``MCAST`` is the native one-to-many primitive of Section 4.3.1;
    ``SEQUENTIAL`` is the paper's *conservative* unicast-based range
    propagation (walk the range key by key); plain ``UNICAST`` per key
    is the *aggressive* baseline.
    """

    UNICAST = "unicast"
    MCAST = "mcast"
    SEQUENTIAL = "sequential"


_request_counter = itertools.count(1)


def next_request_id() -> int:
    """Allocate a fresh id grouping the one-hop messages of one request."""
    return next(_request_counter)


@dataclasses.dataclass(slots=True)
class OverlayMessage:
    """An application message routed through the overlay.

    Attributes:
        kind: Accounting class of the message (see :class:`MessageKind`).
        payload: Opaque application payload (the pub/sub layer's data).
        request_id: Groups all one-hop messages belonging to one logical
            request (one ``sub()``, ``pub()`` or notification batch), so
            the harness can compute hops **per request** as in Fig. 5.
        origin: Overlay id of the node that initiated the request.
        key: Unicast destination key (``send``); None for multicast.
        target_keys: The piggybacked target-key set ``M.K`` used by the
            ``m-cast`` algorithm of Fig. 4; None for unicast.
        hops: One-hop transmissions this copy of the message has made.
        path: Node ids this copy traversed (used for location caching).
        trace: Telemetry span id of the hop that produced this copy
            (the request's root span before the first transmission);
            0 when tracing is disabled.  The network overwrites it on
            every transmit, so the span graph records causal parentage
            even through in-place envelope reuse.
    """

    kind: MessageKind
    payload: Any
    request_id: int
    origin: int
    key: int | None = None
    target_keys: frozenset[int] | None = None
    mode: CastMode = CastMode.UNICAST
    hops: int = 0
    path: tuple[int, ...] = ()
    trace: int = 0

    def forwarded_copy(self, via: int, target_keys: frozenset[int] | None = None) -> "OverlayMessage":
        """A copy of this message as forwarded through node ``via``.

        ``m-cast`` splits the target set across fingers; each branch
        carries its own subset, hop count and path.

        Ownership note: routing layers may instead forward an envelope
        *in place* (mutating ``hops``/``path``) when they hold the only
        reference — i.e. the message arrived from the network and was
        **not** delivered locally.  An envelope that reached the
        application through the deliver upcall must never be mutated or
        reused afterwards: the application (or a test harness) may have
        retained it.
        """
        # Direct construction: dataclasses.replace pays dict-merge
        # overhead, and this runs once per hop/branch.
        return OverlayMessage(
            kind=self.kind,
            payload=self.payload,
            request_id=self.request_id,
            origin=self.origin,
            key=self.key,
            target_keys=self.target_keys if target_keys is None else target_keys,
            mode=self.mode,
            hops=self.hops + 1,
            path=self.path + (via,),
            trace=self.trace,
        )


class DeliverFn(Protocol):
    """Application upcall invoked when the overlay delivers a message.

    Args:
        node_id: The overlay node the message was delivered at.
        message: The delivered message.
    """

    def __call__(self, node_id: int, message: OverlayMessage) -> None: ...


class NeighborSide(enum.Enum):
    """Ring direction for neighbor-to-neighbor sends (Section 4.3.2)."""

    SUCCESSOR = "successor"
    PREDECESSOR = "predecessor"


class OverlayNetwork(abc.ABC):
    """A structured overlay: logical-key routing over a set of nodes.

    Concrete implementations (Chord, Pastry) maintain the KN-mapping and
    route messages to the node covering each key.  The pub/sub layer
    only ever talks to this interface.
    """

    def __init__(self, keyspace: KeySpace) -> None:
        self._keyspace = keyspace
        self._deliver: DeliverFn | None = None
        self._state_transfer: "StateTransferHook | None" = None

    @property
    def keyspace(self) -> KeySpace:
        """The logical key space of this overlay."""
        return self._keyspace

    def set_deliver(self, deliver: DeliverFn) -> None:
        """Register the application's delivery upcall."""
        self._deliver = deliver

    def set_state_transfer(self, hook: "StateTransferHook | None") -> None:
        """Register the application's churn state-transfer callback."""
        self._state_transfer = hook

    def _deliver_upcall(self, node_id: int, message: OverlayMessage) -> None:
        if self._deliver is not None:
            self._deliver(node_id, message)

    # -- membership ---------------------------------------------------

    @abc.abstractmethod
    def node_ids(self) -> list[int]:
        """Ids of all live nodes, in ring order."""

    def app_node_ids(self) -> list[int]:
        """Ids the *application layer* should attach pub/sub state to.

        Equal to :meth:`node_ids` in a serial overlay.  A sharded
        overlay reports full ring membership through ``node_ids`` (every
        worker knows the whole KN-mapping) but materializes node objects
        and application state only for the ids its shard owns; those
        local ids are what this returns.
        """
        return self.node_ids()

    @abc.abstractmethod
    def join(self, node_id: int) -> None:
        """Add a node with the given id to the overlay."""

    @abc.abstractmethod
    def leave(self, node_id: int) -> None:
        """Gracefully remove a node from the overlay."""

    @abc.abstractmethod
    def crash(self, node_id: int) -> None:
        """Abruptly remove a node (no state handover)."""

    # -- key coverage -------------------------------------------------

    @abc.abstractmethod
    def owner_of(self, key: int) -> int:
        """Id of the live node currently covering ``key`` (KN-mapping).

        Exposed for verification and metrics; the pub/sub layer itself
        never calls this (the KN-mapping is hidden from applications,
        Section 3.1).
        """

    def covers(self, node_id: int, key: int) -> bool:
        """True if ``node_id`` is the node currently covering ``key``.

        A node may legitimately ask about its *own* coverage (it knows
        its portion of the key space); the pub/sub layer uses this to
        decide which rendezvous keys of a delivered message it hosts.
        """
        return self.owner_of(key) == node_id

    @abc.abstractmethod
    def neighbor_of(self, node_id: int, side: NeighborSide) -> int:
        """Id of the ring neighbor of ``node_id`` on the given side."""

    def heir_of(self, node_id: int) -> int:
        """The node that inherits ``node_id``'s keys if it disappears.

        Ring overlays hand a departed node's interval to its successor;
        CAN's zone-absorption rule differs.  The pub/sub layer promotes
        replicas at the heir after a crash (Section 4.1).
        """
        return self.neighbor_of(node_id, NeighborSide.SUCCESSOR)

    # -- communication ------------------------------------------------

    @abc.abstractmethod
    def send(self, source_id: int, key: int, message: OverlayMessage) -> None:
        """Route ``message`` from ``source_id`` to the node covering ``key``."""

    @abc.abstractmethod
    def mcast(
        self, source_id: int, keys: frozenset[int], message: OverlayMessage
    ) -> None:
        """Deliver ``message`` once to every node covering a key in ``keys``."""

    @abc.abstractmethod
    def sequential_cast(
        self, source_id: int, keys: frozenset[int], message: OverlayMessage
    ) -> None:
        """Conservative one-to-many: walk the targets key by key
        (Section 4.3.1's unicast-based baseline)."""

    @abc.abstractmethod
    def send_to_neighbor(
        self, source_id: int, side: NeighborSide, message: OverlayMessage
    ) -> None:
        """One-hop send to a ring neighbor (state transfer / collecting)."""

    @abc.abstractmethod
    def transmit(self, src: int, dst: int, message: OverlayMessage) -> None:
        """One-hop transmission between two specific nodes.

        Intended for overlay-internal use and for the churn state
        transfer between already-acquainted neighbors; applications
        address by key, never by node.
        """

    @property
    @abc.abstractmethod
    def recorder(self):
        """The :class:`~repro.metrics.recorder.MetricsRecorder` of this run."""


class StateTransferHook(Protocol):
    """Callback letting the application move per-key state on churn.

    Section 4.1: when a node joins, subscriptions mapping to its new
    partition must move to it; when a node leaves, its stored state is
    handed to the ring neighbor inheriting its interval.

    Args:
        from_node: Node currently holding the state (or the leaver).
        to_node: Node that should now hold it (or the joiner).
        key_range: The circular key interval ``(left, right]`` changing
            ownership.
    """

    def __call__(
        self, from_node: int, to_node: int, key_range: tuple[int, int]
    ) -> None: ...
