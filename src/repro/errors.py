"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Invalid experiment, workload or component configuration."""


class OverlayError(ReproError):
    """Overlay-network protocol violations (unknown node, empty ring, ...)."""


class MappingError(ReproError):
    """Errors raised by the attribute-to-key (ak) mapping layer."""


class DataModelError(ReproError):
    """Malformed events or subscriptions."""
