"""Telemetry exporters: JSONL and Chrome trace-event (Perfetto) JSON.

The JSONL format is line-per-record with a ``type`` discriminator:

- ``meta``       — format name and version (first line);
- ``span``       — one hop or request root (see
  :class:`~repro.telemetry.tracing.Span`; times in simulated seconds);
- ``delivery``   — one application delivery ``{span, request, node, t}``;
- ``sample``     — one periodic registry sample ``{t, metrics}``;
- ``counter`` / ``gauge`` / ``histogram`` — final instrument values;
- ``violation`` / ``probe`` — audit findings and structural probe
  records (version 2+, present only when the run was audited; see
  :mod:`repro.audit.records`);
- ``load`` / ``skew`` / ``overload`` — the load observatory's final
  per-node/per-key load records, sim-time skew samples, and windowed
  overload-detector events (version 3+, present only when load
  metering ran; see :mod:`repro.telemetry.load`).  Version 4 adds a
  ``scope: "shard"`` overload variant for coordinator-detected shard
  load imbalance;
- ``profile`` — the shard execution profiler's records (version 4+,
  present only when a sharded run was profiled; see
  :mod:`repro.telemetry.profile`), discriminated by ``scope``: one
  ``run`` critical-path summary, one ``advice`` record (the rebalance
  advisor's suggested cut points), one ``shard`` record per shard, and
  one ``round`` record per barrier round.

The Chrome trace is a ``{"traceEvents": [...]}`` JSON that opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:
each hop span becomes a complete ("X") slice on its *source* node's
track with flow arrows ("s"/"f") stitching parent to child — so a
publication's m-cast tree renders as a cascade of arrows across node
tracks — and periodic samples become counter ("C") tracks.  Simulated
seconds map to trace microseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.telemetry.tracing import Delivery, Span

if TYPE_CHECKING:
    from repro.telemetry import Telemetry

FORMAT_NAME = "repro-telemetry"
#: Version 2 added the ``p99`` histogram field and the ``violation`` /
#: ``probe`` record types emitted by audited runs.  Version 3 added
#: the load observatory's ``load`` / ``skew`` / ``overload`` record
#: types (see :mod:`repro.telemetry.load`).  Version 4 added the shard
#: execution profiler's ``profile`` records and the shard-scope
#: ``overload`` variant (see :mod:`repro.telemetry.profile`).  Loaders
#: accept every earlier version (the newer record types are simply
#: absent).
FORMAT_VERSION = 4


# -- JSONL -------------------------------------------------------------------


def write_jsonl(telemetry: "Telemetry", path: str | Path) -> int:
    """Export a run's telemetry as JSONL; returns the record count."""
    records: list[dict] = [
        {"type": "meta", "format": FORMAT_NAME, "version": FORMAT_VERSION}
    ]
    for span in telemetry.tracer.spans:
        record = span.as_dict()
        record["type"] = "span"
        records.append(record)
    for span_id, request_id, node_id, t in telemetry.tracer.deliveries:
        records.append(
            {"type": "delivery", "span": span_id, "request": request_id,
             "node": node_id, "t": t}
        )
    for t, metrics in telemetry.samples:
        records.append({"type": "sample", "t": t, "metrics": metrics})
    registry = telemetry.registry
    for counter in registry.counters():
        records.append(
            {"type": "counter", "name": counter.name,
             "labels": dict(counter.labels), "value": counter.value}
        )
    for gauge in registry.gauges():
        records.append(
            {"type": "gauge", "name": gauge.name,
             "labels": dict(gauge.labels), "value": gauge.read()}
        )
    for histogram in registry.histograms():
        summary = histogram.summary()
        records.append(
            {"type": "histogram", "name": histogram.name,
             "labels": dict(histogram.labels), "count": summary.count,
             "mean": summary.mean, "p50": summary.p50, "p95": summary.p95,
             "p99": summary.p99, "max": summary.maximum}
        )
    audit = getattr(telemetry, "audit", None)
    if audit is not None:
        for violation in audit.violations:
            records.append(violation.as_dict())
        for probe in audit.probes:
            records.append(probe.as_dict())
    load = getattr(telemetry, "load", None)
    if load is not None:
        records.extend(load.load_records())
        records.extend(load.skew_records())
        records.extend(load.overload_records())
    profile = getattr(telemetry, "profile", None)
    if profile is not None:
        records.extend(profile.profile_records())
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
    return len(records)


class TelemetryDump:
    """A loaded JSONL export, grouped by record type."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self.spans: list[Span] = []
        self.deliveries: list[Delivery] = []
        self.samples: list[tuple[float, dict[str, float]]] = []
        self.counters: list[dict] = []
        self.gauges: list[dict] = []
        self.histograms: list[dict] = []
        self.violations: list = []
        self.probes: list = []
        #: Load-observatory records (format v3+), kept as plain dicts:
        #: final per-entity ``load`` records, sim-time ``skew`` samples,
        #: and windowed ``overload`` detector events.
        self.loads: list[dict] = []
        self.skews: list[dict] = []
        self.overloads: list[dict] = []
        #: Shard execution profiler records (format v4+), plain dicts
        #: discriminated by ``scope`` (run / advice / shard / round).
        self.profiles: list[dict] = []


def load_jsonl(path: str | Path) -> TelemetryDump:
    """Parse a JSONL export back into spans/deliveries/metrics."""
    dump = TelemetryDump()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                dump.meta = record
            elif kind == "span":
                dump.spans.append(Span.from_dict(record))
            elif kind == "delivery":
                dump.deliveries.append(
                    (record["span"], record["request"], record["node"],
                     record["t"])
                )
            elif kind == "sample":
                dump.samples.append((record["t"], record["metrics"]))
            elif kind == "counter":
                dump.counters.append(record)
            elif kind == "gauge":
                dump.gauges.append(record)
            elif kind == "histogram":
                dump.histograms.append(record)
            elif kind == "violation":
                # Lazy import: the audit package imports telemetry.
                from repro.audit.records import Violation

                dump.violations.append(Violation.from_dict(record))
            elif kind == "probe":
                from repro.audit.records import ProbeRecord

                dump.probes.append(ProbeRecord.from_dict(record))
            elif kind == "load":
                dump.loads.append(record)
            elif kind == "skew":
                dump.skews.append(record)
            elif kind == "overload":
                dump.overloads.append(record)
            elif kind == "profile":
                dump.profiles.append(record)
    return dump


# -- Chrome trace-event JSON (Perfetto) --------------------------------------

#: Synthetic process id for the whole simulation in the trace view.
_PID = 1

#: Minimum slice duration in trace microseconds (zero-length slices are
#: invisible in Perfetto; root spans and same-tick hops get this floor).
_MIN_DUR_US = 1.0


def _us(t: float) -> float:
    return t * 1e6


def to_chrome_trace(telemetry: "Telemetry") -> dict:
    """Build the Chrome trace-event representation of a traced run."""
    events: list[dict] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": "repro simulation"}},
    ]
    named_tracks: set[int] = set()

    def ensure_track(node_id: int) -> None:
        if node_id in named_tracks:
            return
        named_tracks.add(node_id)
        events.append(
            {"ph": "M", "pid": _PID, "tid": node_id, "name": "thread_name",
             "args": {"name": f"node {node_id}"}}
        )

    spans = telemetry.tracer.spans
    by_id = {span.id: span for span in spans}
    for span in spans:
        ensure_track(span.src)
        end = span.t_recv if span.t_recv is not None else span.t_send
        duration = max(_us(end) - _us(span.t_send), _MIN_DUR_US)
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": span.src,
                "ts": _us(span.t_send),
                "dur": duration,
                "name": f"{span.kind} #{span.request_id}",
                "cat": span.kind,
                "args": {
                    "span": span.id,
                    "parent": span.parent,
                    "src": span.src,
                    "dst": span.dst,
                    "status": span.status,
                },
            }
        )
        parent = by_id.get(span.parent)
        if parent is None:
            continue
        # Flow arrow parent -> child; binding point "e" attaches the
        # finish to the enclosing slice so Perfetto draws the edge.
        flow = {"pid": _PID, "cat": span.kind, "name": "hop", "id": span.id}
        events.append(
            {**flow, "ph": "s", "tid": parent.src, "ts": _us(parent.t_send)}
        )
        events.append(
            {**flow, "ph": "f", "bp": "e", "tid": span.src,
             "ts": _us(span.t_send)}
        )
    for span_id, request_id, node_id, t in telemetry.tracer.deliveries:
        ensure_track(node_id)
        span = by_id.get(span_id)
        events.append(
            {
                "ph": "i",
                "pid": _PID,
                "tid": node_id,
                "ts": _us(t),
                "name": f"deliver {span.kind if span else '?'} #{request_id}",
                "s": "t",
                "args": {"span": span_id, "request": request_id},
            }
        )
    for t, metrics in telemetry.samples:
        for name, value in metrics.items():
            events.append(
                {"ph": "C", "pid": _PID, "ts": _us(t), "name": name,
                 "args": {"value": value}}
            )
    # Profiled sharded runs add a second process: wall-clock busy/stall
    # tracks per shard plus coordinator counter tracks (see
    # ShardProfiler.chrome_events).  The axes differ deliberately —
    # pid 1 is simulated time, pid 2 is profiled wall-clock.
    profile = getattr(telemetry, "profile", None)
    if profile is not None:
        events.extend(profile.chrome_events())
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(telemetry: "Telemetry", path: str | Path) -> int:
    """Write the Perfetto-openable trace JSON; returns the event count."""
    trace = to_chrome_trace(telemetry)
    Path(path).write_text(json.dumps(trace, separators=(",", ":")) + "\n")
    return len(trace["traceEvents"])
