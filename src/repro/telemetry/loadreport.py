"""Load-skew report: JSON artifact + terminal heatmap from an export.

``repro report <trace.jsonl>`` feeds a format-v3 telemetry export
(:func:`repro.telemetry.export.load_jsonl`) through
:func:`build_load_report` and prints :func:`render_load_report` — a
bar heatmap of the hottest overlay nodes and rendezvous keys with
their load shares, the distribution-level skew statistics (Gini,
p99/mean), and the windowed overload events.  The JSON artifact
(``--json``) carries the same numbers for dashboards and CI.

Loads mirror :class:`~repro.telemetry.load.LoadMeter`'s aggregation:
node load = forwarded + delivered messages; key load = subscriptions
stored + publication deliveries under the key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.skew import skew_summary

if TYPE_CHECKING:
    from repro.telemetry.export import TelemetryDump

#: Width of the heatmap bars in terminal cells.
_BAR_WIDTH = 32

#: Entities shown per scope by default.
_DEFAULT_TOP = 10


def _scope_section(
    records: list[dict], loads: dict[int, float], top: int, fields: list[str]
) -> dict:
    """One scope's (node/key) report section from its load records."""
    by_id = {record["id"]: record for record in records}
    summary = skew_summary(loads, top)
    entries = []
    for entity, load in summary.top:
        record = by_id.get(entity, {})
        entry = {
            "id": entity,
            "load": load,
            "share": round(load / summary.total, 6) if summary.total else 0.0,
        }
        for field in fields:
            entry[field] = record.get(field, 0)
        entries.append(entry)
    return {
        "count": summary.count,
        "total_load": summary.total,
        "gini": round(summary.gini, 6),
        "p99_mean_ratio": round(summary.p99_mean_ratio, 6),
        "top": entries,
    }


def build_load_report(dump: "TelemetryDump", top: int = _DEFAULT_TOP) -> dict:
    """Build the JSON-able load report from a loaded export.

    Returns a dict with ``nodes`` / ``keys`` sections (counts, total
    load, Gini, p99/mean, top-k entries with load shares), a
    ``matching`` section (matcher-work skew over the active rendezvous
    nodes plus the covering-index gauges — roots, collapsed installs,
    promotions), the skew sample count, and an ``overload`` section
    summarizing detector events.  All numbers derive from the export's
    final ``load`` records, so the report is exact, not sampled.
    """
    node_records = [r for r in dump.loads if r.get("scope") == "node"]
    key_records = [r for r in dump.loads if r.get("scope") == "key"]
    node_loads = {
        r["id"]: float(r.get("forwarded", 0) + r.get("delivered", 0))
        for r in node_records
    }
    key_loads = {
        r["id"]: float(r.get("subscriptions", 0) + r.get("publications", 0))
        for r in key_records
    }
    # Matcher-work distribution over *active* rendezvous nodes — the
    # load the covering index sheds (candidates + verified per node).
    match_loads = {
        r["id"]: float(r.get("match_candidates", 0) + r.get("match_verified", 0))
        for r in node_records
        if r.get("match_candidates", 0) or r.get("match_verified", 0)
    }
    match_summary = skew_summary(match_loads, 1)
    hottest_match = match_summary.top[0] if match_summary.top else None
    # Shard-scope imbalance records (format v4+) carry no "node" key;
    # split them out so the node-overload section stays node-only.
    node_overloads = [
        record for record in dump.overloads
        if record.get("scope", "node") != "shard"
    ]
    shard_overloads = [
        record for record in dump.overloads if record.get("scope") == "shard"
    ]
    overloaded = sorted({record["node"] for record in node_overloads})
    worst = max(
        node_overloads, key=lambda record: record.get("ratio", 0.0),
        default=None,
    )
    worst_shard = max(
        shard_overloads, key=lambda record: record.get("ratio", 0.0),
        default=None,
    )
    return {
        "format_version": dump.meta.get("version"),
        "nodes": _scope_section(
            node_records, node_loads, top,
            ["forwarded", "delivered", "subscriptions", "bucket_max_depth",
             "match_candidates", "match_matched"],
        ),
        "keys": _scope_section(
            key_records, key_loads, top, ["subscriptions", "publications"],
        ),
        "matching": {
            "active_nodes": match_summary.count,
            "total_work": match_summary.total,
            "work_gini": round(match_summary.gini, 6),
            "hottest_node": hottest_match[0] if hottest_match else None,
            "hottest_share": (
                round(hottest_match[1] / match_summary.total, 6)
                if hottest_match and match_summary.total
                else 0.0
            ),
            "covering": {
                "roots": sum(r.get("cover_roots", 0) for r in node_records),
                "collapsed": sum(
                    r.get("cover_collapsed", 0) for r in node_records
                ),
                "promotions": sum(
                    r.get("cover_promotions", 0) for r in node_records
                ),
            },
        },
        "skew_samples": len(dump.skews),
        "overload": {
            "events": len(node_overloads),
            "nodes": overloaded,
            "worst": dict(worst) if worst else None,
            "shard_imbalance": dict(worst_shard) if worst_shard else None,
        },
    }


def _bars(section: dict, label: str, detail) -> list[str]:
    """Heatmap lines for one scope section, hottest first."""
    entries = section["top"]
    if not entries:
        return [f"  (no {label} load recorded)"]
    peak = max(entry["load"] for entry in entries) or 1.0
    id_width = max(len(str(entry["id"])) for entry in entries)
    lines = []
    for entry in entries:
        filled = max(1, round(_BAR_WIDTH * entry["load"] / peak))
        bar = "█" * filled + "·" * (_BAR_WIDTH - filled)
        lines.append(
            f"  {label} {entry['id']:>{id_width}} {bar} "
            f"{entry['load']:>8.0f}  {entry['share']:6.1%}  {detail(entry)}"
        )
    return lines


def render_load_report(report: dict, source: str = "") -> str:
    """Render the report as a terminal heatmap (see module docstring)."""
    nodes = report["nodes"]
    keys = report["keys"]
    overload = report["overload"]
    title = "rendezvous load-skew report"
    if source:
        title += f" — {source}"
    lines = [
        title,
        "=" * len(title),
        "",
        f"hot nodes (of {nodes['count']}; total load "
        f"{nodes['total_load']:.0f} msgs, gini {nodes['gini']:.3f}, "
        f"p99/mean {nodes['p99_mean_ratio']:.2f}):",
    ]
    lines += _bars(
        nodes, "node",
        lambda e: f"fwd={e['forwarded']} dlv={e['delivered']} "
                  f"subs={e['subscriptions']} maxq={e['bucket_max_depth']}",
    )
    lines += [
        "",
        f"hot rendezvous keys (of {keys['count']}; total load "
        f"{keys['total_load']:.0f}, gini {keys['gini']:.3f}, "
        f"p99/mean {keys['p99_mean_ratio']:.2f}):",
    ]
    lines += _bars(
        keys, "key",
        lambda e: f"subs={e['subscriptions']} pubs={e['publications']}",
    )
    lines.append("")
    matching = report.get("matching")
    if matching is not None and matching["active_nodes"]:
        covering = matching["covering"]
        lines.append(
            f"matcher work: {matching['total_work']:.0f} candidate+verify "
            f"across {matching['active_nodes']} active node(s), "
            f"gini {matching['work_gini']:.3f}, hottest node "
            f"{matching['hottest_node']} at {matching['hottest_share']:.1%}"
        )
        if covering["roots"] or covering["collapsed"]:
            lines.append(
                f"covering: {covering['roots']} roots matcher-resident, "
                f"{covering['collapsed']} collapsed install(s), "
                f"{covering['promotions']} promotion(s)"
            )
        lines.append("")
    if overload["events"]:
        worst = overload["worst"]
        lines.append(
            f"overload: {overload['events']} event(s) across "
            f"{len(overload['nodes'])} node(s) "
            f"[{', '.join(map(str, overload['nodes'][:10]))}"
            + ("…]" if len(overload["nodes"]) > 10 else "]")
        )
        if worst is not None:
            lines.append(
                f"  worst: node {worst['node']} at t={worst['t']:.1f}s — "
                f"{worst['window_load']:.0f} msgs in one window, "
                f"{worst['ratio']:.1f}x the ring median "
                f"(threshold {worst['threshold']:.1f}x)"
            )
    else:
        lines.append(
            f"overload: none across {report['skew_samples']} skew samples"
        )
    shard_imbalance = overload.get("shard_imbalance")
    if shard_imbalance is not None:
        lines.append(
            f"shard imbalance: shard {shard_imbalance['shard']} carried "
            f"{shard_imbalance['window_load']:.0f} msgs — "
            f"{shard_imbalance['ratio']:.2f}x the median shard "
            f"(threshold {shard_imbalance['threshold']:.1f}x; "
            f"loads {shard_imbalance['loads']})"
        )
    return "\n".join(lines)
