"""Unified observability layer: metrics, causal tracing, exporters.

One :class:`Telemetry` bundles the three sinks of a run:

- a :class:`~repro.telemetry.registry.MetricRegistry` of named
  counters / gauges / histograms any component can create;
- a :class:`~repro.telemetry.tracing.Tracer` recording one span per
  one-hop transmission (causal parent ids reconstruct m-cast trees);
- a list of periodic time-series ``samples`` taken on the *simulated*
  clock, so exported metrics carry sim-time axes.

**Disabled by default, free when disabled.**  Components that are not
handed a telemetry explicitly fall back to :func:`current`, which
returns a process-global *null* telemetry: ``enabled`` is False, the
tracer is a no-op and the registry hands out unregistered (but still
counting) instruments.  Hot paths guard at the call site — one cached
``is None`` check per transmission — so the quick-bench behavior
fingerprints with telemetry disabled stay bit-for-bit identical to the
pre-telemetry baseline (enforced by ``make verify``).

Enable by constructing ``Telemetry()`` and passing it down the stack
(``run_experiment(config, telemetry=...)`` / ``Network(...,
telemetry=...)``), or by installing it globally with
:func:`set_current`.  Export with :mod:`repro.telemetry.export`
(JSONL, and Chrome trace-event JSON that opens in Perfetto).
"""

from __future__ import annotations

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
)
from repro.telemetry.tracing import (
    NullTracer,
    Span,
    Tracer,
    delivery_coverage,
    request_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "current",
    "delivery_coverage",
    "request_tree",
    "set_current",
]


class Telemetry:
    """The per-run observability bundle (registry + tracer + samples)."""

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        load_metering: bool = True,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else (
            Tracer() if enabled else NullTracer()
        )
        #: Periodic ``(sim_time, {metric: value})`` samples.
        self.samples: list[tuple[float, dict[str, float]]] = []
        #: The attached :class:`~repro.audit.auditor.Auditor`, if the
        #: run is audited (set by the auditor's constructor); its
        #: violations and probe records ride along in the JSONL export.
        self.audit = None
        #: Per-node / per-key load attribution (see
        #: :mod:`repro.telemetry.load`); None when the bundle is
        #: disabled or load metering is opted out, so hot-path guards
        #: stay one cached identity check.
        self.load = None
        if enabled and load_metering:
            from repro.telemetry.load import LoadMeter

            self.load = LoadMeter()
        #: The shard execution profiler of the run (see
        #: :mod:`repro.telemetry.profile`); attached by ``run_sharded``
        #: when profiling was requested, None otherwise.  Its records
        #: ride along in the JSONL (v4) and Perfetto exports.
        self.profile = None

    def sample(self, now: float) -> None:
        """Take one time-series sample of the registry at sim-time ``now``."""
        if not self.enabled:
            return
        self.samples.append((now, self.registry.snapshot()))
        if self.load is not None:
            self.load.sample(now)


#: Process-global disabled default: unregistered instruments, no-op
#: tracer.  Never accumulates state, so sharing it across every
#: component constructed without an explicit telemetry is safe.
_NULL = Telemetry(enabled=False, registry=NullRegistry(), tracer=NullTracer())

_current: Telemetry | None = None


def current() -> Telemetry:
    """The ambient telemetry: the installed one, else the null default."""
    return _current if _current is not None else _NULL


def set_current(telemetry: Telemetry | None) -> Telemetry | None:
    """Install (or, with None, clear) the process-global telemetry.

    Returns the previously installed telemetry so callers can restore
    it (``old = set_current(tel) ... set_current(old)``).  Explicit
    constructor arguments always win over this global.
    """
    global _current
    previous = _current
    _current = telemetry
    return previous
