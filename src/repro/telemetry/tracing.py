"""Causal message tracing: one span per one-hop transmission.

Every :class:`~repro.overlay.api.OverlayMessage` carries the id of the
span that put it where it is (``message.trace``).  When the network
transmits it one hop, the tracer emits a new span whose parent is that
id and stamps the new id back onto the envelope — so an m-cast fan-out
naturally records its tree (each branch copies the arriving hop's id
before transmitting), and an application delivery records which hop
produced it.  Requests start with a **root span** (parent 0, src = dst
= origin); notification roots may additionally point at the publication
hop that matched them, chaining publish → match → notify end to end.

Span times are simulated seconds: ``t_send`` is when the sender handed
the message to the network (enqueue), ``t_recv`` when the receiver's
drain handles it (dequeue == handle in this kernel: buckets drain at
their arrival tick).  A span's status records its fate — ``sent``
spans reached a live receiver, ``dropped`` ones found the destination
dead at drain time, ``lost`` ones were eaten by the loss model in
flight (``t_recv`` is None).

Span ids are 1-based and dense, so the tracer resolves an id to its
span with one list index — cheap enough for the drain loop to mark
drops without a dict lookup.
"""

from __future__ import annotations

from typing import Iterable

#: Span statuses.
ROOT = "root"
SENT = "sent"
DROPPED = "dropped"
LOST = "lost"


class Span:
    """One hop (or request root) in the causal message graph."""

    __slots__ = (
        "id", "parent", "request_id", "kind", "src", "dst",
        "t_send", "t_recv", "status",
    )

    def __init__(
        self,
        span_id: int,
        parent: int,
        request_id: int,
        kind: str,
        src: int,
        dst: int,
        t_send: float,
        t_recv: float | None,
        status: str,
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.request_id = request_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.t_send = t_send
        self.t_recv = t_recv
        self.status = status

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "request": self.request_id,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "t_send": self.t_send,
            "t_recv": self.t_recv,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            record["id"], record["parent"], record["request"],
            record["kind"], record["src"], record["dst"],
            record["t_send"], record["t_recv"], record["status"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.id}<-{self.parent} req={self.request_id} "
            f"{self.kind} {self.src}->{self.dst} {self.status})"
        )


#: One application delivery: (span_id, request_id, node_id, time).
Delivery = tuple[int, int, int, float]


class Tracer:
    """Accumulates spans and deliveries for one traced run."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._deliveries: list[Delivery] = []

    @property
    def spans(self) -> list[Span]:
        return self._spans

    @property
    def deliveries(self) -> list[Delivery]:
        return self._deliveries

    def _add(self, span: Span) -> int:
        self._spans.append(span)
        return span.id

    def begin_request(
        self, request_id: int, kind: str, origin: int, now: float,
        parent: int = 0,
    ) -> int:
        """Open a root span for a logical request; returns its id.

        ``parent`` may name a span of *another* request (a notification
        root pointing at the publication hop that matched it); within
        its own request the span is still the root.
        """
        span_id = len(self._spans) + 1
        return self._add(
            Span(span_id, parent, request_id, kind, origin, origin,
                 now, now, ROOT)
        )

    def hop(
        self,
        parent: int,
        request_id: int,
        kind: str,
        src: int,
        dst: int,
        t_send: float,
        t_recv: float | None,
        status: str = SENT,
    ) -> int:
        """Record one one-hop transmission; returns the new span id."""
        span_id = len(self._spans) + 1
        return self._add(
            Span(span_id, parent, request_id, kind, src, dst,
                 t_send, t_recv, status)
        )

    def mark_dropped(self, span_id: int) -> None:
        """Flag a hop whose destination was dead at drain time."""
        if 0 < span_id <= len(self._spans):
            self._spans[span_id - 1].status = DROPPED

    def delivery(
        self, span_id: int, request_id: int, node_id: int, now: float
    ) -> None:
        """Record an application-level delivery caused by ``span_id``."""
        self._deliveries.append((span_id, request_id, node_id, now))

    def spans_for_request(self, request_id: int) -> list[Span]:
        return [s for s in self._spans if s.request_id == request_id]


class NullTracer(Tracer):
    """Discards everything (the disabled default; call sites also guard)."""

    def begin_request(self, request_id, kind, origin, now, parent=0) -> int:
        return 0

    def hop(self, parent, request_id, kind, src, dst, t_send, t_recv,
            status=SENT) -> int:
        return 0

    def mark_dropped(self, span_id: int) -> None:
        pass

    def delivery(self, span_id, request_id, node_id, now) -> None:
        pass


# -- tree reconstruction ----------------------------------------------------


def request_tree(
    spans: Iterable[Span], request_id: int
) -> tuple[list[int], set[int]]:
    """Roots and root-reachable span ids of one request's span graph.

    A request's roots are its ``root``-status spans (their ``parent``
    may point into another request — cross-request causality — which
    does not affect in-request reachability).
    """
    children: dict[int, list[int]] = {}
    roots: list[int] = []
    ids: set[int] = set()
    for span in spans:
        if span.request_id != request_id:
            continue
        ids.add(span.id)
        if span.status == ROOT:
            roots.append(span.id)
        else:
            children.setdefault(span.parent, []).append(span.id)
    reachable: set[int] = set()
    frontier = list(roots)
    while frontier:
        span_id = frontier.pop()
        if span_id in reachable:
            continue
        reachable.add(span_id)
        frontier.extend(children.get(span_id, ()))
    return roots, reachable


def delivery_coverage(
    spans: Iterable[Span], deliveries: Iterable[Delivery]
) -> dict[int, bool]:
    """Per request: is every delivery reachable from the request's root?

    This is the telemetry acceptance property — a publication's full
    m-cast tree is reconstructable iff each of its deliveries hangs off
    a span that walks back to the root.  Requests with no deliveries
    are omitted.
    """
    spans = list(spans)
    per_request: dict[int, list[Delivery]] = {}
    for delivery in deliveries:
        per_request.setdefault(delivery[1], []).append(delivery)
    coverage: dict[int, bool] = {}
    for request_id, delivered in per_request.items():
        _, reachable = request_tree(spans, request_id)
        coverage[request_id] = all(
            span_id in reachable for span_id, _, _, _ in delivered
        )
    return coverage
