"""Per-node / per-key load attribution (the rendezvous observatory).

A :class:`LoadMeter` rides on an *enabled* :class:`~repro.telemetry.
Telemetry` and attributes the run's work to the entities that performed
it:

- **per overlay node** — one-hop messages routed or forwarded
  (``Network.transmit``, charged to the forwarding source), terminal
  application deliveries (``do_deliver``), subscriptions stored, and
  matcher work (candidate set sizes, exact verifications, matches)
  via the per-node :class:`MatchWork` handles;
- **per rendezvous key** — subscriptions stored under the key and
  publication deliveries that reached a node covering it;
- **queue pressure** — the depth of every drained ``(dst, tick)``
  inbox bucket, kept as per-node drain counts and max depths.

Hot paths follow the tracer's null-sink discipline exactly: components
cache ``telemetry.load if telemetry.enabled else None`` once at
construction and guard each emission with that single identity check,
so a disabled run stays bit-for-bit fingerprint-free (enforced by the
quick-bench gate in ``make verify``).

:meth:`LoadMeter.sample` runs on the simulated clock (invoked by
:meth:`Telemetry.sample`): it snapshots the skew statistics of the
node and key distributions (:func:`repro.metrics.skew.skew_summary`)
and feeds the cumulative node loads to the windowed
:class:`~repro.metrics.skew.OverloadDetector`, whose events ride the
JSONL export (format v3) next to the final per-entity load records.
"""

from __future__ import annotations

from repro.metrics.skew import OverloadDetector, skew_summary

#: Hot entities reported per scope in skew samples and final records.
TOP_K = 10


class MatchWork:
    """Cumulative matcher work counters for one rendezvous node.

    Handed to the node's matcher (``matcher.work``); the matching
    engines add to these on every ``match()`` call when the handle is
    attached, and never touch them otherwise (one identity check).

    The ``cover_*`` fields mirror the node's covering index
    (:class:`~repro.matching.covering.CoveringIndex`): current roots
    (the matcher-resident summaries), cumulative collapsed installs,
    and cumulative promotions of covered leaves back to roots.  They
    stay zero when covering is disabled.
    """

    __slots__ = (
        "node",
        "candidates",
        "verified",
        "matched",
        "cover_roots",
        "cover_collapsed",
        "cover_promotions",
    )

    def __init__(self, node: int) -> None:
        self.node = node
        self.candidates = 0
        self.verified = 0
        self.matched = 0
        self.cover_roots = 0
        self.cover_collapsed = 0
        self.cover_promotions = 0


class LoadMeter:
    """Load-attribution sink of one run (see module docstring).

    Args:
        overload_threshold: A node is flagged when its load in one
            sample window strictly exceeds this multiple of the ring's
            median window load (see
            :class:`~repro.metrics.skew.OverloadDetector`).
        top_k: Entities reported per scope in skew samples and records.
    """

    def __init__(
        self, overload_threshold: float = 4.0, top_k: int = TOP_K
    ) -> None:
        self.top_k = top_k
        # Per-node counters.
        self.forwarded: dict[int, int] = {}
        self.delivered: dict[int, int] = {}
        self.subscriptions_stored: dict[int, int] = {}
        self.bucket_drains: dict[int, int] = {}
        self.bucket_max_depth: dict[int, int] = {}
        self.match_work: dict[int, MatchWork] = {}
        # Per-rendezvous-key counters.
        self.key_subscriptions: dict[int, int] = {}
        self.key_publications: dict[int, int] = {}
        # Skew samples: (t, {"node": SkewSummary, "key": SkewSummary}).
        self.skew_samples: list[tuple[float, dict]] = []
        self.detector = OverloadDetector(threshold=overload_threshold)
        # Coordinator-detected shard imbalance records (scope "shard"),
        # the structured twin of run_sharded's logging warning.
        self.shard_imbalances: list[dict] = []

    # -- hot-path hooks (guarded by the caller's cached handle) -----------

    def on_transmit(self, src: int) -> None:
        """One one-hop message routed/forwarded by ``src``."""
        self.forwarded[src] = self.forwarded.get(src, 0) + 1

    def on_deliver(self, node: int) -> None:
        """One terminal application delivery at ``node``."""
        self.delivered[node] = self.delivered.get(node, 0) + 1

    def on_bucket_drain(self, dst: int, depth: int) -> None:
        """One ``(dst, tick)`` inbox bucket of ``depth`` messages drained."""
        self.bucket_drains[dst] = self.bucket_drains.get(dst, 0) + 1
        if depth > self.bucket_max_depth.get(dst, 0):
            self.bucket_max_depth[dst] = depth

    def on_subscription_stored(self, node: int, keys) -> None:
        """One subscription installed at ``node`` under ``keys``."""
        self.subscriptions_stored[node] = (
            self.subscriptions_stored.get(node, 0) + 1
        )
        key_subscriptions = self.key_subscriptions
        for key in keys:
            key_subscriptions[key] = key_subscriptions.get(key, 0) + 1

    def on_publication(self, node: int, keys) -> None:
        """One publication delivery at ``node`` covering rendezvous ``keys``."""
        key_publications = self.key_publications
        for key in keys:
            key_publications[key] = key_publications.get(key, 0) + 1

    def record_shard_imbalance(
        self,
        t: float,
        load_by_shard,
        ratio: float,
        threshold: float,
    ) -> None:
        """Record one coordinator-detected shard load imbalance.

        Called by ``run_sharded`` when the busiest shard carries more
        than ``threshold`` times the median shard load; rides the JSONL
        export as an ``overload`` record with ``scope: "shard"`` so
        ``repro stats`` and the audit report surface it instead of a
        stderr warning scrolling past.
        """
        loads = list(load_by_shard)
        worst = max(range(len(loads)), key=lambda s: (loads[s], -s))
        ordered = sorted(loads)
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2
        )
        self.shard_imbalances.append(
            {
                "type": "overload",
                "scope": "shard",
                "t": t,
                "shard": worst,
                "window_load": float(loads[worst]),
                "median": float(median),
                "ratio": ratio,
                "threshold": threshold,
                "loads": loads,
            }
        )

    def match_work_for(self, node: int) -> MatchWork:
        """Get-or-create the matcher work handle of one node."""
        work = self.match_work.get(node)
        if work is None:
            work = MatchWork(node)
            self.match_work[node] = work
        return work

    # -- aggregation -------------------------------------------------------

    def node_loads(self) -> dict[int, float]:
        """Total load per node: forwarded + delivered messages.

        The message count is the attribution unit because it is what a
        deployed broker pays for (CPU to route, bandwidth to carry);
        matcher work and storage are reported separately per node.
        """
        loads: dict[int, float] = {}
        for node, count in self.forwarded.items():
            loads[node] = loads.get(node, 0.0) + count
        for node, count in self.delivered.items():
            loads[node] = loads.get(node, 0.0) + count
        return loads

    def key_loads(self) -> dict[int, float]:
        """Total load per rendezvous key: stored subscriptions + pubs."""
        loads: dict[int, float] = {}
        for key, count in self.key_subscriptions.items():
            loads[key] = loads.get(key, 0.0) + count
        for key, count in self.key_publications.items():
            loads[key] = loads.get(key, 0.0) + count
        return loads

    def match_work_loads(self) -> dict[int, float]:
        """Matcher work per *active* rendezvous node.

        Load unit is ``candidates + verified`` — the per-event cost the
        matching engine actually paid.  Nodes that never matched are
        omitted (handles exist for every node, but an all-zero entry
        says "not a rendezvous for this workload", not "evenly
        loaded"), so the skew of this distribution is the skew of the
        matching work the covering index is built to shed.
        """
        loads: dict[int, float] = {}
        for node, work in self.match_work.items():
            cost = work.candidates + work.verified
            if cost:
                loads[node] = float(cost)
        return loads

    def covering_totals(self) -> dict[str, int]:
        """Ring-wide covering gauges summed over the per-node handles."""
        roots = collapsed = promotions = 0
        for work in self.match_work.values():
            roots += work.cover_roots
            collapsed += work.cover_collapsed
            promotions += work.cover_promotions
        return {
            "roots": roots,
            "collapsed": collapsed,
            "promotions": promotions,
        }

    # -- sim-clock sampling --------------------------------------------------

    def sample(self, now: float) -> None:
        """Snapshot skew statistics and run one overload window.

        Called by :meth:`Telemetry.sample` on the simulated clock, so
        skew series and overload events carry sim-time stamps like
        every other exported series.
        """
        node_loads = self.node_loads()
        self.skew_samples.append(
            (
                now,
                {
                    "node": skew_summary(node_loads, self.top_k),
                    "key": skew_summary(self.key_loads(), self.top_k),
                },
            )
        )
        self.detector.observe(now, node_loads)

    # -- export (JSONL format v3) --------------------------------------------

    def load_records(self) -> list[dict]:
        """Final per-entity ``load`` records, deterministic order."""
        records: list[dict] = []
        for node in sorted(
            set(self.forwarded)
            | set(self.delivered)
            | set(self.subscriptions_stored)
            | set(self.bucket_drains)
            | set(self.match_work)
        ):
            work = self.match_work.get(node)
            records.append(
                {
                    "type": "load",
                    "scope": "node",
                    "id": node,
                    "forwarded": self.forwarded.get(node, 0),
                    "delivered": self.delivered.get(node, 0),
                    "subscriptions": self.subscriptions_stored.get(node, 0),
                    "bucket_drains": self.bucket_drains.get(node, 0),
                    "bucket_max_depth": self.bucket_max_depth.get(node, 0),
                    "match_candidates": work.candidates if work else 0,
                    "match_verified": work.verified if work else 0,
                    "match_matched": work.matched if work else 0,
                    "cover_roots": work.cover_roots if work else 0,
                    "cover_collapsed": work.cover_collapsed if work else 0,
                    "cover_promotions": work.cover_promotions if work else 0,
                }
            )
        for key in sorted(set(self.key_subscriptions) | set(self.key_publications)):
            records.append(
                {
                    "type": "load",
                    "scope": "key",
                    "id": key,
                    "subscriptions": self.key_subscriptions.get(key, 0),
                    "publications": self.key_publications.get(key, 0),
                }
            )
        return records

    def skew_records(self) -> list[dict]:
        """Sim-time ``skew`` records, one per (sample, scope)."""
        return [
            {"type": "skew", "t": t, "scope": scope, **summary.as_dict()}
            for t, scopes in self.skew_samples
            for scope, summary in scopes.items()
        ]

    def overload_records(self) -> list[dict]:
        """``overload`` records: windowed detector events, then the
        coordinator's shard-imbalance records (scope ``shard``)."""
        records = [event.as_dict() for event in self.detector.events]
        records.extend(self.shard_imbalances)
        return records
