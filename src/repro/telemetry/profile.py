"""Shard execution profiler & critical-path observatory.

The sharded kernel (:mod:`repro.sim.shard`) advances in conservative
barrier windows, and until now the only visibility into where its
wall-clock went was the blunt ``shard.barrier_stalls`` counter.  A
:class:`ShardProfiler` rides one sharded run coordinator-side and
records, per barrier round:

- each shard's **busy time** — the wall-clock its worker spent inside
  ``Simulator.run_before`` (measured worker-side, shipped back over the
  existing result pipe next to the outbox);
- the round's **wall time** — coordinator-measured, poll to last
  collected result, so ``busy + stall == wall`` holds *exactly* per
  shard per round (``stall`` is everything that is not busy: waiting
  for the laggard plus pipe/serialization overhead);
- the **window geometry** — start, lookahead width, events drained;
- the **shard-to-shard traffic matrix** — cross-shard messages routed
  by the coordinator, counted per (source shard, destination shard).

Every stall is attributed to the round's **laggard** — the shard with
the largest busy time, the one every other worker waited on at the
barrier.  From the per-round timeline :meth:`ShardProfiler.critical_path`
derives which shards dominate wall-clock and *why* (compute vs. barrier
wait vs. pipe I/O), a per-shard lookahead-utilization metric (how many
windows actually drained events, and how many events per window of
lookahead), and the **rebalance advisor**: workers additionally meter
one-hop sends per node (one cached identity check in
``ShardNetwork.transmit``, the tracer/LoadMeter null-sink discipline),
and :func:`suggest_cuts` turns that measured per-node traffic into
``partition_ring`` cut points that equalize *traffic* per arc instead
of node count — the direct input to the roadmap's traffic-based shard
balancing.

Profiling is pure observation: it never touches the simulated event
stream, so a profiled run's behavior fingerprint is bit-for-bit
identical to an unprofiled one (the scale bench runs its sharded legs
profiled against baseline digests recorded unprofiled, which keeps
this honest), and with profiling off the only residue is one ``is
None`` check per transmit — pinned, like the tracer and the LoadMeter,
by the quick-bench ``--check`` fingerprint gate.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from typing import Sequence

#: Chrome-trace process id for the wall-clock shard tracks (the sim
#: itself renders under pid 1, see :mod:`repro.telemetry.export`).
_PROFILE_PID = 2


class RoundProfile:
    """One barrier round's execution record (see module docstring)."""

    __slots__ = ("index", "t0", "bound", "wall_s", "busy_s", "events", "sent")

    def __init__(
        self,
        index: int,
        t0: float,
        bound: float,
        wall_s: float,
        busy_s: Sequence[float],
        events: Sequence[int],
        sent: Sequence[Sequence[int]],
    ) -> None:
        self.index = index
        self.t0 = t0
        self.bound = bound
        self.wall_s = wall_s
        self.busy_s = tuple(busy_s)
        self.events = tuple(events)
        #: ``sent[src][dst]`` cross-shard messages this round.
        self.sent = tuple(tuple(row) for row in sent)

    @property
    def width(self) -> float:
        """The conservative window's lookahead width in sim seconds."""
        return self.bound - self.t0

    @property
    def laggard(self) -> int:
        """The shard every other worker waited on (max busy; ties low)."""
        return max(range(len(self.busy_s)), key=lambda s: (self.busy_s[s], -s))

    def stall_s(self, shard: int) -> float:
        """Wall-clock this shard's slot spent not executing events."""
        return max(0.0, self.wall_s - self.busy_s[shard])

    def as_dict(self) -> dict:
        return {
            "type": "profile",
            "scope": "round",
            "round": self.index,
            "t0": round(self.t0, 6),
            "width": round(self.width, 6),
            "wall_s": round(self.wall_s, 7),
            "busy_s": [round(b, 7) for b in self.busy_s],
            "events": list(self.events),
            "laggard": self.laggard,
            "sent": [list(row) for row in self.sent],
        }


@dataclasses.dataclass
class ShardCriticalPath:
    """Where one sharded run's wall-clock went, per shard.

    The accounting identity: for every shard,
    ``busy_s + barrier_wait_s + pipe_s == total_wall_s`` (and
    ``stall == barrier_wait + pipe``) — busy is worker-measured,
    barrier wait is the gap to the round's laggard, pipe is the
    residual coordinator overhead (result collection, outbox routing,
    polling), which is shared by construction since all shards span
    every round.
    """

    num_shards: int
    rounds: int
    total_wall_s: float
    finish_wall_s: float
    window_width_mean: float
    busy_s: list[float]
    barrier_wait_s: list[float]
    pipe_s: list[float]
    events: list[int]
    sent: list[int]
    received: list[int]
    laggard_rounds: list[int]
    zero_event_rounds: list[int]
    lookahead_utilization: list[float]
    events_per_window: list[float]

    @property
    def stall_s(self) -> list[float]:
        """Non-busy wall per shard (barrier wait + pipe overhead)."""
        return [
            w + p for w, p in zip(self.barrier_wait_s, self.pipe_s)
        ]

    @property
    def dominant_shard(self) -> int:
        """The shard whose compute dominates the run (max busy)."""
        if not self.busy_s:
            return 0
        return max(
            range(self.num_shards), key=lambda s: (self.busy_s[s], -s)
        )

    @property
    def dominant_phase(self) -> str:
        """What the run's wall-clock mostly paid for.

        ``compute`` when the mean shard was busy most of the time,
        ``barrier`` when waiting on laggards dominates, ``pipe`` when
        coordinator/IPC overhead does — the signal that decides between
        traffic rebalancing (barrier) and window widening (pipe).
        """
        if self.total_wall_s <= 0 or self.num_shards == 0:
            return "compute"
        busy = sum(self.busy_s) / self.num_shards
        wait = sum(self.barrier_wait_s) / self.num_shards
        pipe = sum(self.pipe_s) / self.num_shards
        top = max(busy, wait, pipe)
        if top == busy:
            return "compute"
        return "barrier" if top == wait else "pipe"

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "rounds": self.rounds,
            "total_wall_s": round(self.total_wall_s, 4),
            "finish_wall_s": round(self.finish_wall_s, 4),
            "window_width_mean": round(self.window_width_mean, 6),
            "busy_s": [round(v, 4) for v in self.busy_s],
            "barrier_wait_s": [round(v, 4) for v in self.barrier_wait_s],
            "pipe_s": [round(v, 4) for v in self.pipe_s],
            "stall_s": [round(v, 4) for v in self.stall_s],
            "events": list(self.events),
            "sent": list(self.sent),
            "received": list(self.received),
            "laggard_rounds": list(self.laggard_rounds),
            "zero_event_rounds": list(self.zero_event_rounds),
            "lookahead_utilization": [
                round(v, 4) for v in self.lookahead_utilization
            ],
            "events_per_window": [round(v, 3) for v in self.events_per_window],
            "dominant_shard": self.dominant_shard,
            "dominant_phase": self.dominant_phase,
        }


def suggest_cuts(
    node_ids: Sequence[int],
    node_loads: dict[int, float] | dict[int, int],
    num_shards: int,
) -> list[int]:
    """Traffic-weighted arc partition: K start offsets into the ring.

    Walks the ascending identifier ring accumulating each node's
    measured load and places a cut at the arc boundary whose prefix
    load lands nearest each ``total / K`` quantile, clamped so every
    arc keeps at least one node.  The result feeds straight into
    :func:`repro.sim.shard.partition_ring` via its ``cuts`` argument;
    with an empty or all-zero load map it degenerates to the default
    near-equal node-count split.

    Returns ``[0, c1, ..., c_{K-1}]`` — ``cuts[s]`` is the index (in
    ascending id order) of shard ``s``'s first node.
    """
    ordered = sorted(node_ids)
    n = len(ordered)
    if num_shards < 1 or num_shards > n:
        raise ValueError(
            f"cannot cut {n} nodes into {num_shards} arcs"
        )
    total = float(sum(node_loads.get(node, 0) for node in ordered))
    if total <= 0:
        return [n * shard // num_shards for shard in range(num_shards)]
    cumulative: list[float] = []
    running = 0.0
    for node in ordered:
        running += float(node_loads.get(node, 0))
        cumulative.append(running)
    cuts = [0]
    for shard in range(1, num_shards):
        target = total * shard / num_shards
        # Lowest boundary whose prefix reaches the quantile, stepping
        # back one when the previous prefix is strictly closer; clamp
        # leaves at least one node behind the cut and one per arc ahead.
        low = cuts[-1] + 1
        high = n - (num_shards - shard)
        cut = bisect_left(cumulative, target, lo=low - 1, hi=high) + 1
        if cut > 1 and cumulative[cut - 1] - target > target - cumulative[cut - 2]:
            cut -= 1
        cuts.append(min(max(cut, low), high))
    return cuts


class ShardProfiler:
    """Coordinator-side profile of one sharded run (see module doc)."""

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self.rounds: list[RoundProfile] = []
        #: Worker wall-clock inside the final run-to-horizon stretch.
        self.finish_busy_s: list[float] = [0.0] * num_shards
        self.finish_wall_s = 0.0
        #: Events each worker fired during the finish stretch — with
        #: the per-round events this conserves each worker's total.
        self.finish_events: list[int] = [0] * num_shards
        #: One-hop sends per node, merged from the workers' meters —
        #: the rebalance advisor's traffic measurement.
        self.node_loads: dict[int, int] = {}
        # Set by finalize() once the coordinator knows the outcome.
        self.node_ids: list[int] = []
        self.cuts: list[int] = []
        self.load_by_shard: list[int] = []

    # -- recording hooks (coordinator-side) ---------------------------------

    def on_round(
        self,
        t0: float,
        bound: float,
        wall_s: float,
        busy_s: Sequence[float],
        events: Sequence[int],
        sent: Sequence[Sequence[int]],
    ) -> None:
        """Record one completed barrier round."""
        self.rounds.append(
            RoundProfile(len(self.rounds), t0, bound, wall_s, busy_s,
                         events, sent)
        )

    def on_finish(
        self,
        busy_s: Sequence[float],
        wall_s: float,
        events: Sequence[int] | None = None,
    ) -> None:
        """Record the final run-out-to-horizon stretch."""
        self.finish_busy_s = list(busy_s)
        self.finish_wall_s = wall_s
        if events is not None:
            self.finish_events = list(events)

    def add_node_loads(self, sends: dict[int, int]) -> None:
        """Merge one worker's per-node send meter."""
        loads = self.node_loads
        for node, count in sends.items():
            loads[node] = loads.get(node, 0) + count

    def finalize(
        self,
        node_ids: Sequence[int],
        cuts: Sequence[int],
        load_by_shard: Sequence[int],
    ) -> None:
        """Attach the run's ring layout and per-shard load outcome."""
        self.node_ids = sorted(node_ids)
        self.cuts = list(cuts)
        self.load_by_shard = list(load_by_shard)

    # -- analysis -----------------------------------------------------------

    def total_wall_s(self) -> float:
        """Profiled wall-clock: every round plus the finish stretch."""
        return sum(r.wall_s for r in self.rounds) + self.finish_wall_s

    def critical_path(self) -> ShardCriticalPath:
        """Summarize the timeline (see :class:`ShardCriticalPath`)."""
        k = self.num_shards
        busy = [0.0] * k
        wait = [0.0] * k
        pipe = [0.0] * k
        events = [0] * k
        sent = [0] * k
        received = [0] * k
        laggard_rounds = [0] * k
        zero_rounds = [0] * k
        active = [0] * k
        width_total = 0.0
        for record in self.rounds:
            width_total += record.width
            peak = max(record.busy_s)
            overhead = max(0.0, record.wall_s - peak)
            laggard_rounds[record.laggard] += 1
            for shard in range(k):
                busy[shard] += record.busy_s[shard]
                wait[shard] += max(0.0, peak - record.busy_s[shard])
                pipe[shard] += overhead
                events[shard] += record.events[shard]
                row = record.sent[shard]
                sent[shard] += sum(row)
                if record.events[shard]:
                    active[shard] += 1
                else:
                    zero_rounds[shard] += 1
                for dst in range(k):
                    received[dst] += row[dst]
        # The finish stretch has no barrier: whatever is not busy is
        # waiting for the slowest worker to run out, plus pipe residue.
        if self.finish_wall_s > 0:
            peak = max(self.finish_busy_s) if self.finish_busy_s else 0.0
            overhead = max(0.0, self.finish_wall_s - peak)
            for shard in range(k):
                busy[shard] += self.finish_busy_s[shard]
                wait[shard] += max(0.0, peak - self.finish_busy_s[shard])
                pipe[shard] += overhead
        rounds = len(self.rounds)
        return ShardCriticalPath(
            num_shards=k,
            rounds=rounds,
            total_wall_s=self.total_wall_s(),
            finish_wall_s=self.finish_wall_s,
            window_width_mean=width_total / rounds if rounds else 0.0,
            busy_s=busy,
            barrier_wait_s=wait,
            pipe_s=pipe,
            events=events,
            sent=sent,
            received=received,
            laggard_rounds=laggard_rounds,
            zero_event_rounds=zero_rounds,
            lookahead_utilization=[
                active[s] / rounds if rounds else 0.0 for s in range(k)
            ],
            events_per_window=[
                events[s] / rounds if rounds else 0.0 for s in range(k)
            ],
        )

    def suggest_partition(self, num_shards: int | None = None) -> list[int]:
        """Traffic-weighted cut points from the measured node loads.

        Requires :meth:`finalize` (the coordinator calls it at the end
        of every profiled run).  Falls back to the per-shard load
        totals spread uniformly over each arc when per-node metering
        produced nothing (e.g. a zero-traffic run).
        """
        if not self.node_ids:
            raise ValueError("profiler not finalized: ring layout unknown")
        k = num_shards if num_shards is not None else self.num_shards
        loads: dict[int, float] = {
            node: float(count) for node, count in self.node_loads.items()
        }
        if not loads and self.load_by_shard and self.cuts:
            # Uniform-within-arc fallback from the per-shard totals.
            bounds = list(self.cuts) + [len(self.node_ids)]
            for shard, total in enumerate(self.load_by_shard):
                arc = self.node_ids[bounds[shard]:bounds[shard + 1]]
                share = total / len(arc) if arc else 0.0
                for node in arc:
                    loads[node] = share
        return suggest_cuts(self.node_ids, loads, k)

    def predicted_load_by_shard(self, cuts: Sequence[int]) -> list[float]:
        """Measured per-node load re-aggregated under candidate cuts."""
        bounds = list(cuts) + [len(self.node_ids)]
        totals: list[float] = []
        for shard in range(len(cuts)):
            arc = self.node_ids[bounds[shard]:bounds[shard + 1]]
            totals.append(float(sum(self.node_loads.get(n, 0) for n in arc)))
        return totals

    # -- export (JSONL format v4) -------------------------------------------

    def profile_records(self) -> list[dict]:
        """``profile`` records: run summary, advice, per shard, per round."""
        path = self.critical_path()
        records: list[dict] = [{"type": "profile", "scope": "run",
                                **path.as_dict()}]
        if self.node_ids:
            cuts = self.suggest_partition()
            records.append(
                {
                    "type": "profile",
                    "scope": "advice",
                    "cuts": cuts,
                    "cut_ids": [self.node_ids[c] for c in cuts],
                    "current_cuts": list(self.cuts),
                    "load_by_shard": list(self.load_by_shard),
                    "predicted_load_by_shard": [
                        round(v, 1) for v in self.predicted_load_by_shard(cuts)
                    ],
                    "metered_nodes": len(self.node_loads),
                }
            )
        for shard in range(self.num_shards):
            records.append(
                {
                    "type": "profile",
                    "scope": "shard",
                    "shard": shard,
                    "busy_s": round(path.busy_s[shard], 4),
                    "barrier_wait_s": round(path.barrier_wait_s[shard], 4),
                    "pipe_s": round(path.pipe_s[shard], 4),
                    "stall_s": round(path.stall_s[shard], 4),
                    "finish_busy_s": round(self.finish_busy_s[shard], 4),
                    "finish_events": self.finish_events[shard],
                    "events": path.events[shard],
                    "sent": path.sent[shard],
                    "received": path.received[shard],
                    "laggard_rounds": path.laggard_rounds[shard],
                    "zero_event_rounds": path.zero_event_rounds[shard],
                    "lookahead_utilization": round(
                        path.lookahead_utilization[shard], 4
                    ),
                    "events_per_window": round(
                        path.events_per_window[shard], 3
                    ),
                }
            )
        records.extend(record.as_dict() for record in self.rounds)
        return records

    # -- export (Chrome trace / Perfetto) -----------------------------------

    def chrome_events(self) -> list[dict]:
        """Wall-clock shard tracks for the Perfetto export.

        Rendered under a second trace process ("shard execution") on a
        *wall-clock* axis — cumulative profiled seconds — separate from
        the simulation's sim-time tracks: one track per shard carrying
        busy/stall slices per barrier round, plus coordinator counter
        tracks (window width, events drained, remote messages).
        """
        pid = _PROFILE_PID
        events: list[dict] = [
            {"ph": "M", "pid": pid, "name": "process_name",
             "args": {"name": "shard execution (wall clock)"}},
        ]
        for shard in range(self.num_shards):
            events.append(
                {"ph": "M", "pid": pid, "tid": shard, "name": "thread_name",
                 "args": {"name": f"shard {shard}"}}
            )
        offset = 0.0  # cumulative wall-clock, seconds
        for record in self.rounds:
            ts = offset * 1e6
            laggard = record.laggard
            for shard in range(self.num_shards):
                busy_us = record.busy_s[shard] * 1e6
                if busy_us >= 0.5:
                    events.append(
                        {"ph": "X", "pid": pid, "tid": shard, "ts": ts,
                         "dur": busy_us, "name": "busy", "cat": "shard",
                         "args": {"round": record.index,
                                  "events": record.events[shard],
                                  "t0": record.t0}}
                    )
                stall_us = record.stall_s(shard) * 1e6
                if stall_us >= 0.5:
                    events.append(
                        {"ph": "X", "pid": pid, "tid": shard,
                         "ts": ts + busy_us, "dur": stall_us,
                         "name": "stall", "cat": "shard",
                         "args": {"round": record.index,
                                  "laggard": laggard}}
                    )
            events.append(
                {"ph": "C", "pid": pid, "ts": ts, "name": "shard.window_width",
                 "args": {"value": record.width}}
            )
            events.append(
                {"ph": "C", "pid": pid, "ts": ts,
                 "name": "shard.window_events",
                 "args": {"value": sum(record.events)}}
            )
            events.append(
                {"ph": "C", "pid": pid, "ts": ts,
                 "name": "shard.window_remote",
                 "args": {"value": sum(sum(row) for row in record.sent)}}
            )
            offset += record.wall_s
        if self.finish_wall_s > 0:
            ts = offset * 1e6
            for shard in range(self.num_shards):
                busy_us = self.finish_busy_s[shard] * 1e6
                if busy_us >= 0.5:
                    events.append(
                        {"ph": "X", "pid": pid, "tid": shard, "ts": ts,
                         "dur": busy_us, "name": "finish", "cat": "shard",
                         "args": {}}
                    )
        return events


# -- report (repro report --mode shard) --------------------------------------

#: Width of the utilization bars in terminal cells.
_BAR_WIDTH = 32


def build_shard_report(dump) -> dict | None:
    """Shard-profile report dict from a loaded v4+ telemetry export
    (or a plain list of ``profile`` records, e.g. straight from
    :meth:`ShardProfiler.profile_records`).

    Returns None when the export carries no profile records (the run
    was serial, pre-v4, or profiled with ``--shard-profile`` off).
    """
    records = dump if isinstance(dump, list) else dump.profiles
    run = next(
        (r for r in records if r.get("scope") == "run"), None
    )
    if run is None:
        return None
    shards = sorted(
        (r for r in records if r.get("scope") == "shard"),
        key=lambda r: r["shard"],
    )
    advice = next(
        (r for r in records if r.get("scope") == "advice"), None
    )
    rounds = [r for r in records if r.get("scope") == "round"]
    return {
        "run": run,
        "shards": shards,
        "advice": advice,
        "round_records": len(rounds),
    }


def render_shard_report(report: dict, source: str = "") -> str:
    """Terminal view: utilization bars, stall attribution, advice."""
    run = report["run"]
    shards = report["shards"]
    title = "shard execution profile"
    if source:
        title += f" — {source}"
    wall = run["total_wall_s"] or 1.0
    lines = [
        title,
        "=" * len(title),
        "",
        f"{run['num_shards']} shard(s), {run['rounds']} barrier round(s) "
        f"({report['round_records']} exported), "
        f"wall {run['total_wall_s']:.2f}s "
        f"(finish stretch {run['finish_wall_s']:.2f}s), "
        f"mean window {run['window_width_mean'] * 1e3:.1f}ms sim",
        f"dominant: shard {run['dominant_shard']} — "
        f"{run['dominant_phase']}-bound",
        "",
        "per-shard utilization (busy share of profiled wall):",
    ]
    for record in shards:
        share = record["busy_s"] / wall
        filled = max(0, min(_BAR_WIDTH, round(_BAR_WIDTH * share)))
        bar = "█" * filled + "·" * (_BAR_WIDTH - filled)
        lines.append(
            f"  shard {record['shard']} {bar} {share:6.1%}  "
            f"busy={record['busy_s']:.2f}s wait={record['barrier_wait_s']:.2f}s "
            f"pipe={record['pipe_s']:.2f}s"
        )
    lines += [
        "",
        "stall attribution (laggard = shard the others waited on):",
        "  shard  laggard-rounds  zero-event-rounds  events  "
        "remote sent/recv  util  ev/window",
    ]
    for record in shards:
        lines.append(
            f"  {record['shard']:>5}  {record['laggard_rounds']:>14}  "
            f"{record['zero_event_rounds']:>17}  {record['events']:>6}  "
            f"{record['sent']:>7}/{record['received']:<8} "
            f"{record['lookahead_utilization']:>5.1%}  "
            f"{record['events_per_window']:>9.2f}"
        )
    advice = report.get("advice")
    lines.append("")
    if advice is not None:
        lines.append(
            f"rebalance advisor ({advice['metered_nodes']} metered nodes; "
            f"measured load_by_shard={advice['load_by_shard']}):"
        )
        lines.append(
            f"  suggested cuts (start offsets): {advice['cuts']}  "
            f"(node ids {advice['cut_ids']})"
        )
        lines.append(
            f"  predicted load_by_shard under suggestion: "
            f"{advice['predicted_load_by_shard']}"
        )
        lines.append(
            "  feed back via run_sharded(..., cuts=...) or "
            "repro run --shard-cuts"
        )
    else:
        lines.append("rebalance advisor: no per-node traffic metered")
    return "\n".join(lines)
