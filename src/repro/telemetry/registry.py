"""Named metric instruments: counters, gauges, histograms.

Any component can create an instrument through the run's
:class:`MetricRegistry` (``registry.counter("chord.table_patches")``)
and update it with plain attribute arithmetic — an update is one
``int`` add on a ``__slots__`` object, cheap enough to leave permanently
on (the migrated ``ChordNode.table_rebuilds`` / ``Network.dropped``
counters run on every churn event and every dead-destination drop).

Instruments may carry **labels** (``counter("chord.table_rebuilds",
node=42)``) so per-node series coexist with cross-node aggregation:
:meth:`MetricRegistry.total` sums a name across label sets, and
:meth:`MetricRegistry.snapshot` — the time-series sampling hook —
aggregates labeled counters under their bare name to keep periodic
samples compact even on 2000-node rings.

The process-global default telemetry uses :class:`NullRegistry`, which
hands out fully functional but *unregistered* instruments: components
built outside an experiment (unit tests, ad-hoc scripts) still count,
but nothing accumulates in shared process state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.metrics.stats import Summary, summarize

#: Canonical key for one instrument: name plus sorted label items.
MetricKey = tuple[str, tuple[tuple[str, object], ...]]


def metric_key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return name, tuple(sorted(labels.items()))


def format_metric(name: str, labels: tuple[tuple[str, object], ...]) -> str:
    """Human-readable instrument id: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({format_metric(self.name, self.labels)}={self.value})"


class Gauge:
    """A point-in-time value, either set explicitly or lazily supplied.

    A ``supplier`` gauge costs nothing until sampled: the callable is
    only invoked by :meth:`MetricRegistry.snapshot`, which is how the
    sim kernel exposes ``sim.pending`` / ``sim.events_processed``
    without touching its hot loops.
    """

    __slots__ = ("name", "labels", "_value", "supplier")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, object], ...] = (),
        supplier: Callable[[], float] | None = None,
    ):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.supplier = supplier

    def set(self, value: float) -> None:
        self._value = value

    def read(self) -> float:
        if self.supplier is not None:
            return self.supplier()
        return self._value


class Histogram:
    """A bag of observations summarized on demand (five-number style)."""

    __slots__ = ("name", "labels", "_values")

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...] = ()):
        self.name = name
        self.labels = labels
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> list[float]:
        return list(self._values)

    def summary(self) -> Summary:
        return summarize(self._values)


class MetricRegistry:
    """Creates, indexes and samples the instruments of one run.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same (name, labels) returns the same object, so components
    can share instruments by name without threading references around.
    """

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- instrument creation ------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(
        self,
        name: str,
        supplier: Callable[[], float] | None = None,
        **labels: object,
    ) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1], supplier=supplier)
            self._gauges[key] = instrument
        elif supplier is not None:
            instrument.supplier = supplier
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1])
            self._histograms[key] = instrument
        return instrument

    # -- read side ----------------------------------------------------------

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def gauges(self) -> Iterable[Gauge]:
        return self._gauges.values()

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def total(self, name: str) -> int:
        """Sum of a counter name across all its label sets."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def snapshot(self) -> dict[str, float]:
        """One time-series sample: counters summed by bare name, gauges read.

        Labeled counters aggregate under their name (per-node series
        stay queryable through the instruments themselves); histograms
        contribute their observation count as ``<name>.count``.
        """
        sample: dict[str, float] = {}
        for (name, _), counter in self._counters.items():
            sample[name] = sample.get(name, 0) + counter.value
        for (name, labels), gauge in self._gauges.items():
            sample[format_metric(name, labels)] = gauge.read()
        for (name, _), histogram in self._histograms.items():
            key = f"{name}.count"
            sample[key] = sample.get(key, 0) + histogram.count
        return sample


class NullRegistry(MetricRegistry):
    """Hands out working but unregistered instruments.

    The process-global default telemetry must not accumulate state
    across unrelated runs (a pytest session constructs thousands of
    networks), so instruments created here are *not* indexed: the
    caller holds the only reference, counting still works, and
    ``snapshot``/``total`` see nothing.
    """

    def counter(self, name: str, **labels: object) -> Counter:
        return Counter(name, metric_key(name, labels)[1])

    def gauge(
        self,
        name: str,
        supplier: Callable[[], float] | None = None,
        **labels: object,
    ) -> Gauge:
        return Gauge(name, metric_key(name, labels)[1], supplier=supplier)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return Histogram(name, metric_key(name, labels)[1])
