"""Nearly-static mappings for hotspot mitigation (Section 4.2).

The Discussion of Section 4.2 notes that purely static EK/SK mappings
make dynamic hotspots — all subscriptions and events falling into a
small portion of the space — hard to handle, and proposes "nearly
static EK- and SK-mappings in which infrequent changes may slightly
alter the initially defined functions in order to accommodate
hotspots", with the change knowledge disseminated so rarely that it
costs essentially nothing.

:class:`HotspotAdaptiveMapping` implements that idea as a wrapper
around any base mapping: an infrequent *rebalance* splits each hot key
``k`` into ``fan_out`` deterministic sibling keys spread around the
ring.  Two split modes cover the two kinds of hotspot:

- :attr:`SplitMode.STORAGE` — too many subscriptions pile up on the
  node covering ``k``.  Each subscription maps to **one** sibling
  (chosen by a content hash of the subscription, so the choice is
  stable and system-wide deterministic), and events visit **all**
  siblings.  Stored load divides by ~fan_out; event fan-out grows by
  fan_out - 1 keys for the split key only.
- :attr:`SplitMode.MATCHING` — too many events hammer the node.  Each
  subscription is stored on **all** siblings and each event picks
  **one** by content hash; matching load divides by ~fan_out at
  unchanged event fan-out.

Either way the mapping intersection rule is preserved: the side that
maps to *one* sibling always lands within the set the other side maps
to.  Each rebalance bumps an *epoch*; in a deployment the (tiny)
override table would be gossiped once per epoch — the "disseminated
very infrequently" part of the paper's argument.
"""

from __future__ import annotations

import enum
import hashlib

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.subscriptions import Subscription
from repro.errors import MappingError


class SplitMode(enum.Enum):
    """Which side of a hot key's load the split spreads."""

    STORAGE = "storage"
    MATCHING = "matching"


class HotspotAdaptiveMapping(AKMapping):
    """Wrap a base mapping with infrequent hot-key splitting.

    Args:
        base: The wrapped stateless mapping.
        fan_out: How many keys a split hot key becomes (>= 2).
    """

    name = "hotspot-adaptive"

    def __init__(self, base: AKMapping, fan_out: int = 4) -> None:
        super().__init__(base.space, base.keyspace, base.discretization)
        if fan_out < 2:
            raise MappingError("fan_out must be at least 2")
        self._base = base
        self._fan_out = fan_out
        self._overrides: dict[int, tuple[SplitMode, tuple[int, ...]]] = {}
        self._epoch = 0

    @property
    def base(self) -> AKMapping:
        """The wrapped mapping."""
        return self._base

    @property
    def epoch(self) -> int:
        """Number of rebalances applied so far."""
        return self._epoch

    @property
    def overrides(self) -> dict[int, tuple[SplitMode, tuple[int, ...]]]:
        """Current hot-key split table: key -> (mode, sibling keys)."""
        return dict(self._overrides)

    def siblings_of(self, key: int) -> tuple[int, ...]:
        """The sibling set of a split key (empty tuple if not split)."""
        entry = self._overrides.get(key)
        return entry[1] if entry else ()

    # -- the nearly-static adjustment ------------------------------------

    def _siblings(self, key: int) -> tuple[int, ...]:
        """Deterministic sibling keys for a split key (incl. the key)."""
        siblings = [key]
        for index in range(1, self._fan_out):
            digest = hashlib.sha1(f"split:{key}:{index}".encode()).digest()
            siblings.append(int.from_bytes(digest[:8], "big") % self._keyspace.size)
        return tuple(dict.fromkeys(siblings))  # dedupe, keep order

    def rebalance(
        self,
        load_by_key: dict[int, int],
        hot_fraction: float = 0.01,
        mode: SplitMode = SplitMode.STORAGE,
    ) -> int:
        """Split the hottest keys; returns how many keys were split.

        Args:
            load_by_key: Observed load (stored subscriptions for
                :attr:`SplitMode.STORAGE`, matches/arrivals for
                :attr:`SplitMode.MATCHING`) per rendezvous key.
            hot_fraction: Fraction of observed keys to split, by load
                rank (at least one key if any load was observed).
            mode: Which side of the load the split spreads.
        """
        if not 0 < hot_fraction <= 1:
            raise MappingError(f"hot_fraction {hot_fraction} outside (0, 1]")
        candidates = [
            key for key in sorted(load_by_key, key=load_by_key.get, reverse=True)
            if key not in self._overrides and load_by_key[key] > 0
        ]
        if not candidates:
            return 0
        count = max(1, int(len(candidates) * hot_fraction))
        for key in candidates[:count]:
            self._overrides[key] = (mode, self._siblings(key))
        self._epoch += 1
        return count

    # -- content-addressed sibling choice -----------------------------------

    @staticmethod
    def _pick(siblings: tuple[int, ...], token: str) -> int:
        digest = hashlib.sha1(token.encode()).digest()
        return siblings[int.from_bytes(digest[:4], "big") % len(siblings)]

    @staticmethod
    def _subscription_token(subscription: Subscription) -> str:
        """A content token stable across re-subscriptions of the same σ."""
        return repr(
            tuple(
                (c.attribute, c.low, c.high) for c in subscription.constraints
            )
        )

    # -- SK / EK with overrides applied ------------------------------------

    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        token = self._subscription_token(subscription)
        groups = []
        for group in self._base.subscription_key_groups(subscription):
            expanded: list[int] = []
            for key in group:
                entry = self._overrides.get(key)
                if entry is None:
                    expanded.append(key)
                    continue
                mode, siblings = entry
                if mode is SplitMode.STORAGE:
                    expanded.append(self._pick(siblings, f"{key}:{token}"))
                else:
                    expanded.extend(siblings)
            groups.append(tuple(sorted(set(expanded))))
        return tuple(groups)

    def event_keys(self, event: Event) -> frozenset[int]:
        keys: set[int] = set()
        for key in self._base.event_keys(event):
            entry = self._overrides.get(key)
            if entry is None:
                keys.add(key)
                continue
            mode, siblings = entry
            if mode is SplitMode.STORAGE:
                keys.update(siblings)
            else:
                keys.add(self._pick(siblings, f"{key}:{event.values}"))
        return frozenset(keys)
