"""Mapping 2: Key Space-Split (Section 4.2).

The ``m`` key bits are partitioned across the ``d`` attributes:
``l = ⌊m/d⌋`` bits each.  A subscription maps to every concatenation of
per-attribute bit strings drawn from the constraint images,
``SK(σ) = {s₁∘...∘s_d | sᵢ ∈ Hᵢ(σ.cᵢ)}``; an event maps to the single
concatenation of its value hashes, ``EK(e) = h₁(e.a₁)∘...∘h_d(e.a_d)``.

With the paper's parameters (m=13, d=4 so l=3) a typical non-selective
constraint image is a single 3-bit string, so most subscriptions map to
"slightly over one" key (Section 5.2) — the best storage scalability of
the three mappings when no selective attribute exists (Fig. 8).

Implementation note: ``d·l`` may be smaller than ``m`` (13 = 4·3 + 1
here).  Raw concatenations would then occupy only the bottom
``2^(d·l)`` positions of the ring, concentrating all load on the nodes
covering that arc.  We therefore place concatenated strings in the
**top** bits (shift left by ``m - d·l``), spreading the ``2^(d·l)``
rendezvous positions evenly around the ring.  This changes no key
*cardinality* (the quantity the paper analyzes) — only the positions —
and keeps consistent hashing's load balance.
"""

from __future__ import annotations

import itertools

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.subscriptions import Subscription
from repro.errors import MappingError

#: Refuse to materialize more concatenations than this per subscription.
MAX_PRODUCT_KEYS = 1 << 20


class KeySpaceSplitMapping(AKMapping):
    """Mapping 2 of the paper."""

    name = "keyspace-split"

    def __init__(self, space, keyspace, discretization=None):
        super().__init__(space, keyspace, discretization)
        self._bits_per_attribute = keyspace.bits // space.dimensions
        if self._bits_per_attribute < 1:
            raise MappingError(
                f"key space of {keyspace.bits} bits cannot be split across "
                f"{space.dimensions} attributes"
            )

    @property
    def bits_per_attribute(self) -> int:
        """``l = ⌊m/d⌋``, the per-attribute share of the key bits."""
        return self._bits_per_attribute

    def _concatenate(self, pieces: tuple[int, ...]) -> int:
        l = self._bits_per_attribute
        value = 0
        for piece in pieces:
            value = (value << l) | piece
        unused = self._keyspace.bits - l * self._space.dimensions
        return value << unused

    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        l = self._bits_per_attribute
        images = []
        expected = 1
        for attribute in range(self._space.dimensions):
            constraint = subscription.effective_constraint(attribute)
            image = self._constraint_image(attribute, constraint.low, constraint.high, l)
            expected *= len(image)
            if expected > MAX_PRODUCT_KEYS:
                raise MappingError(
                    f"subscription maps to over {MAX_PRODUCT_KEYS} keys under "
                    "keyspace-split; constrain more attributes or discretize"
                )
            images.append(image)
        keys = sorted(
            self._concatenate(pieces) for pieces in itertools.product(*images)
        )
        return (tuple(keys),)

    def event_keys(self, event: Event) -> frozenset[int]:
        l = self._bits_per_attribute
        pieces = tuple(
            self._hash_value(attribute, value, l)
            for attribute, value in enumerate(event.values)
        )
        return frozenset((self._concatenate(pieces),))
