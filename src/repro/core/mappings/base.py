"""Shared machinery of the ak-mappings.

Every mapping is built from per-attribute hash functions
``hᵢ: Ωᵢ -> [0,1]ˡ`` with ``hᵢ(x) = ⌊x · 2ˡ / |Ωᵢ|⌋`` (the paper's
scaling function), lifted to constraint images
``Hᵢ(σ.cᵢ) = {hᵢ(x) | x satisfies σ.cᵢ}``.

Discretization (Section 4.3.3) composes a fixed-width interval
quantizer in front of ``hᵢ``: all values in the same interval share one
rendezvous key.  Because the same quantizer is applied to both
subscription ranges and event values, the mapping intersection rule is
preserved for any interval width.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.core.events import Event, EventSpace
from repro.core.subscriptions import Subscription
from repro.errors import MappingError
from repro.overlay.ids import KeySpace


@dataclasses.dataclass(frozen=True)
class Discretization:
    """Per-attribute interval widths for the Section 4.3.3 optimization.

    A width of 1 on every attribute means *no* discretization.  The
    paper cautions that the number of possible intervals should exceed
    the number of nodes, or some nodes are never rendezvous and load
    imbalance follows; the experiment harness checks this.

    Attributes:
        widths: Interval width (in attribute-value units) per attribute.
    """

    widths: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(width < 1 for width in self.widths):
            raise MappingError(f"interval widths must be >= 1, got {self.widths}")

    @classmethod
    def none(cls, dimensions: int) -> "Discretization":
        """The identity discretization (width 1 everywhere)."""
        return cls(widths=(1,) * dimensions)

    @classmethod
    def uniform(cls, dimensions: int, width: int) -> "Discretization":
        """The same interval width on every attribute."""
        return cls(widths=(width,) * dimensions)

    def quantize(self, attribute: int, value: int) -> int:
        """Map ``value`` to the start of its interval on ``attribute``."""
        width = self.widths[attribute]
        return (value // width) * width


class AKMapping(abc.ABC):
    """Base class of the three stateless mappings.

    Args:
        space: The event space Ω.
        keyspace: The overlay key space K (with ``m = keyspace.bits``).
        discretization: Optional Section 4.3.3 interval widths.
    """

    #: Paper name of the mapping, e.g. ``"attribute-split"``.
    name: str = "abstract"

    def __init__(
        self,
        space: EventSpace,
        keyspace: KeySpace,
        discretization: Discretization | None = None,
    ) -> None:
        self._space = space
        self._keyspace = keyspace
        self._discretization = discretization or Discretization.none(space.dimensions)
        if len(self._discretization.widths) != space.dimensions:
            raise MappingError(
                f"discretization has {len(self._discretization.widths)} widths "
                f"for a {space.dimensions}-dimensional space"
            )

    @property
    def space(self) -> EventSpace:
        """The event space this mapping is defined over."""
        return self._space

    @property
    def keyspace(self) -> KeySpace:
        """The overlay key space this mapping targets."""
        return self._keyspace

    @property
    def discretization(self) -> Discretization:
        """The active interval widths (width 1 = no discretization)."""
        return self._discretization

    # -- the SK and EK functions ------------------------------------------

    @abc.abstractmethod
    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        """SK(σ), structured into the mapping's natural key groups.

        Each group is a sorted tuple of keys that form one rendezvous
        *range* on the ring (one per hashed constraint for Mapping 1,
        a single group for Mapping 3, ...).  The grouping feeds the
        notification-collecting optimization of Section 4.3.2, which
        aggregates along a contiguous rendezvous range toward its
        middle "agent" node.
        """

    @abc.abstractmethod
    def event_keys(self, event: Event) -> frozenset[int]:
        """EK(e): the rendezvous keys that must match this event."""

    def subscription_keys(self, subscription: Subscription) -> frozenset[int]:
        """SK(σ) as a flat key set (union of the groups)."""
        keys: set[int] = set()
        for group in self.subscription_key_groups(subscription):
            keys.update(group)
        return frozenset(keys)

    # -- shared hash machinery ---------------------------------------------

    def _domain_size(self, attribute: int) -> int:
        return self._space.attributes[attribute].size

    def _hash_value(self, attribute: int, value: int, bits: int) -> int:
        """hᵢ(x) = ⌊q(x) · 2ˡ / |Ωᵢ|⌋ with the discretization quantizer q."""
        quantized = self._discretization.quantize(attribute, value)
        return (quantized << bits) // self._domain_size(attribute)

    def _constraint_image(
        self, attribute: int, low: int, high: int, bits: int
    ) -> tuple[int, ...]:
        """Hᵢ over the inclusive value range ``[low, high]``, sorted.

        Two regimes keep this O(output size):

        - *sparse* (interval width spans >= 1 key): enumerate interval
          starts — consecutive starts may skip keys, which is exactly
          the point of discretization;
        - *dense* (many values per key): the image of a contiguous
          value range under the monotone scaling hash is a contiguous
          key range.
        """
        width = self._discretization.widths[attribute]
        domain = self._domain_size(attribute)
        first_interval = low // width
        last_interval = high // width
        if width << bits >= domain:
            keys = {
                (interval * width << bits) // domain
                for interval in range(first_interval, last_interval + 1)
            }
            return tuple(sorted(keys))
        first_key = (first_interval * width << bits) // domain
        last_key = (last_interval * width << bits) // domain
        return tuple(range(first_key, last_key + 1))

    def check_intersection_rule(self, event: Event, subscription: Subscription) -> bool:
        """Verify EK(e) ∩ SK(σ) ≠ ∅ for a matching pair (testing aid)."""
        if not subscription.matches(event):
            return True
        return bool(self.event_keys(event) & self.subscription_keys(subscription))
