"""Event-space partitioning as a baseline mapping (related work [16]).

Section 2 contrasts the paper's architecture with *event space
partitioning* (Wang et al., DISC'02): divide the event space into a set
of rectangular partitions and assign each partition to one node, so
that each event is forwarded to exactly one place.  Expressed in this
library's terms it is simply another stateless ak-mapping — each
d-dimensional grid cell hashes to one overlay key; ``EK(e)`` is the
single cell containing the event, ``SK(σ)`` is every cell the
subscription's box overlaps — which makes it directly comparable to
the paper's three mappings under identical harnesses.

Characteristics (mirroring the paper's Section 2 discussion): minimal
event traffic (one rendezvous per event, like Key-Space-Split), but
subscription fan-out grows with the product of per-dimension overlaps
and, unlike Key-Space-Split, the grid resolution is a free parameter
decoupled from the key-space width.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.subscriptions import Subscription
from repro.errors import MappingError

#: Refuse to materialize more cells than this per subscription.
MAX_CELLS_PER_SUBSCRIPTION = 1 << 20


class EventSpacePartitionMapping(AKMapping):
    """The related-work baseline: a fixed rectangular grid of partitions.

    Args:
        space: Event space.
        keyspace: Overlay key space.
        cells_per_dimension: Grid resolution G; the event space is cut
            into ``G**d`` cells.  Following the sizing logic of Section
            4.3.3, choose G so the total cell count comfortably exceeds
            the node count.
        discretization: Accepted for interface compatibility; the grid
            itself is the discretization, so this must be the identity.
    """

    name = "event-space-partition"

    def __init__(self, space, keyspace, cells_per_dimension: int = 16,
                 discretization=None):
        super().__init__(space, keyspace, discretization)
        if any(width != 1 for width in self.discretization.widths):
            raise MappingError(
                "event-space-partition defines its own grid; combine via "
                "cells_per_dimension instead of a discretization"
            )
        if cells_per_dimension < 1:
            raise MappingError("cells_per_dimension must be >= 1")
        self._cells = cells_per_dimension
        self._widths = [
            max(1, -(-attribute.size // cells_per_dimension))  # ceil
            for attribute in space.attributes
        ]

    @property
    def cells_per_dimension(self) -> int:
        """Grid resolution G."""
        return self._cells

    def _cell_of(self, attribute: int, value: int) -> int:
        return min(self._cells - 1, value // self._widths[attribute])

    def _cell_key(self, cell: tuple[int, ...]) -> int:
        """Hash a cell coordinate onto the key space (uniform spread)."""
        digest = hashlib.sha1(repr(cell).encode()).digest()
        return int.from_bytes(digest[:8], "big") % self._keyspace.size

    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        per_dimension: list[range] = []
        expected = 1
        for attribute in range(self._space.dimensions):
            constraint = subscription.effective_constraint(attribute)
            first = self._cell_of(attribute, constraint.low)
            last = self._cell_of(attribute, constraint.high)
            expected *= last - first + 1
            if expected > MAX_CELLS_PER_SUBSCRIPTION:
                raise MappingError(
                    "subscription overlaps more than "
                    f"{MAX_CELLS_PER_SUBSCRIPTION} partitions; use a coarser grid"
                )
            per_dimension.append(range(first, last + 1))
        keys = sorted(
            {self._cell_key(cell) for cell in itertools.product(*per_dimension)}
        )
        # Hashed cells are scattered on the ring: no contiguous range to
        # collect along, so each key forms its own group (the collecting
        # optimization degenerates to plain buffering, as it should).
        return tuple((key,) for key in keys)

    def event_keys(self, event: Event) -> frozenset[int]:
        cell = tuple(
            self._cell_of(attribute, value)
            for attribute, value in enumerate(event.values)
        )
        return frozenset((self._cell_key(cell),))
