"""Stateless ak-mappings: subscriptions/events -> overlay keys (Section 4.2).

The CB-pub/sub layer maps the event space into the universe of keys
through two functions, ``SK: Σ -> 2^K`` and ``EK: Ω -> 2^K``, which must
satisfy the *mapping intersection rule*: if ``e ∈ σ`` then
``EK(e) ∩ SK(σ) ≠ ∅``.  Three concrete mappings are provided:

- :class:`~repro.core.mappings.attribute_split.AttributeSplitMapping`
  (Mapping 1): hash each constraint independently; events hash by one
  designated attribute.
- :class:`~repro.core.mappings.keyspace_split.KeySpaceSplitMapping`
  (Mapping 2): partition the key bits across attributes; events map to
  a single concatenated key.
- :class:`~repro.core.mappings.selective_attribute.SelectiveAttributeMapping`
  (Mapping 3): map a subscription by its most selective constraint
  only; events map by every attribute (d keys).

All mappings share the paper's scaling hash ``hᵢ(x) = ⌊x·2ˡ/|Ωᵢ|⌋`` and
support the *discretization* optimization of Section 4.3.3 (map
fixed-width value intervals, rather than single values, to keys).
"""

from repro.core.mappings.base import AKMapping, Discretization
from repro.core.mappings.adaptive import HotspotAdaptiveMapping
from repro.core.mappings.attribute_split import AttributeSplitMapping
from repro.core.mappings.event_space_partition import EventSpacePartitionMapping
from repro.core.mappings.keyspace_split import KeySpaceSplitMapping
from repro.core.mappings.selective_attribute import SelectiveAttributeMapping

_MAPPINGS = {
    "attribute-split": AttributeSplitMapping,
    "keyspace-split": KeySpaceSplitMapping,
    "selective-attribute": SelectiveAttributeMapping,
    "event-space-partition": EventSpacePartitionMapping,
}


def make_mapping(name, space, keyspace, **kwargs):
    """Factory by paper name: ``attribute-split`` (Mapping 1),
    ``keyspace-split`` (Mapping 2) or ``selective-attribute`` (Mapping 3).
    """
    try:
        cls = _MAPPINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown mapping {name!r}; choose from {sorted(_MAPPINGS)}"
        ) from None
    return cls(space, keyspace, **kwargs)


__all__ = [
    "AKMapping",
    "Discretization",
    "AttributeSplitMapping",
    "HotspotAdaptiveMapping",
    "EventSpacePartitionMapping",
    "KeySpaceSplitMapping",
    "SelectiveAttributeMapping",
    "make_mapping",
]
