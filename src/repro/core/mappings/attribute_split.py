"""Mapping 1: Attribute-Split (Section 4.2).

Each constraint hashes independently to a set of keys with ``l = m``;
the subscription goes to the union ``SK(σ) = ∪ᵢ Hᵢ(σ.cᵢ)``.  An event
hashes by just one designated attribute, ``EK(e) = {hᵢ(e.aᵢ)}``, which
suffices for the intersection rule because σ is stored under *every*
attribute's image.

Cost profile: one key per publication, but
``O(Σᵢ ⌈rᵢ·2ᵐ/|Ωᵢ|⌉)`` keys per subscription — about 10x Mapping 3 for
the paper's 4-attribute workload — which is what makes the m-cast
primitive so valuable here (Fig. 5).

Unconstrained attributes of partially defined subscriptions are treated
as full-domain ranges (the subscription must be discoverable via any
attribute the event may hash by).
"""

from __future__ import annotations

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.subscriptions import Subscription
from repro.errors import MappingError


class AttributeSplitMapping(AKMapping):
    """Mapping 1 of the paper.

    Args:
        space: Event space.
        keyspace: Overlay key space.
        discretization: Optional Section 4.3.3 interval widths.
        event_attribute: The attribute index events hash by.  Any fixed
            choice satisfies the intersection rule; it must simply be
            agreed system-wide (the mapping is static, Section 4.2).
    """

    name = "attribute-split"

    def __init__(self, space, keyspace, discretization=None, event_attribute: int = 0):
        super().__init__(space, keyspace, discretization)
        if not 0 <= event_attribute < space.dimensions:
            raise MappingError(
                f"event attribute {event_attribute} outside "
                f"{space.dimensions}-dimensional space"
            )
        self._event_attribute = event_attribute

    @property
    def event_attribute(self) -> int:
        """The attribute index used by EK."""
        return self._event_attribute

    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        bits = self._keyspace.bits
        groups = []
        for attribute in range(self._space.dimensions):
            constraint = subscription.effective_constraint(attribute)
            groups.append(
                self._constraint_image(
                    attribute, constraint.low, constraint.high, bits
                )
            )
        return tuple(groups)

    def event_keys(self, event: Event) -> frozenset[int]:
        bits = self._keyspace.bits
        key = self._hash_value(
            self._event_attribute, event.values[self._event_attribute], bits
        )
        return frozenset((key,))
