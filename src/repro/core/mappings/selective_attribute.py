"""Mapping 3: Selective-Attribute (Section 4.2).

A subscription maps only by its *most selective* constraint — the one
with minimal ``rᵢ/|Ωᵢ|`` — so ``SK(σ) = H_s(σ.c_s)`` with ``l = m``.
Since the event side cannot know which attribute was selective for any
given subscription, an event maps by **every** attribute:
``EK(e) = ∪ᵢ {hᵢ(e.aᵢ)}`` (d keys in the worst case).

This is at least d times cheaper than Attribute-Split on the
subscription side, collapses to a single key when an equality/selective
constraint is present, and is the least sensitive mapping to partially
defined subscriptions — at the price of d rendezvous per publication,
which hurts when the workload is publication-dominated (Section 4.2).
"""

from __future__ import annotations

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.subscriptions import Subscription
from repro.errors import MappingError


class SelectiveAttributeMapping(AKMapping):
    """Mapping 3 of the paper."""

    name = "selective-attribute"

    def subscription_key_groups(
        self, subscription: Subscription
    ) -> tuple[tuple[int, ...], ...]:
        if not subscription.constraints:
            raise MappingError(
                "selective-attribute cannot map a subscription with no constraints"
            )
        bits = self._keyspace.bits
        selective = subscription.most_selective_attribute()
        constraint = subscription.constraint_on(selective)
        assert constraint is not None
        group = self._constraint_image(
            selective, constraint.low, constraint.high, bits
        )
        return (group,)

    def event_keys(self, event: Event) -> frozenset[int]:
        bits = self._keyspace.bits
        return frozenset(
            self._hash_value(attribute, value, bits)
            for attribute, value in enumerate(event.values)
        )
