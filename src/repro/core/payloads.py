"""Application payloads carried inside overlay messages.

The CB-pub/sub layer exchanges five payload types through the overlay:
subscription installs/removals toward SK(σ), publications toward EK(e),
notifications back to subscribers, neighbor-to-neighbor COLLECT
aggregation (Section 4.3.2), and replication/state-transfer control
traffic (Section 4.1).

All payload classes are frozen *slotted* dataclasses: at scale-bench
populations (10^5 nodes, 10^6 publications) the per-instance ``__dict__``
of the notification/publication hot classes dominated heap growth, and
none of them memoizes through ``__dict__`` (unlike ``Subscription``,
which must stay unslotted for its ``most_selective_attribute`` cache).
"""

from __future__ import annotations

import dataclasses

from repro.core.events import Event
from repro.core.subscriptions import Subscription


@dataclasses.dataclass(frozen=True, slots=True)
class SubscribePayload:
    """Install σ at its rendezvous keys.

    Attributes:
        subscription: The subscription being installed.
        subscriber: Overlay id of the subscribing node (stored with σ so
            rendezvous nodes can route notifications back, Section 4.1).
        ttl: Seconds until automatic expiration at the rendezvous, or
            None for no expiry (the paper's Fig. 6 sweeps this).
        groups: SK(σ) in the mapping's natural key groups; rendezvous
            nodes derive the collecting agent (middle of their group)
            from this (Section 4.3.2).
    """

    subscription: Subscription
    subscriber: int
    ttl: float | None
    groups: tuple[tuple[int, ...], ...]


@dataclasses.dataclass(frozen=True, slots=True)
class UnsubscribePayload:
    """Remove a subscription from its rendezvous keys."""

    subscription_id: int
    subscriber: int


@dataclasses.dataclass(frozen=True, slots=True)
class PublishPayload:
    """An event on its way to the rendezvous keys EK(e).

    Attributes:
        event: The published event.
        publisher: Overlay id of the publishing node.
        published_at: Simulated publish time; carried through matching
            so subscriber-side delivery delay can be measured (the
            latency cost of buffering, Section 4.3.2).
    """

    event: Event
    publisher: int
    published_at: float = 0.0


@dataclasses.dataclass(frozen=True, slots=True)
class Notification:
    """One matched (event, subscription) pair."""

    event: Event
    subscription_id: int
    matched_at: int
    """Overlay id of the rendezvous node that found the match."""

    published_at: float = 0.0
    """When the matched event was published (for delay accounting)."""


@dataclasses.dataclass(frozen=True, slots=True)
class NotifyPayload:
    """A batch of notifications for one subscriber node.

    Without buffering the batch holds a single notification; buffering
    and collecting (Section 4.3.2) pack several matches per message.
    """

    subscriber: int
    notifications: tuple[Notification, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class CollectPayload:
    """Neighbor-hop aggregation toward a subscription's agent node.

    Every node in a subscription's rendezvous range periodically sends
    its detected matches one hop toward the middle of the range; the
    middle node (the *agent*) forwards the collected batch to the
    subscriber (Section 4.3.2).
    """

    subscriber: int
    subscription_id: int
    agent_key: int
    notifications: tuple[Notification, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class StoredEntrySnapshot:
    """Serializable image of a stored subscription (replication, churn).

    Attributes:
        payload: The original install payload.
        keys_here: Rendezvous keys of σ held by the snapshotting node.
        expire_at: Absolute expiry time, or None.
    """

    payload: SubscribePayload
    keys_here: tuple[int, ...]
    expire_at: float | None


@dataclasses.dataclass(frozen=True, slots=True)
class StateTransferPayload:
    """Bulk move of stored subscriptions between ring neighbors."""

    entries: tuple[StoredEntrySnapshot, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class ReplicaPayload:
    """Replica push: back up ``owner``'s entries at ring successors.

    Replication walks the successor chain: each receiver stores the
    entries under ``owner`` and, while ``remaining > 1``, forwards one
    more hop with ``remaining - 1`` (Section 4.1: state replicated on a
    small number of neighbors).
    """

    owner: int
    entries: tuple[StoredEntrySnapshot, ...]
    remaining: int = 1


@dataclasses.dataclass(frozen=True, slots=True)
class ReplicaRemovePayload:
    """Propagate an unsubscription to the owner's replicas."""

    owner: int
    subscription_id: int
    remaining: int = 1
