"""The event data model (Section 3.2).

An event is a set of attribute-value pairs over a ``d``-dimensional
event space Ω.  Following the paper's evaluation (and footnote 2), all
attribute values are integers: string values are reduced to numbers by
hashing (:func:`hash_string_value`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools

from repro.errors import DataModelError

_event_ids = itertools.count(1)


def hash_string_value(text: str, domain_size: int) -> int:
    """Reduce a string to an integer attribute value (paper footnote 2)."""
    digest = hashlib.sha1(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") % domain_size


@dataclasses.dataclass(frozen=True)
class Attribute:
    """One dimension Ωᵢ of the event space.

    Attributes:
        name: Attribute name (a simple character string).
        size: Domain size |Ωᵢ|; values are integers in ``[0, size)``.
            The paper's workload uses ``size = 1_000_001`` (values range
            from 0 to ATTR_MAX = 1,000,000 inclusive).
        kind: ``"int"`` (the default) or ``"string"``.  A string
            attribute accepts ``str`` values and reduces them to the
            numeric domain by hashing — the paper's footnote 2.  Range
            constraints are meaningless over hashed strings, so only
            equality constraints are allowed on string attributes.
    """

    name: str
    size: int
    kind: str = "int"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise DataModelError(f"attribute {self.name!r} has empty domain")
        if not self.name:
            raise DataModelError("attribute name must be non-empty")
        if self.kind not in ("int", "string"):
            raise DataModelError(
                f"attribute kind must be 'int' or 'string', got {self.kind!r}"
            )

    @property
    def is_string(self) -> bool:
        """True for hashed-string attributes (footnote 2)."""
        return self.kind == "string"

    def coerce(self, value: "int | str") -> int:
        """Reduce an application value to the numeric domain.

        Strings hash onto ``[0, size)`` for string attributes; integers
        pass through validation (so replayed traces, which store the
        numeric form, stay loadable).
        """
        if isinstance(value, str):
            if not self.is_string:
                raise DataModelError(
                    f"attribute {self.name!r} is numeric; got string "
                    f"value {value!r}"
                )
            return hash_string_value(value, self.size)
        return self.validate_value(value)

    def validate_value(self, value: int) -> int:
        """Return ``value`` if it lies in the domain, else raise."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise DataModelError(
                f"attribute {self.name!r} expects an int, got "
                f"{type(value).__name__}"
            )
        if not 0 <= value < self.size:
            raise DataModelError(
                f"value {value} outside domain [0, {self.size}) of "
                f"attribute {self.name!r}"
            )
        return value


@dataclasses.dataclass(frozen=True)
class EventSpace:
    """The d-dimensional event space Ω = Ω₁ × ... × Ω_d.

    Example:
        >>> space = EventSpace.uniform(("price", "volume"), 1_000_001)
        >>> space.dimensions
        2
    """

    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise DataModelError("event space needs at least one attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise DataModelError(f"duplicate attribute names in {names}")

    @classmethod
    def uniform(cls, names: tuple[str, ...], size: int) -> "EventSpace":
        """An event space where every attribute has the same domain size."""
        return cls(tuple(Attribute(name, size) for name in names))

    @property
    def dimensions(self) -> int:
        """Number of attributes d."""
        return len(self.attributes)

    def index_of(self, name: str) -> int:
        """Position of the attribute with the given name."""
        for index, attribute in enumerate(self.attributes):
            if attribute.name == name:
                return index
        raise DataModelError(f"no attribute named {name!r}")

    def make_event(self, **values: "int | str") -> "Event":
        """Build an event from per-attribute keyword values.

        Every attribute of the space must be given a value: events are
        complete points of Ω (only *subscriptions* may be partial).
        String attributes accept ``str`` values (hashed per footnote 2).
        """
        missing = [a.name for a in self.attributes if a.name not in values]
        if missing:
            raise DataModelError(f"event missing values for {missing}")
        extra = [name for name in values if all(a.name != name for a in self.attributes)]
        if extra:
            raise DataModelError(f"unknown attributes {extra}")
        ordered = tuple(
            attribute.coerce(values[attribute.name])
            for attribute in self.attributes
        )
        return Event(space=self, values=ordered)


@dataclasses.dataclass(frozen=True)
class Event:
    """A point of the event space: one value per attribute.

    Attributes:
        space: The event space this event belongs to.
        values: Attribute values, positionally aligned with
            ``space.attributes``.
        event_id: Unique id for tracing/deduplication.
    """

    space: EventSpace
    values: tuple[int, ...]
    event_id: int = dataclasses.field(default_factory=lambda: next(_event_ids))

    def __post_init__(self) -> None:
        if len(self.values) != self.space.dimensions:
            raise DataModelError(
                f"event has {len(self.values)} values for "
                f"{self.space.dimensions}-dimensional space"
            )
        for attribute, value in zip(self.space.attributes, self.values):
            attribute.validate_value(value)

    def value(self, name: str) -> int:
        """The value of the named attribute."""
        return self.values[self.space.index_of(name)]

    def __getitem__(self, name: str) -> int:
        return self.value(name)

    def as_dict(self) -> dict[str, int]:
        """Attribute-name to value view of this event."""
        return {
            attribute.name: value
            for attribute, value in zip(self.space.attributes, self.values)
        }
