"""Application-side client facade.

:class:`PubSubClient` wraps one node's view of the system with the
``sub()`` / ``pub()`` / ``notify()`` surface of Fig. 2, and adds the
disjunction support the data model promises: Section 3.2 notes that
"disjunctive constraints can be treated as separate subscriptions" —
the client performs that splitting, subscribes each disjunct, and
de-duplicates notifications so the application sees each matching event
once per *disjunction*, not once per disjunct.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import OrderedDict
from typing import Callable, Iterable

from repro.core.events import Event
from repro.core.payloads import Notification
from repro.core.subscriptions import Subscription
from repro.core.system import PubSubSystem
from repro.errors import DataModelError
from repro.sim.process import PeriodicTimer

_disjunction_ids = itertools.count(1)

#: Remembered (event, disjunction) pairs for de-duplication.
DEDUP_LIMIT = 8192


@dataclasses.dataclass(frozen=True)
class Disjunction:
    """An OR of conjunctive subscriptions (one logical interest).

    Attributes:
        disjuncts: The member subscriptions; the disjunction matches an
            event iff any member does.
        disjunction_id: Identity used for notification de-duplication
            and unsubscription.
    """

    disjuncts: tuple[Subscription, ...]
    disjunction_id: int = dataclasses.field(
        default_factory=lambda: next(_disjunction_ids)
    )

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise DataModelError("a disjunction needs at least one disjunct")
        spaces = {id(s.space) for s in self.disjuncts}
        if len(spaces) > 1 and len({s.space for s in self.disjuncts}) > 1:
            raise DataModelError("disjuncts must share one event space")

    def matches(self, event: Event) -> bool:
        """True iff any disjunct matches."""
        return any(s.matches(event) for s in self.disjuncts)


MatchHandler = Callable[[Event, "Disjunction | Subscription"], None]


class PubSubClient:
    """One application endpoint bound to an overlay node.

    Example:
        client = PubSubClient(system, node_id=42)
        client.on_match(lambda event, interest: print(event))
        client.subscribe(sigma)
        client.subscribe_any([sigma_a, sigma_b])   # disjunction
        client.publish(event)
    """

    def __init__(self, system: PubSubSystem, node_id: int) -> None:
        self._system = system
        self._node_id = node_id
        self._handlers: list[MatchHandler] = []
        self._subscriptions: dict[int, Subscription] = {}
        self._disjunctions: dict[int, Disjunction] = {}
        self._disjunct_owner: dict[int, int] = {}  # subscription id -> disjunction id
        self._seen: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._renew_timers: dict[int, PeriodicTimer] = {}
        system.set_notify_handler(node_id, self._on_notifications)

    @property
    def node_id(self) -> int:
        """The overlay node this client is attached to."""
        return self._node_id

    @property
    def active_subscriptions(self) -> list[Subscription]:
        """Plain (non-disjunct) subscriptions currently installed."""
        return list(self._subscriptions.values())

    @property
    def active_disjunctions(self) -> list[Disjunction]:
        """Disjunctions currently installed."""
        return list(self._disjunctions.values())

    def on_match(self, handler: MatchHandler) -> None:
        """Register an application callback for matching events."""
        self._handlers.append(handler)

    # -- subscribing -------------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        ttl: float | None = None,
        auto_renew: bool = False,
    ) -> None:
        """Install one conjunctive subscription.

        Args:
            subscription: The subscription.
            ttl: Rendezvous expiration; None falls back to the system
                default.
            auto_renew: Re-send the subscription at 80% of its TTL so it
                never expires while this client holds it — the lease
                pattern real deployments use with expiration-based
                garbage collection (the paper simulates unsubscriptions
                purely via expiration; leases are the complement).
                Requires a finite effective TTL.
        """
        self._subscriptions[subscription.subscription_id] = subscription
        self._system.subscribe(self._node_id, subscription, ttl=ttl)
        if auto_renew:
            effective = ttl if ttl is not None else self._system.config.default_ttl
            if effective is None:
                raise DataModelError("auto_renew requires a finite TTL")
            timer = PeriodicTimer(
                self._system.sim,
                0.8 * effective,
                lambda: self._renew(subscription, ttl),
            )
            timer.start()
            self._renew_timers[subscription.subscription_id] = timer

    def _renew(self, subscription: Subscription, ttl: float | None) -> None:
        if subscription.subscription_id not in self._subscriptions:
            return
        self._system.subscribe(self._node_id, subscription, ttl=ttl)

    def subscribe_any(
        self, disjuncts: Iterable[Subscription], ttl: float | None = None
    ) -> Disjunction:
        """Install a disjunction: each disjunct becomes a subscription.

        Returns the disjunction handle (needed to unsubscribe it).
        """
        disjunction = Disjunction(disjuncts=tuple(disjuncts))
        self._disjunctions[disjunction.disjunction_id] = disjunction
        for subscription in disjunction.disjuncts:
            self._disjunct_owner[subscription.subscription_id] = (
                disjunction.disjunction_id
            )
            self._system.subscribe(self._node_id, subscription, ttl=ttl)
        return disjunction

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a plain subscription (cancelling any renewal lease)."""
        self._subscriptions.pop(subscription.subscription_id, None)
        timer = self._renew_timers.pop(subscription.subscription_id, None)
        if timer is not None:
            timer.stop()
        self._system.unsubscribe(self._node_id, subscription)

    def unsubscribe_any(self, disjunction: Disjunction) -> None:
        """Remove every disjunct of a disjunction."""
        self._disjunctions.pop(disjunction.disjunction_id, None)
        for subscription in disjunction.disjuncts:
            self._disjunct_owner.pop(subscription.subscription_id, None)
            self._system.unsubscribe(self._node_id, subscription)

    # -- publishing -----------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Publish an event from this node."""
        self._system.publish(self._node_id, event)

    # -- notification plumbing ---------------------------------------------------

    def _on_notifications(
        self, node_id: int, notifications: list[Notification]
    ) -> None:
        for notification in notifications:
            sid = notification.subscription_id
            disjunction_id = self._disjunct_owner.get(sid)
            if disjunction_id is not None:
                interest: Disjunction | Subscription | None = (
                    self._disjunctions.get(disjunction_id)
                )
                dedup_key = (notification.event.event_id, disjunction_id)
            else:
                interest = self._subscriptions.get(sid)
                dedup_key = (notification.event.event_id, -sid)
            if interest is None:
                continue  # already unsubscribed locally
            if dedup_key in self._seen:
                continue
            self._seen[dedup_key] = None
            while len(self._seen) > DEDUP_LIMIT:
                self._seen.popitem(last=False)
            for handler in self._handlers:
                handler(notification.event, interest)
