"""The rendezvous subscription store (Section 4.1).

Each node stores the subscriptions whose SK keys it covers, remembers
the subscriber and the keys that put the subscription here, enforces
expiration times (the paper's stand-in for unsubscriptions, Section
5.1), and matches incoming events against the live entries.
"""

from __future__ import annotations

import dataclasses

from repro.core.events import Event, EventSpace
from repro.core.payloads import StoredEntrySnapshot, SubscribePayload
from repro.core.subscriptions import Subscription
from repro.matching import (
    BruteForceMatcher,
    GridIndexMatcher,
    Matcher,
    RadixBitmapMatcher,
)


@dataclasses.dataclass
class StoredSubscription:
    """One subscription resident at a rendezvous node.

    Attributes:
        payload: The install payload (subscription, subscriber, groups).
        keys_here: The subset of SK(σ) covered by this node.  Tracked so
            that churn can move exactly the keys that change ownership
            (Section 4.1) and so the collecting agent can be derived.
        expire_at: Absolute simulated expiry time, or None.
    """

    payload: SubscribePayload
    keys_here: set[int]
    expire_at: float | None

    @property
    def subscription(self) -> Subscription:
        """The stored subscription."""
        return self.payload.subscription

    @property
    def subscriber(self) -> int:
        """Overlay id of the subscribing node."""
        return self.payload.subscriber

    def expired(self, now: float) -> bool:
        """True once the expiry time has passed."""
        return self.expire_at is not None and now >= self.expire_at

    def snapshot(self) -> StoredEntrySnapshot:
        """Serializable image for replication and state transfer."""
        return StoredEntrySnapshot(
            payload=self.payload,
            keys_here=tuple(sorted(self.keys_here)),
            expire_at=self.expire_at,
        )


class SubscriptionStore:
    """Subscription storage + matching for one rendezvous node.

    Args:
        space: The event space (needed when an indexed matcher is used).
        matcher: ``"brute"``, ``"grid"``, ``"radix"``, or ``"vector"``
            — which matching engine backs the store (``"radix"``
            favors equality-dense subscription populations;
            ``"vector"`` is the numpy-verified grid engine, falling
            back to ``"grid"`` when numpy is unavailable).
    """

    def __init__(self, space: EventSpace, matcher: str = "brute") -> None:
        self._entries: dict[int, StoredSubscription] = {}
        if matcher == "grid":
            self._matcher: Matcher = GridIndexMatcher(space)
        elif matcher == "radix":
            self._matcher = RadixBitmapMatcher(space)
        elif matcher == "vector":
            from repro.matching.vector import make_vector_matcher

            self._matcher = make_vector_matcher(space)
        elif matcher == "brute":
            self._matcher = BruteForceMatcher()
        else:
            raise ValueError(f"unknown matcher {matcher!r}")

    def attach_match_stats(self, stats) -> None:
        """Attribute this store's matcher work to ``stats``.

        ``stats`` is a :class:`~repro.telemetry.load.MatchWork` handle;
        the matching engines add candidate/verify/match counts to it on
        every ``match()`` call once attached (and pay a single identity
        check when not).
        """
        self._matcher.work = stats

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._entries

    def entries(self) -> list[StoredSubscription]:
        """All resident entries (including not-yet-purged expired ones)."""
        return list(self._entries.values())

    def get(self, subscription_id: int) -> StoredSubscription | None:
        """The entry for a subscription id, if resident."""
        return self._entries.get(subscription_id)

    def put(
        self,
        payload: SubscribePayload,
        keys_here: set[int],
        now: float,
        expire_at: float | None = None,
    ) -> StoredSubscription:
        """Install (or refresh) a subscription.

        Re-installs are idempotent on the matcher and merge the covered
        key sets — with per-key unicast propagation (the aggressive
        baseline) the same node legitimately receives one copy per
        covered key.  A refresh restarts the TTL clock.
        """
        sid = payload.subscription.subscription_id
        if expire_at is None and payload.ttl is not None:
            expire_at = now + payload.ttl
        entry = self._entries.get(sid)
        if entry is None:
            entry = StoredSubscription(
                payload=payload, keys_here=set(keys_here), expire_at=expire_at
            )
            self._entries[sid] = entry
            self._matcher.add(payload.subscription)
        else:
            entry.keys_here.update(keys_here)
            entry.expire_at = expire_at
        return entry

    def restore(self, snapshot: StoredEntrySnapshot) -> StoredSubscription:
        """Install from a snapshot, preserving its absolute expiry."""
        return self.put(
            snapshot.payload,
            keys_here=set(snapshot.keys_here),
            now=0.0,
            expire_at=snapshot.expire_at,
        )

    def remove(self, subscription_id: int) -> bool:
        """Drop a subscription entirely; True if it was resident."""
        entry = self._entries.pop(subscription_id, None)
        if entry is None:
            return False
        self._matcher.remove(subscription_id)
        return True

    def remove_keys(
        self, subscription_id: int, keys: set[int]
    ) -> StoredSubscription | None:
        """Detach ``keys`` from an entry, dropping it when none remain.

        Returns the (possibly removed) entry so churn handlers can ship
        it to the new owner.
        """
        entry = self._entries.get(subscription_id)
        if entry is None:
            return None
        entry.keys_here -= keys
        if not entry.keys_here:
            self.remove(subscription_id)
        return entry

    def purge_expired(self, now: float) -> int:
        """Drop every expired entry; returns how many were removed."""
        # Storage snapshots call this across the whole ring; at scale
        # almost every store is empty, so the early-out is the
        # difference between O(samples) and O(samples * nodes).
        if not self._entries:
            return 0
        expired = [sid for sid, e in self._entries.items() if e.expired(now)]
        for sid in expired:
            self.remove(sid)
        return len(expired)

    def live_count(self, now: float) -> int:
        """Number of non-expired entries (purging as a side effect)."""
        self.purge_expired(now)
        return len(self._entries)

    def match(self, event: Event, now: float) -> list[StoredSubscription]:
        """Live entries whose subscription the event satisfies."""
        matched = self._matcher.match(event)
        result = []
        for subscription in matched:
            entry = self._entries[subscription.subscription_id]
            if entry.expired(now):
                self.remove(subscription.subscription_id)
                continue
            result.append(entry)
        return result
