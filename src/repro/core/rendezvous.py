"""The rendezvous subscription store (Section 4.1).

Each node stores the subscriptions whose SK keys it covers, remembers
the subscriber and the keys that put the subscription here, enforces
expiration times (the paper's stand-in for unsubscriptions, Section
5.1), and matches incoming events against the live entries.
"""

from __future__ import annotations

import dataclasses

from repro.core.events import Event, EventSpace
from repro.core.payloads import StoredEntrySnapshot, SubscribePayload
from repro.core.subscriptions import Subscription
from repro.matching import (
    BruteForceMatcher,
    CoveringIndex,
    GridIndexMatcher,
    Matcher,
    RadixBitmapMatcher,
)


@dataclasses.dataclass
class StoredSubscription:
    """One subscription resident at a rendezvous node.

    Attributes:
        payload: The install payload (subscription, subscriber, groups).
        keys_here: The subset of SK(σ) covered by this node.  Tracked so
            that churn can move exactly the keys that change ownership
            (Section 4.1) and so the collecting agent can be derived.
        expire_at: Absolute simulated expiry time, or None.
    """

    payload: SubscribePayload
    keys_here: set[int]
    expire_at: float | None

    @property
    def subscription(self) -> Subscription:
        """The stored subscription."""
        return self.payload.subscription

    @property
    def subscriber(self) -> int:
        """Overlay id of the subscribing node."""
        return self.payload.subscriber

    def expired(self, now: float) -> bool:
        """True once the expiry time has passed."""
        return self.expire_at is not None and now >= self.expire_at

    def snapshot(self) -> StoredEntrySnapshot:
        """Serializable image for replication and state transfer."""
        return StoredEntrySnapshot(
            payload=self.payload,
            keys_here=tuple(sorted(self.keys_here)),
            expire_at=self.expire_at,
        )


class SubscriptionStore:
    """Subscription storage + matching for one rendezvous node.

    Args:
        space: The event space (needed when an indexed matcher is used).
        matcher: ``"brute"``, ``"grid"``, ``"radix"``, or ``"vector"``
            — which matching engine backs the store (``"radix"``
            favors equality-dense subscription populations;
            ``"vector"`` is the numpy-verified grid engine, falling
            back to ``"grid"`` when numpy is unavailable).
        covering: Collapse covered subscriptions under a
            :class:`~repro.matching.covering.CoveringIndex` so the
            engine only sees the least-covered roots (see
            :meth:`match`).  ``None`` (the default) enables covering
            for every engine except ``"brute"``, which stays the
            uncollapsed oracle the others are audited against.
    """

    def __init__(
        self,
        space: EventSpace,
        matcher: str = "brute",
        covering: bool | None = None,
    ) -> None:
        self._entries: dict[int, StoredSubscription] = {}
        if matcher == "grid":
            self._matcher: Matcher = GridIndexMatcher(space)
        elif matcher == "radix":
            self._matcher = RadixBitmapMatcher(space)
        elif matcher == "vector":
            from repro.matching.vector import make_vector_matcher

            self._matcher = make_vector_matcher(space)
        elif matcher == "brute":
            self._matcher = BruteForceMatcher()
        else:
            raise ValueError(f"unknown matcher {matcher!r}")
        if covering is None:
            covering = matcher != "brute"
        self._covering = CoveringIndex() if covering else None

    @property
    def covering(self) -> CoveringIndex | None:
        """The covering index, or None when running uncollapsed."""
        return self._covering

    def attach_match_stats(self, stats) -> None:
        """Attribute this store's matcher work to ``stats``.

        ``stats`` is a :class:`~repro.telemetry.load.MatchWork` handle;
        the matching engines add candidate/verify/match counts to it on
        every ``match()`` call once attached (and pay a single identity
        check when not).  The covering gauges are synced into the same
        handle on every install/remove.
        """
        self._matcher.work = stats
        if stats is not None and self._covering is not None:
            self._sync_cover_stats()

    def _sync_cover_stats(self) -> None:
        """Mirror the covering gauges into the attached work handle."""
        work = self._matcher.work
        if work is not None:
            covering = self._covering
            work.cover_roots = covering.root_count
            work.cover_collapsed = covering.collapsed_total
            work.cover_promotions = covering.promotions_total

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._entries

    def entries(self) -> list[StoredSubscription]:
        """All resident entries (including not-yet-purged expired ones)."""
        return list(self._entries.values())

    def get(self, subscription_id: int) -> StoredSubscription | None:
        """The entry for a subscription id, if resident."""
        return self._entries.get(subscription_id)

    def put(
        self,
        payload: SubscribePayload,
        keys_here: set[int],
        now: float,
        expire_at: float | None = None,
    ) -> StoredSubscription:
        """Install (or refresh) a subscription.

        Re-installs are idempotent on the matcher and merge the covered
        key sets — with per-key unicast propagation (the aggressive
        baseline) the same node legitimately receives one copy per
        covered key.  A refresh restarts the TTL clock.
        """
        sid = payload.subscription.subscription_id
        if expire_at is None and payload.ttl is not None:
            expire_at = now + payload.ttl
        entry = self._entries.get(sid)
        if entry is None:
            entry = StoredSubscription(
                payload=payload, keys_here=set(keys_here), expire_at=expire_at
            )
            self._entries[sid] = entry
            covering = self._covering
            if covering is None:
                self._matcher.add(payload.subscription)
            else:
                became_root, demoted = covering.add(payload.subscription)
                if became_root:
                    self._matcher.add(payload.subscription)
                    for demoted_id in demoted:
                        self._matcher.remove(demoted_id)
                self._sync_cover_stats()
        else:
            entry.keys_here.update(keys_here)
            entry.expire_at = expire_at
        return entry

    def restore(self, snapshot: StoredEntrySnapshot) -> StoredSubscription:
        """Install from a snapshot, preserving its absolute expiry."""
        return self.put(
            snapshot.payload,
            keys_here=set(snapshot.keys_here),
            now=0.0,
            expire_at=snapshot.expire_at,
        )

    def remove(self, subscription_id: int) -> bool:
        """Drop a subscription entirely; True if it was resident.

        With covering enabled the forest repairs itself: a removed leaf
        splices its children to its parent, a removed root promotes its
        direct children back into the matching engine — so a coverer
        dying (expiry, unsubscribe, churn) never strands the
        subscriptions it covered.
        """
        entry = self._entries.pop(subscription_id, None)
        if entry is None:
            return False
        covering = self._covering
        if covering is None:
            self._matcher.remove(subscription_id)
        else:
            was_root, promoted = covering.remove(subscription_id)
            if was_root:
                self._matcher.remove(subscription_id)
                for subscription in promoted:
                    self._matcher.add(subscription)
            self._sync_cover_stats()
        return True

    def remove_keys(
        self, subscription_id: int, keys: set[int]
    ) -> StoredSubscription | None:
        """Detach ``keys`` from an entry, dropping it when none remain.

        Returns the (possibly removed) entry so churn handlers can ship
        it to the new owner.
        """
        entry = self._entries.get(subscription_id)
        if entry is None:
            return None
        entry.keys_here -= keys
        if not entry.keys_here:
            self.remove(subscription_id)
        return entry

    def purge_expired(self, now: float) -> int:
        """Drop every expired entry; returns how many were removed."""
        # Storage snapshots call this across the whole ring; at scale
        # almost every store is empty, so the early-out is the
        # difference between O(samples) and O(samples * nodes).
        if not self._entries:
            return 0
        expired = [sid for sid, e in self._entries.items() if e.expired(now)]
        for sid in expired:
            self.remove(sid)
        return len(expired)

    def live_count(self, now: float) -> int:
        """Number of non-expired entries (purging as a side effect)."""
        self.purge_expired(now)
        return len(self._entries)

    def match(self, event: Event, now: float) -> list[StoredSubscription]:
        """Live entries whose subscription the event satisfies.

        With covering enabled the engine only matched the roots; hit
        roots are fanned into their covered subtrees by a pruned DFS
        (:meth:`~repro.matching.covering.CoveringIndex.expand`) and the
        combined result is returned in subscription-id order — the same
        order the indexed engines already produce, so enabling covering
        is invisible to the delivery stream.  Expiry stays lazy: expired
        entries are filtered here and removed afterwards (removing a
        covering root mid-match promotes its children for *future*
        events; this event already expanded through it).
        """
        matched = self._matcher.match(event)
        entries = self._entries
        covering = self._covering
        if covering is not None and covering.collapsed_count:
            matched_ids, tested, hit = covering.expand(matched, event)
            work = self._matcher.work
            if work is not None and tested:
                work.candidates += tested
                work.verified += tested
                work.matched += hit
            matched_ids.sort()
            result = []
            doomed = None
            for sid in matched_ids:
                entry = entries[sid]
                if entry.expired(now):
                    if doomed is None:
                        doomed = []
                    doomed.append(sid)
                else:
                    result.append(entry)
            if doomed:
                for sid in doomed:
                    self.remove(sid)
            return result
        result = []
        for subscription in matched:
            entry = entries[subscription.subscription_id]
            if entry.expired(now):
                self.remove(subscription.subscription_id)
                continue
            result.append(entry)
        return result
