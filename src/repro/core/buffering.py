"""Notification buffering and collecting (Section 4.3.2).

Without the optimization, a rendezvous node sends one short notification
message per match, immediately.  With *buffering*, matches accumulate
for a configurable period and are flushed in per-subscriber batches.
With *collecting* (which builds on buffering), the nodes spanning a
subscription's rendezvous range aggregate their matches hop by hop
toward the range's middle node — the subscription's *agent* — which
alone talks to the subscriber; neighbor exchange messages are amortized
across all subscriptions buffered for the same neighbor.
"""

from __future__ import annotations

import dataclasses

from repro.core.payloads import Notification


@dataclasses.dataclass
class BufferedBatch:
    """Accumulated matches for one (subscriber, subscription) pair.

    Attributes:
        subscriber: Destination node of the eventual notification.
        subscription_id: The matched subscription.
        agent_key: Middle key of the subscription's rendezvous group at
            this node, or None when collecting is off (flush goes
            straight to the subscriber).
        notifications: The accumulated matches.
    """

    subscriber: int
    subscription_id: int
    agent_key: int | None
    notifications: list[Notification] = dataclasses.field(default_factory=list)


class NotificationBuffer:
    """Per-node accumulation of matches between flushes."""

    def __init__(self) -> None:
        self._batches: dict[tuple[int, int], BufferedBatch] = {}

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def pending_notifications(self) -> int:
        """Total matches currently buffered."""
        return sum(len(b.notifications) for b in self._batches.values())

    def add(
        self,
        subscriber: int,
        subscription_id: int,
        agent_key: int | None,
        notifications: list[Notification] | tuple[Notification, ...],
    ) -> None:
        """Buffer matches for a (subscriber, subscription) pair.

        Matches collected from a neighbor (COLLECT payloads) are merged
        into the same batch as locally detected ones.
        """
        key = (subscriber, subscription_id)
        batch = self._batches.get(key)
        if batch is None:
            batch = BufferedBatch(
                subscriber=subscriber,
                subscription_id=subscription_id,
                agent_key=agent_key,
            )
            self._batches[key] = batch
        elif agent_key is not None and batch.agent_key is None:
            batch.agent_key = agent_key
        batch.notifications.extend(notifications)

    def drain(self) -> list[BufferedBatch]:
        """Remove and return all non-empty batches (flush)."""
        batches = [b for b in self._batches.values() if b.notifications]
        self._batches.clear()
        return batches


def agent_key_for(groups: tuple[tuple[int, ...], ...], covered_key: int) -> int:
    """The collecting agent for the rendezvous group containing a key.

    Section 4.3.2: "the middle node of the range serves as agent for
    this subscription".  We designate the middle *key* of the group the
    covered key belongs to; the node covering that key is the agent.
    Falls back to the covered key itself if it appears in no group
    (defensive: group metadata and covered keys always agree in
    practice).
    """
    for group in groups:
        if covered_key in group:
            return group[len(group) // 2]
    return covered_key
