"""The public facade of the content-based pub/sub system.

:class:`PubSubSystem` wires the three strata of Fig. 2 together: the
application calls ``subscribe`` / ``publish`` / ``unsubscribe`` and
registers notification handlers; the system computes the ak-mapping,
propagates requests through the overlay (by unicast, the paper's
``m-cast`` primitive, or the conservative sequential baseline), and
runs the rendezvous/notification machinery at every node.

Example:
    >>> from repro.sim import Simulator
    >>> from repro.overlay.ids import KeySpace
    >>> from repro.overlay.chord import ChordOverlay
    >>> from repro.core import EventSpace, Subscription, PubSubSystem
    >>> from repro.core.mappings import make_mapping
    >>> sim = Simulator()
    >>> overlay = ChordOverlay(sim, KeySpace(13))
    >>> overlay.build_ring(range(0, 8192, 16))
    >>> space = EventSpace.uniform(("price", "volume"), 1_000_001)
    >>> mapping = make_mapping("selective-attribute", space, overlay.keyspace)
    >>> system = PubSubSystem(sim, overlay, mapping)
    >>> got = []
    >>> system.set_global_notify_handler(lambda node, ns: got.extend(ns))
    >>> sigma = Subscription.build(space, price=(100, 200))
    >>> _ = system.subscribe(16, sigma)
    >>> _ = system.publish(4096, space.make_event(price=150, volume=7))
    >>> _ = sim.run()
    >>> [n.subscription_id for n in got] == [sigma.subscription_id]
    True
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable

from repro.core.events import Event
from repro.core.mappings.base import AKMapping
from repro.core.node import PubSubNode
from repro.core.payloads import (
    CollectPayload,
    Notification,
    NotifyPayload,
    PublishPayload,
    ReplicaPayload,
    ReplicaRemovePayload,
    StateTransferPayload,
    StoredEntrySnapshot,
    SubscribePayload,
    UnsubscribePayload,
)
from repro.core.subscriptions import Subscription
from repro.errors import ConfigurationError
from repro.metrics.recorder import MetricsRecorder
from repro.overlay.api import (
    MessageKind,
    NeighborSide,
    OverlayMessage,
    next_request_id,
)
from repro.overlay.api import OverlayNetwork
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTimer
from repro.telemetry import Telemetry, current as current_telemetry
from repro.telemetry.tracing import Tracer


class RoutingMode(enum.Enum):
    """How multi-key requests are propagated (Section 4.3.1).

    ``UNICAST`` is the aggressive baseline (one overlay unicast per
    key, in parallel); ``MCAST`` is the native one-to-many primitive;
    ``SEQUENTIAL`` is the conservative key-by-key walk.
    """

    UNICAST = "unicast"
    MCAST = "mcast"
    SEQUENTIAL = "sequential"


NotifyHandler = Callable[[int, list[Notification]], None]


@dataclasses.dataclass
class PubSubConfig:
    """Behavioral switches of the CB-pub/sub layer.

    Attributes:
        routing: Propagation scheme for multi-key sends.
        buffering: Enable notification buffering (Section 4.3.2).
        collecting: Enable coordinated collecting toward range agents;
            requires ``buffering``.
        buffer_period: Seconds between buffer flushes (Fig. 9(a) sweeps
            1x, 2x and 5x the average publication period).
        default_ttl: Default subscription expiration in seconds (None =
            subscriptions never expire; Fig. 6 sweeps this).
        replication_factor: Number of ring successors holding a replica
            of each stored subscription (0 disables replication).
        failure_detection_delay: Seconds between a crash and replica
            promotion at the successor.
        matcher: Matching engine at rendezvous nodes: "grid" (default;
            the indexed engine, O(candidates) per event), "radix" (the
            radix-block index, best when stored constraints are mostly
            equalities), or "brute" (the O(stored) reference oracle).
        covering: Collapse covered subscriptions at rendezvous nodes
            (:class:`~repro.matching.covering.CoveringIndex`) so the
            matching engine only sees the least-covered roots.  None
            (default) enables covering with every engine except
            "brute", which stays the uncollapsed oracle; True/False
            force it on/off regardless of engine.
        dedupe_notifications: Suppress duplicate (event, subscription)
            deliveries at the subscriber (the duplicate *messages* are
            still counted by the metrics).
    """

    routing: RoutingMode = RoutingMode.MCAST
    buffering: bool = False
    collecting: bool = False
    buffer_period: float = 5.0
    default_ttl: float | None = None
    replication_factor: int = 0
    failure_detection_delay: float = 0.5
    matcher: str = "grid"
    covering: bool | None = None
    dedupe_notifications: bool = True

    def __post_init__(self) -> None:
        if self.collecting and not self.buffering:
            raise ConfigurationError("collecting requires buffering")
        if self.buffer_period <= 0:
            raise ConfigurationError("buffer_period must be positive")
        if self.replication_factor < 0:
            raise ConfigurationError("replication_factor must be >= 0")


class PubSubSystem:
    """Content-based pub/sub over a structured overlay (the paper's system)."""

    def __init__(
        self,
        sim: Simulator,
        overlay: OverlayNetwork,
        mapping: AKMapping,
        config: PubSubConfig | None = None,
    ) -> None:
        if mapping.keyspace != overlay.keyspace:
            raise ConfigurationError("mapping and overlay key spaces differ")
        self._sim = sim
        self._overlay = overlay
        self._mapping = mapping
        self._config = config or PubSubConfig()
        self._nodes: dict[int, PubSubNode] = {}
        self._flush_timers: dict[int, PeriodicTimer] = {}
        self._notify_handlers: dict[int, NotifyHandler] = {}
        self._global_notify: NotifyHandler | None = None
        # Telemetry rides on the overlay's network; the tracer guard is
        # cached so a disabled run pays one identity check per request.
        self._telemetry: Telemetry = getattr(
            overlay, "telemetry", None
        ) or current_telemetry()
        self._tracer: Tracer | None = (
            self._telemetry.tracer if self._telemetry.enabled else None
        )
        # Delivery-correctness auditor; None (the default) keeps every
        # hook a single identity check, mirroring the tracer guard.
        self._auditor = None
        self._match_histogram = self._telemetry.registry.histogram(
            "pubsub.matches_per_publication_delivery"
        )
        overlay.set_deliver(self._on_deliver)
        overlay.set_state_transfer(self._on_state_transfer)
        # app_node_ids == node_ids on a serial overlay; a sharded
        # overlay attaches pub/sub state to its local arc only.
        for node_id in overlay.app_node_ids():
            self._attach(node_id)

    # -- properties -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim.now

    @property
    def sim(self) -> Simulator:
        """The simulation kernel."""
        return self._sim

    @property
    def overlay(self) -> OverlayNetwork:
        """The underlying overlay network."""
        return self._overlay

    @property
    def mapping(self) -> AKMapping:
        """The active ak-mapping."""
        return self._mapping

    @property
    def config(self) -> PubSubConfig:
        """The layer configuration."""
        return self._config

    @property
    def recorder(self) -> MetricsRecorder:
        """Metrics recorder shared with the overlay network."""
        return self._overlay.recorder

    @property
    def telemetry(self) -> Telemetry:
        """Observability sink shared with the overlay network."""
        return self._telemetry

    def node(self, node_id: int) -> PubSubNode:
        """The pub/sub layer instance at an overlay node."""
        return self._nodes[node_id]

    def attach_auditor(self, auditor) -> None:
        """Install the online invariant auditor (see :mod:`repro.audit`)."""
        self._auditor = auditor

    # -- membership ------------------------------------------------------------

    def _attach(self, node_id: int) -> None:
        if node_id in self._nodes:
            return
        self._nodes[node_id] = PubSubNode(node_id, self)
        if self._config.buffering:
            timer = PeriodicTimer(
                self._sim,
                self._config.buffer_period,
                self._nodes[node_id].flush,
            )
            timer.start()
            self._flush_timers[node_id] = timer

    def _detach(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)
        timer = self._flush_timers.pop(node_id, None)
        if timer is not None:
            timer.stop()

    def add_node(self, node_id: int) -> None:
        """Join a new node; stored state follows the KN-mapping."""
        self._overlay.join(node_id)
        self._attach(node_id)

    def remove_node(self, node_id: int) -> None:
        """Graceful departure; state is handed to the successor."""
        self._overlay.leave(node_id)
        self._detach(node_id)

    def crash_node(self, node_id: int) -> None:
        """Abrupt failure; replicas are promoted at the new owner.

        The heir (the node inheriting the crashed node's keys — the
        ring successor for Chord/Pastry, the absorbing zone owner for
        CAN) adopts the replicated subscriptions after
        ``config.failure_detection_delay`` (a stand-in for failure
        detection + stabilization).
        """
        new_owner = self._overlay.heir_of(node_id)
        self._overlay.crash(node_id)
        self._detach(node_id)
        if self._config.replication_factor > 0:
            self._sim.schedule(
                self._config.failure_detection_delay,
                self._promote_replicas,
                new_owner,
                node_id,
            )

    def _promote_replicas(self, owner: int, crashed: int) -> None:
        node = self._nodes.get(owner)
        if node is None or not self._overlay.is_alive(owner):
            return
        promoted = node.promote_replicas(crashed)
        for snapshot in promoted:
            self.replicate_entry(owner, snapshot)

    # -- application API ------------------------------------------------------

    def set_notify_handler(self, node_id: int, handler: NotifyHandler) -> None:
        """Register the notification upcall for one subscriber node."""
        self._notify_handlers[node_id] = handler

    def set_global_notify_handler(self, handler: NotifyHandler) -> None:
        """Register a catch-all notification upcall (tests, harnesses)."""
        self._global_notify = handler

    def subscribe(
        self,
        node_id: int,
        subscription: Subscription,
        ttl: float | None = None,
    ) -> int:
        """Install σ at its rendezvous keys SK(σ).

        Args:
            node_id: The subscribing overlay node.
            subscription: The subscription.
            ttl: Expiration override; defaults to ``config.default_ttl``.

        Returns:
            The request id grouping this operation's messages.
        """
        groups = self._mapping.subscription_key_groups(subscription)
        keys = self._mapping.subscription_keys(subscription)
        payload = SubscribePayload(
            subscription=subscription,
            subscriber=node_id,
            ttl=self._config.default_ttl if ttl is None else ttl,
            groups=groups,
        )
        request_id = self._send_to_keys(
            node_id, keys, payload, MessageKind.SUBSCRIPTION
        )
        if self._auditor is not None:
            self._auditor.on_subscribe(subscription, node_id, payload.ttl, self.now)
        return request_id

    def unsubscribe(self, node_id: int, subscription: Subscription) -> int:
        """Remove σ from its rendezvous keys."""
        keys = self._mapping.subscription_keys(subscription)
        payload = UnsubscribePayload(
            subscription_id=subscription.subscription_id, subscriber=node_id
        )
        request_id = self._send_to_keys(
            node_id, keys, payload, MessageKind.UNSUBSCRIPTION
        )
        if self._auditor is not None:
            self._auditor.on_unsubscribe(subscription.subscription_id, self.now)
        return request_id

    def publish(self, node_id: int, event: Event) -> int:
        """Send an event to its rendezvous keys EK(e)."""
        keys = self._mapping.event_keys(event)
        payload = PublishPayload(
            event=event, publisher=node_id, published_at=self.now
        )
        request_id = self._send_to_keys(
            node_id, keys, payload, MessageKind.PUBLICATION
        )
        if self._auditor is not None:
            self._auditor.on_publish(event, node_id, keys, request_id, self.now)
        return request_id

    # -- propagation -------------------------------------------------------------

    def _send_to_keys(
        self,
        node_id: int,
        keys: frozenset[int],
        payload: object,
        kind: MessageKind,
    ) -> int:
        request_id = next_request_id()
        self.recorder.messages.begin_request(kind, request_id, self.now)
        message = OverlayMessage(
            kind=kind, payload=payload, request_id=request_id, origin=node_id
        )
        tracer = self._tracer
        if tracer is not None:
            message.trace = tracer.begin_request(
                request_id, kind.value, node_id, self.now
            )
        routing = self._config.routing
        if len(keys) == 1 or routing is RoutingMode.UNICAST:
            # Single-key requests degenerate to plain unicast in every
            # mode; multi-key unicast is the aggressive baseline.
            for key in keys:
                self._overlay.send(node_id, key, message)
        elif routing is RoutingMode.MCAST:
            self._overlay.mcast(node_id, keys, message)
        else:
            self._overlay.sequential_cast(node_id, keys, message)
        return request_id

    def send_notification(
        self,
        source_id: int,
        subscriber: int,
        notifications: tuple[Notification, ...],
        parent_span: int = 0,
    ) -> None:
        """Unicast a notification batch from a rendezvous to a subscriber.

        ``parent_span`` lets the rendezvous chain this notification's
        root span to the publication hop that produced the match, so a
        trace walks publish → match → notify end to end.
        """
        request_id = next_request_id()
        self.recorder.messages.begin_request(
            MessageKind.NOTIFICATION, request_id, self.now
        )
        message = OverlayMessage(
            kind=MessageKind.NOTIFICATION,
            payload=NotifyPayload(subscriber=subscriber, notifications=notifications),
            request_id=request_id,
            origin=source_id,
        )
        tracer = self._tracer
        if tracer is not None:
            message.trace = tracer.begin_request(
                request_id, MessageKind.NOTIFICATION.value, source_id,
                self.now, parent=parent_span,
            )
        self._overlay.send(source_id, subscriber, message)

    def send_collect(
        self, source_id: int, side: NeighborSide, payload: CollectPayload
    ) -> None:
        """One-hop COLLECT toward a subscription's agent (Section 4.3.2)."""
        request_id = next_request_id()
        self.recorder.messages.begin_request(
            MessageKind.COLLECT, request_id, self.now
        )
        message = OverlayMessage(
            kind=MessageKind.COLLECT,
            payload=payload,
            request_id=request_id,
            origin=source_id,
        )
        tracer = self._tracer
        if tracer is not None:
            message.trace = tracer.begin_request(
                request_id, MessageKind.COLLECT.value, source_id, self.now
            )
        self._overlay.send_to_neighbor(source_id, side, message)

    # -- replication (Section 4.1) ---------------------------------------------

    def replicate_entry(self, owner: int, snapshot: StoredEntrySnapshot) -> None:
        """Push one stored entry to the owner's successor chain."""
        if self._config.replication_factor < 1:
            return
        payload = ReplicaPayload(
            owner=owner,
            entries=(snapshot,),
            remaining=self._config.replication_factor,
        )
        self.forward_replica(owner, payload)

    def replicate_removal(self, owner: int, subscription_id: int) -> None:
        """Propagate an unsubscription along the owner's replica chain."""
        if self._config.replication_factor < 1:
            return
        payload = ReplicaRemovePayload(
            owner=owner,
            subscription_id=subscription_id,
            remaining=self._config.replication_factor,
        )
        self.forward_replica(owner, payload)

    def forward_replica(
        self, source_id: int, payload: ReplicaPayload | ReplicaRemovePayload
    ) -> None:
        """One hop of the replica chain, toward the node's heir.

        Replicas live where a crash would move the keys: the ring
        successor on Chord/Pastry, the absorbing zone owner on CAN.
        """
        request_id = next_request_id()
        self.recorder.messages.begin_request(
            MessageKind.CONTROL, request_id, self.now
        )
        message = OverlayMessage(
            kind=MessageKind.CONTROL,
            payload=payload,
            request_id=request_id,
            origin=source_id,
        )
        tracer = self._tracer
        if tracer is not None:
            message.trace = tracer.begin_request(
                request_id, MessageKind.CONTROL.value, source_id, self.now
            )
        heir = self._overlay.heir_of(source_id)
        side = (
            NeighborSide.SUCCESSOR
            if heir == self._overlay.neighbor_of(source_id, NeighborSide.SUCCESSOR)
            else NeighborSide.PREDECESSOR
        )
        self._overlay.send_to_neighbor(source_id, side, message)

    # -- overlay upcalls -----------------------------------------------------------

    def _on_deliver(self, node_id: int, message: OverlayMessage) -> None:
        node = self._nodes.get(node_id)
        if node is None:
            # A message can reach a node the harness never attached
            # (e.g., raced an in-flight detach); attach lazily if alive.
            if not self._overlay.is_alive(node_id):
                return
            self._attach(node_id)
            node = self._nodes[node_id]
        node.on_deliver(message)

    def _on_state_transfer(
        self, from_node: int, to_node: int, key_range: tuple[int, int]
    ) -> None:
        source = self._nodes.get(from_node)
        if source is None:
            return
        entries = source.extract_entries_for_range(key_range)
        if not entries:
            return
        request_id = next_request_id()
        self.recorder.messages.begin_request(
            MessageKind.CONTROL, request_id, self.now
        )
        message = OverlayMessage(
            kind=MessageKind.CONTROL,
            payload=StateTransferPayload(entries=tuple(entries)),
            request_id=request_id,
            origin=from_node,
        )
        tracer = self._tracer
        if tracer is not None:
            message.trace = tracer.begin_request(
                request_id, MessageKind.CONTROL.value, from_node, self.now
            )
        self._overlay.transmit(from_node, to_node, message.forwarded_copy(from_node))

    def deliver_notifications(self, node_id: int, payload: NotifyPayload) -> None:
        """Terminal delivery of a notification batch at the subscriber."""
        # Audit before dedupe so duplicate deliveries stay observable.
        if self._auditor is not None:
            self._auditor.on_notifications(node_id, payload.notifications, self.now)
        self.recorder.record_notification_batch(len(payload.notifications))
        for notification in payload.notifications:
            self.recorder.record_notification_delay(
                self.now - notification.published_at
            )
        node = self._nodes.get(node_id)
        if node is None:
            return
        if self._config.dedupe_notifications:
            fresh = node.fresh_notifications(payload.notifications)
        else:
            fresh = list(payload.notifications)
        if not fresh:
            return
        handler = self._notify_handlers.get(node_id)
        if handler is not None:
            handler(node_id, fresh)
        if self._global_notify is not None:
            self._global_notify(node_id, fresh)

    # -- metrics helpers ---------------------------------------------------------

    def subscriptions_per_node(self) -> dict[int, int]:
        """Live (non-expired) stored subscriptions per node (Figs. 6, 8)."""
        now = self.now
        return {
            node_id: node.store.live_count(now)
            for node_id, node in self._nodes.items()
            if self._overlay.is_alive(node_id)
        }

    def snapshot_storage(self) -> None:
        """Record a storage snapshot into the metrics recorder."""
        self.recorder.storage.snapshot(self.now, self.subscriptions_per_node())
